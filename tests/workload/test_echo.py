"""Tests for the echo workload."""

import pytest

from repro.rt.service import RequestContext
from repro.soap import Envelope, parse_rpc_request, parse_rpc_response
from repro.util.clock import ManualClock
from repro.workload.echo import (
    PAPER_XML_BYTES,
    EchoService,
    make_echo_message,
    make_echo_request,
)
from repro.wsa import AddressingHeaders, EndpointReference


class TestMessageSizing:
    def test_default_matches_paper_estimate(self):
        """Paper: 'about ... 263 bytes for the XML message'."""
        wire = make_echo_request().to_bytes()
        assert len(wire) == PAPER_XML_BYTES == 263

    def test_custom_size(self):
        assert len(make_echo_request(target_bytes=400).to_bytes()) == 400

    def test_tiny_target_clamps_to_overhead(self):
        wire = make_echo_request(target_bytes=1).to_bytes()
        assert len(wire) > 1  # envelope overhead is irreducible

    def test_request_parses_as_rpc(self):
        req = parse_rpc_request(Envelope.from_bytes(make_echo_request().to_bytes()))
        assert req.operation == "echo"
        assert req.param("text") is not None


class TestEchoMessage:
    def test_carries_addressing_headers(self):
        epr = EndpointReference("http://client/inbox")
        msg = make_echo_message("urn:wsd:echo", "uuid:1", reply_to=epr)
        hdr = AddressingHeaders.from_envelope(msg)
        assert hdr.to == "urn:wsd:echo"
        assert hdr.message_id == "uuid:1"
        assert hdr.reply_to.address == "http://client/inbox"
        assert hdr.action.endswith("/echo")


class TestEchoService:
    def test_echoes_text(self):
        svc = EchoService()
        reply = svc.handle(make_echo_request(), RequestContext(path="/echo"))
        parsed = parse_rpc_response(reply)
        assert parsed.result("return") == parse_rpc_request(
            make_echo_request()
        ).param("text")
        assert svc.calls == 1

    def test_response_delay_applied(self):
        slept = []
        svc = EchoService(response_delay=1.5, sleep=slept.append)
        svc.handle(make_echo_request(), RequestContext(path="/echo"))
        assert slept == [1.5]

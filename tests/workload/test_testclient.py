"""Tests for the threaded and simulated ramp test clients."""

import pytest

from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.topology import AccessLink, Network
from repro.workload.echo import EchoService
from repro.workload.sim_testclient import SimRampConfig, SimRampTester
from repro.workload.testclient import RampConfig, RampTestClient


class TestThreadedRampClient:
    @pytest.fixture
    def echo_url(self, inproc):
        app = SoapHttpApp()
        app.mount("/echo", EchoService())
        server = HttpServer(
            inproc.listen("ws:9000"), app.handle_request, workers=8
        ).start()
        yield "http://ws:9000/echo"
        server.stop()

    def test_single_client_run(self, inproc, echo_url):
        tester = RampTestClient(inproc, echo_url)
        result = tester.run(RampConfig(clients=1, duration=0.3))
        assert result.clients == 1
        assert result.transmitted > 0
        assert result.not_sent == 0
        assert result.latency.count == result.transmitted

    def test_multiple_clients_increase_throughput(self, inproc):
        # a slow service makes concurrency the dominant factor (robust to
        # GIL/scheduler noise, unlike raw CPU-bound throughput)
        app = SoapHttpApp()
        app.mount("/slow", EchoService(response_delay=0.05))
        server = HttpServer(
            inproc.listen("slowws:9001"), app.handle_request, workers=8
        ).start()
        tester = RampTestClient(inproc, "http://slowws:9001/slow")
        one = tester.run(RampConfig(clients=1, duration=0.6))
        four = tester.run(RampConfig(clients=4, duration=0.6))
        server.stop()
        assert four.transmitted > one.transmitted * 2

    def test_unreachable_target_counts_not_sent(self, inproc):
        tester = RampTestClient(inproc, "http://ghost:1/echo")
        result = tester.run(
            RampConfig(clients=2, duration=0.2, connect_timeout=0.1)
        )
        assert result.transmitted == 0
        assert result.not_sent > 0

    def test_sweep_produces_one_result_per_count(self, inproc, echo_url):
        tester = RampTestClient(inproc, echo_url)
        results = tester.sweep([1, 2], duration=0.2)
        assert [r.clients for r in results] == [1, 2]


class TestSimRampClient:
    @pytest.fixture
    def world(self, sim):
        net = Network(sim)
        client = net.add_host("client", AccessLink(5000, 5000, 0.005))
        server = net.add_host("server", AccessLink(5000, 5000, 0.005))
        app = SoapHttpApp()
        app.mount("/echo", EchoService())
        SimHttpServer(net, server, 80, lambda r: app.handle_request(r, None))
        return net, client

    def test_run_counts_transmissions(self, world):
        net, client = world
        tester = SimRampTester(net, client, "server", 80, "/echo")
        result = tester.run(SimRampConfig(clients=2, duration=5.0))
        assert result.transmitted > 10
        assert result.not_sent == 0
        assert result.latency.mean > 0

    def test_simulated_time_not_wall_time(self, world):
        import time

        net, client = world
        tester = SimRampTester(net, client, "server", 80, "/echo")
        t0 = time.monotonic()
        result = tester.run(SimRampConfig(clients=1, duration=60.0))
        assert time.monotonic() - t0 < 30.0  # 60 sim-seconds far faster than real
        assert result.transmitted > 100

    def test_think_time_slows_clients(self, world):
        net, client = world
        fast = SimRampTester(net, client, "server", 80, "/echo").run(
            SimRampConfig(clients=1, duration=5.0)
        )
        net2_sim = Simulator()
        net2 = Network(net2_sim)
        c2 = net2.add_host("client", AccessLink(5000, 5000, 0.005))
        s2 = net2.add_host("server", AccessLink(5000, 5000, 0.005))
        app = SoapHttpApp()
        app.mount("/echo", EchoService())
        SimHttpServer(net2, s2, 80, lambda r: app.handle_request(r, None))
        slow = SimRampTester(net2, c2, "server", 80, "/echo").run(
            SimRampConfig(clients=1, duration=5.0, think_time=0.5)
        )
        assert slow.transmitted < fast.transmitted / 2

    def test_unreachable_server_counts_not_sent(self, sim):
        net = Network(sim)
        client = net.add_host("client", AccessLink(5000, 5000, 0.005))
        net.add_host("server", AccessLink(5000, 5000, 0.005))
        tester = SimRampTester(net, client, "server", 80, "/echo")
        result = tester.run(
            SimRampConfig(clients=1, duration=3.0, connect_timeout=0.5,
                          retry_backoff=0.1)
        )
        assert result.transmitted == 0
        assert result.not_sent >= 3

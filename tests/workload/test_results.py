"""Tests for run results and rendering."""

import pytest

from repro.workload.results import (
    RunResult,
    Series,
    render_ascii_plot,
    render_table,
)


def result(clients, tx, lost=0, duration=60.0):
    return RunResult(clients=clients, duration=duration, transmitted=tx, not_sent=lost)


class TestRunResult:
    def test_per_minute(self):
        assert result(1, 120, duration=60.0).per_minute == 120.0
        assert result(1, 60, duration=30.0).per_minute == 120.0

    def test_per_minute_zero_duration(self):
        assert result(1, 10, duration=0.0).per_minute == 0.0

    def test_loss_ratio(self):
        assert result(1, 50, lost=50).loss_ratio == 0.5
        assert result(1, 0, lost=0).loss_ratio == 0.0

    def test_attempted(self):
        assert result(1, 10, lost=5).attempted == 15

    def test_as_row(self):
        row = result(10, 600).as_row()
        assert row["clients"] == 10
        assert row["msgs_per_min"] == 600.0


class TestSeries:
    def test_accessors(self):
        s = Series("direct")
        s.add(result(10, 100, lost=1))
        s.add(result(20, 200, lost=2))
        assert s.xs() == [10, 20]
        assert s.transmitted() == [100, 200]
        assert s.not_sent() == [1, 2]
        assert s.per_minute() == [100.0, 200.0]


class TestRenderTable:
    def test_columns_align_by_clients(self):
        a = Series("a")
        a.add(result(10, 100))
        b = Series("b")
        b.add(result(10, 90))
        b.add(result(20, 180))
        text = render_table([a, b], "transmitted", title="T")
        lines = text.splitlines()
        assert lines[0] == "# T [transmitted]"
        assert lines[1] == "clients\ta\tb"
        assert lines[2] == "10\t100\t90"
        assert lines[3] == "20\t-\t180"

    def test_per_minute_and_loss_values(self):
        s = Series("x")
        s.add(result(5, 30, lost=30, duration=30.0))
        table = render_table([s], "per_minute")
        assert "60" in table
        table = render_table([s], "loss_ratio")
        assert "0.500" in table


class TestRenderAsciiPlot:
    def test_contains_bars(self):
        s = Series("x")
        s.add(result(1, 10))
        s.add(result(2, 100))
        plot = render_ascii_plot([s], "transmitted", width=20)
        assert "#" in plot

    def test_log_scale_handles_zero(self):
        s = Series("x")
        s.add(result(1, 0))
        s.add(result(2, 1000))
        plot = render_ascii_plot([s], "transmitted", log_y=True)
        assert plot  # no crash, renders something

    def test_empty(self):
        assert render_ascii_plot([], "transmitted") == "(no data)"

"""The consistent-hash ring: determinism is the whole point.

Every shard process builds its own :class:`HashRing` from nothing but
the shard count; if two builds ever disagreed about an owner, two shards
would both claim (or both disown) a destination and FIFO order would
split.  The ring therefore hashes with blake2b, never the
randomized builtin ``hash``.
"""

import subprocess
import sys

from repro.shard import HashRing


def test_owner_in_range():
    ring = HashRing(4)
    for key in ("svc0", "urn:wsd:echo", "", "日本語"):
        assert 0 <= ring.owner(key) < 4


def test_single_shard_owns_everything():
    ring = HashRing(1)
    assert all(ring.owner(f"svc{i}") == 0 for i in range(50))


def test_deterministic_across_constructions():
    first, second = HashRing(8), HashRing(8)
    keys = [f"dest-{i}" for i in range(200)]
    assert [first.owner(k) for k in keys] == [second.owner(k) for k in keys]


def test_deterministic_across_processes():
    """The real hazard: PYTHONHASHSEED varies per process, and every
    worker builds the ring independently."""
    keys = [f"dest-{i}" for i in range(32)]
    code = (
        "from repro.shard import HashRing\n"
        f"print([HashRing(4).owner(k) for k in {keys!r}])\n"
    )
    outs = {
        subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
        ).stdout
        for seed in ("0", "12345")
    }
    assert len(outs) == 1
    local = [HashRing(4).owner(k) for k in keys]
    assert outs.pop().strip() == repr(local)


def test_distribution_reasonably_balanced():
    ring = HashRing(4, replicas=64)
    counts = ring.distribution(f"dest-{i}" for i in range(4000))
    assert set(counts) == {0, 1, 2, 3}
    assert min(counts.values()) > 4000 / 4 * 0.5


def test_explicit_shard_ids():
    """A ring can be built over explicit ids (e.g. a degraded fleet)."""
    ring = HashRing([0, 2])
    owners = {ring.owner(f"d{i}") for i in range(100)}
    assert owners <= {0, 2}
    assert len(ring) == 2


def test_adding_shards_moves_only_some_keys():
    """Consistent hashing's contract: growing the ring remaps a fraction
    of the keyspace, not all of it."""
    small, big = HashRing(4), HashRing(5)
    keys = [f"dest-{i}" for i in range(1000)]
    moved = sum(small.owner(k) != big.owner(k) for k in keys)
    assert 0 < moved < 600  # ~1/5 expected; all-1000 means modulo hashing

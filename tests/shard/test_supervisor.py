"""End-to-end: a supervised fleet behind one shared data endpoint.

Every test here forks real worker subprocesses (``python -m
repro.shard.worker``), posts real envelopes at the shared port, and
reads the supervisor's aggregated control plane.
"""

import json
import threading
import time

import pytest

from repro.http import HttpRequest, HttpResponse
from repro.obs import parse_exposition
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.shard import ShardSupervisor, SupervisorConfig, fd_passing_supported
from repro.soap import Envelope
from repro.transport.tcp import TcpConnector, TcpListener
from repro.workload.echo import make_echo_message
from repro.wsa import AddressingHeaders

LOGICALS = [f"svc{i}" for i in range(4)]


class _Sink:
    """Counts unique MessageIDs of every envelope it absorbs."""

    def __init__(self, delay: float = 0.0, workers: int = 8):
        self.mids: set[str] = set()
        self.arrivals = 0
        self._delay = delay
        self._lock = threading.Lock()
        self.server = HttpServer(
            TcpListener("127.0.0.1:0"), self._handle, workers=workers
        ).start()
        self.url = self.server.url

    def _handle(self, request, peer):
        if self._delay:
            time.sleep(self._delay)
        headers = AddressingHeaders.from_envelope(
            Envelope.from_bytes(request.body)
        )
        with self._lock:
            self.arrivals += 1
            if headers.message_id:
                self.mids.add(headers.message_id)
        return HttpResponse(status=202)

    def wait_for_unique(self, n, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if len(self.mids) >= n:
                    return True
            time.sleep(0.02)
        return False

    def stop(self):
        self.server.stop()


def _get(client, base, path):
    response = client.request(base + path, HttpRequest("GET", path))
    assert response.status == 200, (path, response.status)
    return response.body


def _config(**overrides):
    base = dict(
        shards=2, ws_threads=4, server_workers=8, ready_timeout=30.0
    )
    base.update(overrides)
    return SupervisorConfig(**base)


def _post_all(supervisor, count):
    with HttpClient(TcpConnector()) as client:
        for i in range(count):
            logical = LOGICALS[i % len(LOGICALS)]
            envelope = make_echo_message(
                to=f"urn:wsd:{logical}", message_id=f"m-{i}"
            )
            response = client.post_envelope(
                f"{supervisor.data_url}/msg/{logical}", envelope
            )
            assert response.status == 202


@pytest.mark.parametrize("runtime", ["threaded", "aio"])
def test_fleet_delivers_and_aggregates(runtime):
    sink = _Sink()
    registry = {name: f"{sink.url}/{name}" for name in LOGICALS}
    try:
        with ShardSupervisor(registry, _config(runtime=runtime)) as sup:
            owners = {sup.owner_of(name) for name in LOGICALS}
            _post_all(sup, 40)
            assert sink.wait_for_unique(40), (
                f"only {len(sink.mids)} of 40 delivered"
            )

            with HttpClient(TcpConnector()) as client:
                metrics_text = _get(client, sup.control_url, "/metrics").decode()
                health = json.loads(_get(client, sup.control_url, "/health"))
                slo = json.loads(_get(client, sup.control_url, "/slo"))

            # merged exposition: the fleet's accepted counter covers all 40
            # admissions (plus any cross-shard relay re-admissions)
            families = parse_exposition(metrics_text)
            accepted = sum(
                value
                for _name, _labels, value
                in families["msgd_accepted_total"].samples
            )
            assert accepted >= 40
            if owners == {0, 1}:  # both shards own traffic: relays happened
                assert "shard_relay_total" in families

            assert health["status"] == "ok"
            assert set(health["shards"]) == {"0", "1"}
            assert health["supervisor"]["restarts"] == {"0": 0, "1": 0}
            assert set(slo["shards"]) == {"0", "1"}
    finally:
        sink.stop()


@pytest.mark.skipif(
    not fd_passing_supported(), reason="no SCM_RIGHTS fd passing here"
)
def test_fleet_delivers_in_pass_mode():
    sink = _Sink()
    registry = {name: f"{sink.url}/{name}" for name in LOGICALS}
    try:
        with ShardSupervisor(
            registry, _config(accept_mode="pass")
        ) as sup:
            assert sup.accept_mode == "pass"
            _post_all(sup, 24)
            assert sink.wait_for_unique(24)
    finally:
        sink.stop()


def test_single_shard_fleet_still_works():
    """shards=1 must behave exactly like one plain dispatcher deployment."""
    sink = _Sink()
    registry = {name: f"{sink.url}/{name}" for name in LOGICALS}
    try:
        with ShardSupervisor(registry, _config(shards=1)) as sup:
            _post_all(sup, 12)
            assert sink.wait_for_unique(12)
            with HttpClient(TcpConnector()) as client:
                text = _get(client, sup.control_url, "/metrics").decode()
            assert "shard_relay_total" not in text
    finally:
        sink.stop()

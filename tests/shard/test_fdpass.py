"""Accept-and-pass: SCM_RIGHTS fd handoff for SO_REUSEPORT-less hosts."""

import socket
import threading

import pytest

from repro.errors import TransportError
from repro.shard import FanoutAcceptor, FdReceiverListener, fd_passing_supported
from repro.transport.base import Endpoint
from repro.transport.tcp import TcpConnector

pytestmark = pytest.mark.skipif(
    not fd_passing_supported(), reason="no SCM_RIGHTS fd passing here"
)


def test_accepted_connection_crosses_the_channel():
    parent, child = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
    acceptor = FanoutAcceptor(Endpoint("127.0.0.1", 0), {0: parent})
    receiver = FdReceiverListener(child, acceptor.endpoint)
    try:
        acceptor.start()
        client = TcpConnector().connect(acceptor.endpoint, timeout=2)
        stream = receiver.accept(timeout=2)
        client.send(b"ping")
        assert stream.recv(4, timeout=2) == b"ping"
        stream.send(b"pong")
        assert client.recv(4, timeout=2) == b"pong"
        client.close()
        stream.close()
        assert acceptor.passed == 1
    finally:
        acceptor.stop()
        receiver.close()


def test_round_robin_across_channels():
    pairs = [socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM) for _ in range(2)]
    acceptor = FanoutAcceptor(
        Endpoint("127.0.0.1", 0), {i: pairs[i][0] for i in range(2)}
    )
    receivers = [
        FdReceiverListener(pairs[i][1], acceptor.endpoint) for i in range(2)
    ]
    got = []
    lock = threading.Lock()

    def drain(idx):
        while True:
            try:
                stream = receivers[idx].accept(timeout=1.5)
            except TransportError:
                return
            with lock:
                got.append(idx)
            stream.close()

    try:
        acceptor.start()
        threads = [
            threading.Thread(target=drain, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        clients = [
            TcpConnector().connect(acceptor.endpoint, timeout=2)
            for _ in range(4)
        ]
        for t in threads:
            t.join(timeout=5)
        for c in clients:
            c.close()
    finally:
        acceptor.stop()
        for receiver in receivers:
            receiver.close()
    # 4 connections over 2 channels round-robin: two each
    assert sorted(got) == [0, 0, 1, 1]


def test_receiver_eof_when_acceptor_dies():
    parent, child = socket.socketpair(socket.AF_UNIX, socket.SOCK_STREAM)
    receiver = FdReceiverListener(child, Endpoint("127.0.0.1", 0))
    parent.close()  # supervisor side gone
    with pytest.raises(TransportError):
        receiver.accept(timeout=1)
    receiver.close()

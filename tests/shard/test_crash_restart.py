"""The acceptance scenario: SIGKILL one shard mid-drain, lose nothing.

A two-shard durable fleet takes a backlog for both shards.  The victim
shard's destination is a deliberately slow sink, so when the shard is
SIGKILLed most of its accepted (journaled, 202'd) messages are still
undelivered.  The supervisor must detect the death, respawn the worker
against its own ``journal-shard<k>.db``, and the replay must deliver
every message exactly once at the sink — while the surviving shard's
traffic drains undisturbed.
"""

import os
import signal
import time

from repro.http import HttpRequest
from repro.rt.client import HttpClient
from repro.shard import HashRing, ShardSupervisor, SupervisorConfig
from repro.transport.tcp import TcpConnector
from repro.workload.echo import make_echo_message

from tests.shard.test_supervisor import _Sink

MESSAGES_PER_SHARD = 12


def _logical_owned_by(ring, shard_id):
    for i in range(200):
        if ring.owner(f"svc{i}") == shard_id:
            return f"svc{i}"
    raise AssertionError("ring never hashed a name to this shard")


def test_sigkill_one_shard_recovers_its_journal(tmp_path):
    # the worker rebuilds this same ring from its spec, so owners
    # computed here are the owners the fleet will enforce
    ring = HashRing(2)
    victim_logical = _logical_owned_by(ring, 0)
    other_logical = _logical_owned_by(ring, 1)

    slow = _Sink(delay=0.15, workers=1)   # serializes the victim's drain
    fast = _Sink()
    registry = {
        victim_logical: f"{slow.url}/{victim_logical}",
        other_logical: f"{fast.url}/{other_logical}",
    }
    config = SupervisorConfig(
        shards=2,
        journal_dir=str(tmp_path),
        ws_threads=4,
        server_workers=8,
        ready_timeout=30.0,
    )
    try:
        with ShardSupervisor(registry, config) as sup:
            assert sup.owner_of(victim_logical) == 0
            assert sup.owner_of(other_logical) == 1
            victim_pid = sup.pids()[0]

            with HttpClient(TcpConnector()) as client:
                for i in range(MESSAGES_PER_SHARD):
                    for logical in (victim_logical, other_logical):
                        envelope = make_echo_message(
                            to=f"urn:wsd:{logical}",
                            message_id=f"{logical}-m{i}",
                        )
                        response = client.post_envelope(
                            f"{sup.data_url}/msg/{logical}", envelope
                        )
                        assert response.status == 202

            # let the slow sink absorb a couple, then kill mid-drain
            deadline = time.monotonic() + 10
            while not slow.mids and time.monotonic() < deadline:
                time.sleep(0.02)
            assert slow.mids, "victim shard never started draining"
            assert len(slow.mids) < MESSAGES_PER_SHARD, (
                "backlog drained before the kill; slow the sink down"
            )
            os.kill(victim_pid, signal.SIGKILL)

            # supervisor detects the death and respawns shard 0
            deadline = time.monotonic() + 30
            while (
                sup.restart_counts()[0] == 0
                or sup.pids()[0] in (None, victim_pid)
            ):
                assert time.monotonic() < deadline, "shard never restarted"
                time.sleep(0.05)

            # journal replay finishes the victim's backlog; the fast
            # shard's traffic is long since undisturbed
            expected_victim = {
                f"{victim_logical}-m{i}" for i in range(MESSAGES_PER_SHARD)
            }
            expected_other = {
                f"{other_logical}-m{i}" for i in range(MESSAGES_PER_SHARD)
            }
            assert slow.wait_for_unique(MESSAGES_PER_SHARD, timeout=60.0), (
                f"victim recovered only {len(slow.mids)} of "
                f"{MESSAGES_PER_SHARD}"
            )
            assert slow.mids == expected_victim
            assert fast.wait_for_unique(MESSAGES_PER_SHARD, timeout=30.0)
            assert fast.mids == expected_other
            assert sup.restart_counts() == {0: 1, 1: 0}

            # control plane reflects the restart and is healthy again
            with HttpClient(TcpConnector()) as client:
                import json

                health = json.loads(
                    client.request(
                        sup.control_url + "/health",
                        HttpRequest("GET", "/health"),
                    ).body
                )
            assert health["status"] == "ok"
            assert health["supervisor"]["restarts"]["0"] == 1
    finally:
        slow.stop()
        fast.stop()

"""The routing seam: ShardedMsgDispatcher relays what it doesn't own.

These are single-process tests — one real dispatcher, plain HTTP sinks
standing in for the peer shard and the local service — exercising the
ownership decision without a supervisor or subprocesses.
"""

import threading
import time

import pytest

from repro.core.msg_dispatcher import MsgDispatcherConfig
from repro.core.registry import ServiceRegistry
from repro.http import HttpResponse
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceStore
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import RequestContext
from repro.shard import HashRing, ShardedMsgDispatcher
from repro.soap import Envelope
from repro.transport.tcp import TcpConnector, TcpListener
from repro.util.ids import IdGenerator
from repro.wsa import AddressingHeaders
from repro.workload.echo import make_echo_message


class _Recorder:
    """An HTTP sink recording every envelope path it absorbs."""

    def __init__(self):
        self.paths = []
        self._lock = threading.Lock()
        self.server = HttpServer(
            TcpListener("127.0.0.1:0"), self._handle, workers=4
        ).start()
        self.url = self.server.url

    def _handle(self, request, peer):
        with self._lock:
            self.paths.append(request.target)
        return HttpResponse(status=202)

    def stop(self):
        self.server.stop()

    def wait_for(self, n, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if len(self.paths) >= n:
                    return True
            time.sleep(0.01)
        return False


@pytest.fixture
def seam():
    ring = HashRing(2)
    local = _Recorder()   # the service this shard owns
    peer = _Recorder()    # stands in for shard 1's direct endpoint
    registry = ServiceRegistry(metrics=MetricsRegistry())
    metrics = MetricsRegistry()
    dispatcher = ShardedMsgDispatcher(
        registry,
        HttpClient(TcpConnector()),
        "http://127.0.0.1:9/msg",
        config=MsgDispatcherConfig(cx_threads=1, ws_threads=2),
        metrics=metrics,
        traces=TraceStore(enabled=False),
        shard_id=0,
        ring=ring,
        peers={0: "http://127.0.0.1:9", 1: peer.url},
    )
    yield ring, registry, dispatcher, local, peer, metrics
    dispatcher.stop()
    local.stop()
    peer.stop()


def _logical_owned_by(ring, shard_id):
    for i in range(200):
        if ring.owner(f"svc{i}") == shard_id:
            return f"svc{i}"
    raise AssertionError("ring never hashed a name to this shard")


def test_owned_message_is_delivered_locally(seam):
    ring, registry, dispatcher, local, peer, _ = seam
    mine = _logical_owned_by(ring, 0)
    registry.register(mine, f"{local.url}/{mine}")
    envelope = make_echo_message(to=f"urn:wsd:{mine}", message_id="m-own")
    dispatcher.handle(envelope, RequestContext(path=f"/msg/{mine}"))
    assert local.wait_for(1)
    assert peer.paths == []


def test_foreign_message_is_relayed_to_owner(seam):
    ring, registry, dispatcher, local, peer, metrics = seam
    theirs = _logical_owned_by(ring, 1)
    # deliberately resolvable locally: ownership must win over resolution
    registry.register(theirs, f"{local.url}/{theirs}")
    envelope = make_echo_message(to=f"urn:wsd:{theirs}", message_id="m-rel")
    dispatcher.handle(envelope, RequestContext(path=f"/msg/{theirs}"))
    assert peer.wait_for(1)
    assert peer.paths == [f"/msg/{theirs}"]
    assert local.paths == []
    assert dispatcher.stats.get("relayed_out") == 1
    text = metrics.render_prometheus()
    assert 'shard_relay_total{direction="out"} 1' in text


def test_relayed_envelope_is_byte_identical(seam):
    """The relay forwards the original envelope — same MessageID — so
    the owning shard's dedupe window still catches duplicates."""
    ring, registry, dispatcher, local, peer, _ = seam
    theirs = _logical_owned_by(ring, 1)
    bodies = []

    # swap the peer recorder's handler to capture bodies
    def capture(request, _peer):
        bodies.append(request.body)
        return HttpResponse(status=202)

    peer.server._handler = capture
    envelope = make_echo_message(to=f"urn:wsd:{theirs}", message_id="m-bytes")
    dispatcher.handle(envelope, RequestContext(path=f"/msg/{theirs}"))
    deadline = time.monotonic() + 10
    while not bodies and time.monotonic() < deadline:
        time.sleep(0.01)
    assert bodies
    relayed = AddressingHeaders.from_envelope(Envelope.from_bytes(bodies[0]))
    assert relayed.message_id == "m-bytes"


def test_responses_are_never_relayed(seam):
    """RelatesTo traffic correlates at whichever shard sent the request;
    own_address is the shard's direct URL, so responses arrive owned by
    construction and must not bounce to the ring owner."""
    ring, registry, dispatcher, local, peer, _ = seam
    theirs = _logical_owned_by(ring, 1)
    registry.register(theirs, f"{local.url}/{theirs}")
    envelope = make_echo_message(to=f"urn:wsd:{theirs}", message_id="m-resp")
    headers = AddressingHeaders.from_envelope(envelope)
    headers.relates_to.append("m-original-request")
    headers.attach(envelope)
    dispatcher.handle(envelope, RequestContext(path=f"/msg/{theirs}"))
    assert local.wait_for(1)
    assert peer.paths == []
    assert not dispatcher.stats.get("relayed_out")


def test_unsharded_ring_never_relays(seam):
    """shards=1 collapses to the plain dispatcher: no peers, no relays."""
    _, _, _, local, _, _ = seam
    ring = HashRing(1)
    registry = ServiceRegistry(metrics=MetricsRegistry())
    dispatcher = ShardedMsgDispatcher(
        registry,
        HttpClient(TcpConnector()),
        "http://127.0.0.1:9/msg",
        config=MsgDispatcherConfig(cx_threads=1, ws_threads=2),
        metrics=MetricsRegistry(),
        traces=TraceStore(enabled=False),
        shard_id=0,
        ring=ring,
        peers={0: "http://127.0.0.1:9"},
    )
    try:
        registry.register("solo", f"{local.url}/solo")
        envelope = make_echo_message(to="urn:wsd:solo", message_id="m-solo")
        dispatcher.handle(envelope, RequestContext(path="/msg/solo"))
        assert local.wait_for(1)
        assert not dispatcher.stats.get("relayed_out")
    finally:
        dispatcher.stop()

"""Tests for the hold/retry store and duplicate filter."""

import pytest

from repro.errors import DeliveryExpired
from repro.reliable import (
    DuplicateFilter,
    FixedDelay,
    HeldMessage,
    HoldRetryStore,
)
from repro.util.clock import ManualClock


class FlakyTarget:
    """Delivery target that fails until ``up_at`` (per an injected clock)."""

    def __init__(self, clock, up_at: float):
        self.clock = clock
        self.up_at = up_at
        self.delivered: list[HeldMessage] = []
        self.attempts = 0

    def __call__(self, msg: HeldMessage) -> None:
        self.attempts += 1
        if self.clock.now() < self.up_at:
            raise ConnectionError("down")
        self.delivered.append(msg)


@pytest.fixture
def clock():
    return ManualClock()


class TestHoldRetryStore:
    def test_immediate_delivery(self, clock):
        target = FlakyTarget(clock, up_at=0.0)
        store = HoldRetryStore(target, clock=clock)
        store.hold("uuid:1", "http://svc/", b"<x/>")
        summary = store.pump()
        assert summary == {"due": 1, "delivered": 1, "failed": 0}
        assert store.pending() == 0
        assert [m.message_id for m in target.delivered] == ["uuid:1"]

    def test_retry_after_recovery(self, clock):
        target = FlakyTarget(clock, up_at=2.0)
        store = HoldRetryStore(
            target, policy=FixedDelay(max_attempts=10, delay=1.0), clock=clock
        )
        store.hold("uuid:1", "http://svc/", b"<x/>")
        for _ in range(6):
            store.pump()
            clock.advance(1.0)
        assert len(target.delivered) == 1
        assert target.attempts >= 2

    def test_hold_is_idempotent_per_message_id(self, clock):
        store = HoldRetryStore(lambda m: None, clock=clock)
        first = store.hold("uuid:1", "http://a/", b"1")
        second = store.hold("uuid:1", "http://b/", b"2")
        assert first is second
        assert store.pending() == 1

    def test_expiration_drops_message(self, clock):
        target = FlakyTarget(clock, up_at=1e9)
        store = HoldRetryStore(
            target,
            policy=FixedDelay(max_attempts=1000, delay=0.5),
            default_ttl=5.0,
            clock=clock,
        )
        store.hold("uuid:1", "http://svc/", b"<x/>")
        for _ in range(12):
            store.pump()
            clock.advance(1.0)
        assert store.pending() == 0
        assert store.stats["expired"] == 1
        assert target.delivered == []

    def test_retry_budget_exhaustion_expires(self, clock):
        target = FlakyTarget(clock, up_at=1e9)
        store = HoldRetryStore(
            target, policy=FixedDelay(max_attempts=2, delay=0.1), clock=clock
        )
        store.hold("uuid:1", "http://svc/", b"<x/>", ttl=100.0)
        for _ in range(5):
            store.pump()
            clock.advance(0.2)
        assert store.pending() == 0
        assert target.attempts == 2

    def test_custom_ttl(self, clock):
        store = HoldRetryStore(
            FlakyTarget(clock, up_at=1e9),
            policy=FixedDelay(max_attempts=99, delay=0.1),
            default_ttl=1000.0,
            clock=clock,
        )
        store.hold("uuid:1", "http://svc/", b"<x/>", ttl=1.0)
        clock.advance(2.0)
        store.pump()
        assert store.pending() == 0

    def test_run_until_empty_success(self, clock):
        target = FlakyTarget(clock, up_at=0.0)
        store = HoldRetryStore(target, clock=clock)
        store.hold("uuid:1", "http://svc/", b"<x/>")
        store.run_until_empty(timeout=5.0)
        assert store.pending() == 0

    def test_run_until_empty_timeout(self, clock):
        target = FlakyTarget(clock, up_at=1e9)
        store = HoldRetryStore(
            target,
            policy=FixedDelay(max_attempts=10**6, delay=0.0),
            default_ttl=1e9,
            clock=clock,
        )
        store.hold("uuid:1", "http://svc/", b"<x/>")
        with pytest.raises(DeliveryExpired):
            store.run_until_empty(timeout=1.0)

    def test_stats_shape(self, clock):
        store = HoldRetryStore(FlakyTarget(clock, 0.0), clock=clock)
        store.hold("uuid:1", "http://svc/", b"<x/>")
        store.pump()
        assert store.stats == {
            "held": 1,
            "delivered": 1,
            "expired": 0,
            "attempts": 1,
            "restored": 0,
        }


class TestDuplicateFilter:
    def test_first_sighting_passes(self, clock):
        f = DuplicateFilter(window=10.0, clock=clock)
        assert f.seen("uuid:1") is False

    def test_duplicate_within_window_caught(self, clock):
        f = DuplicateFilter(window=10.0, clock=clock)
        f.seen("uuid:1")
        clock.advance(5.0)
        assert f.seen("uuid:1") is True

    def test_expired_entry_passes_again(self, clock):
        f = DuplicateFilter(window=10.0, clock=clock)
        f.seen("uuid:1")
        clock.advance(11.0)
        assert f.seen("uuid:1") is False

    def test_table_cleanup_bounds_memory(self, clock):
        f = DuplicateFilter(window=1.0, clock=clock)
        for i in range(5000):
            f.seen(f"uuid:{i}")
        clock.advance(2.0)
        f.seen("uuid:trigger-cleanup")
        assert f.size() < 5000

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DuplicateFilter(window=0)

"""Decorrelated jitter on ExponentialBackoff (default remains off)."""

from repro.reliable import ExponentialBackoff


def test_default_schedule_is_deterministic_and_unchanged():
    policy = ExponentialBackoff(max_attempts=5, base=0.05, factor=2.0,
                                max_delay=5.0)
    assert [policy.delay_before(n) for n in range(1, 6)] == [
        0.0, 0.05, 0.1, 0.2, 0.4
    ]
    # repeated queries for the same attempt are stable without jitter
    assert policy.delay_before(3) == 0.1


def test_jittered_delays_stay_within_bounds():
    policy = ExponentialBackoff(max_attempts=50, base=0.05, factor=2.0,
                                max_delay=1.0, jitter=True, seed=7)
    assert policy.delay_before(1) == 0.0
    for attempt in range(2, 50):
        delay = policy.delay_before(attempt)
        assert 0.05 <= delay <= 1.0


def test_seeded_jitter_is_reproducible():
    def schedule(seed):
        policy = ExponentialBackoff(max_attempts=20, jitter=True, seed=seed)
        return [policy.delay_before(n) for n in range(2, 20)]

    assert schedule(42) == schedule(42)
    assert schedule(42) != schedule(43)


def test_jitter_decorrelates_identical_policies():
    # two unseeded policies (distinct RNG states are allowed to collide on
    # a value, but not across a whole schedule)
    a = ExponentialBackoff(max_attempts=20, jitter=True, seed=1)
    b = ExponentialBackoff(max_attempts=20, jitter=True, seed=2)
    sched_a = [a.delay_before(n) for n in range(2, 20)]
    sched_b = [b.delay_before(n) for n in range(2, 20)]
    assert sched_a != sched_b

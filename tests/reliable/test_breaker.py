"""Circuit-breaker state machine and registry tests (ManualClock-driven)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.reliable import BreakerConfig, BreakerRegistry, BreakerState, CircuitBreaker
from repro.util.clock import ManualClock


@pytest.fixture
def clock():
    return ManualClock()


CFG = BreakerConfig(
    consecutive_failures=3,
    failure_rate=0.5,
    window=10.0,
    min_samples=4,
    open_for=5.0,
    half_open_probes=1,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(consecutive_failures=0)
        with pytest.raises(ValueError):
            BreakerConfig(failure_rate=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(failure_rate=1.5)
        with pytest.raises(ValueError):
            BreakerConfig(open_for=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(half_open_probes=0)


class TestStateMachine:
    def test_starts_closed_and_allows(self, clock):
        b = CircuitBreaker(CFG, clock)
        assert b.state == BreakerState.CLOSED
        assert b.allow()

    def test_consecutive_failures_trip(self, clock):
        b = CircuitBreaker(CFG, clock)
        for _ in range(2):
            b.record_failure()
        assert b.state == BreakerState.CLOSED
        b.record_failure()
        assert b.state == BreakerState.OPEN
        assert not b.allow()

    def test_success_resets_consecutive_count(self, clock):
        # rate trip disabled (min_samples unreachable) to isolate the counter
        cfg = BreakerConfig(consecutive_failures=3, min_samples=100)
        b = CircuitBreaker(cfg, clock)
        for _ in range(2):
            b.record_failure()
        b.record_success()
        for _ in range(2):
            b.record_failure()
        assert b.state == BreakerState.CLOSED

    def test_failure_rate_trips_with_enough_samples(self, clock):
        b = CircuitBreaker(CFG, clock)
        # 2 failures / 4 samples = 50% >= threshold, consecutive never hit
        b.record_failure()
        b.record_success()
        b.record_success()
        b.record_failure()
        assert b.state == BreakerState.OPEN

    def test_rate_needs_min_samples(self, clock):
        b = CircuitBreaker(CFG, clock)
        b.record_failure()
        b.record_success()
        b.record_failure()  # 2/3 > 50% but only 3 samples
        assert b.state == BreakerState.CLOSED

    def test_old_samples_age_out_of_the_window(self, clock):
        b = CircuitBreaker(CFG, clock)
        b.record_failure()
        b.record_failure()
        clock.advance(11.0)  # past window
        b.record_success()
        b.record_success()
        b.record_failure()
        # the two aged-out failures don't count: in-window rate is 2/4,
        # which trips exactly at the 0.5 threshold
        b.record_failure()
        assert b.state == BreakerState.OPEN

    def test_half_open_after_open_for(self, clock):
        b = CircuitBreaker(CFG, clock)
        for _ in range(3):
            b.record_failure()
        assert not b.allow()
        clock.advance(5.0)
        assert b.state == BreakerState.HALF_OPEN
        assert b.allow()  # the probe ticket
        assert not b.allow()  # only one probe at a time

    def test_probe_success_closes(self, clock):
        b = CircuitBreaker(CFG, clock)
        for _ in range(3):
            b.record_failure()
        clock.advance(5.0)
        assert b.allow()
        b.record_success()
        assert b.state == BreakerState.CLOSED
        # the window was cleared: old failures don't linger
        assert b.snapshot()["window_samples"] == 0

    def test_probe_failure_reopens(self, clock):
        b = CircuitBreaker(CFG, clock)
        for _ in range(3):
            b.record_failure()
        clock.advance(5.0)
        assert b.allow()
        b.record_failure()
        assert b.state == BreakerState.OPEN
        assert not b.allow()
        clock.advance(5.0)
        assert b.state == BreakerState.HALF_OPEN

    def test_transition_callback(self, clock):
        seen = []
        b = CircuitBreaker(CFG, clock, on_transition=lambda f, t: seen.append((f, t)))
        for _ in range(3):
            b.record_failure()
        clock.advance(5.0)
        assert b.allow()
        b.record_success()
        assert seen == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]


class TestRegistry:
    def test_per_destination_isolation(self, clock):
        reg = BreakerRegistry(CFG, clock, metrics=MetricsRegistry())
        for _ in range(3):
            reg.record("dead:80", ok=False)
        assert not reg.allow("dead:80")
        assert reg.allow("fine:80")
        assert reg.rejected == 1

    def test_url_allowed_maps_to_endpoint_key(self, clock):
        reg = BreakerRegistry(CFG, clock, metrics=MetricsRegistry())
        for _ in range(3):
            reg.record("dead:80", ok=False)
        assert not reg.url_allowed("http://dead:80/mailbox/abc")
        assert reg.url_allowed("http://dead:81/other")
        assert reg.url_allowed("not a url")  # never vetoes on parse failure
        # unknown destinations are healthy by default
        assert reg.url_allowed("http://fresh:80/")

    def test_half_open_urls_stay_eligible(self, clock):
        reg = BreakerRegistry(CFG, clock, metrics=MetricsRegistry())
        for _ in range(3):
            reg.record("d:80", ok=False)
        assert not reg.url_allowed("http://d:80/")
        clock.advance(5.0)
        assert reg.url_allowed("http://d:80/")  # half-open: probes ride traffic

    def test_snapshot_and_metrics(self, clock):
        metrics = MetricsRegistry()
        reg = BreakerRegistry(CFG, clock, metrics=metrics)
        reg.record("a:1", ok=True)
        for _ in range(3):
            reg.record("b:2", ok=False)
        reg.allow("b:2")
        snap = reg.snapshot()
        assert snap["states"] == {"closed": 1, "open": 1, "half_open": 0}
        assert snap["destinations"]["b:2"]["state"] == "open"
        assert snap["rejected"] == 1
        assert reg.stats == {
            "destinations": 2, "open": 1, "half_open": 0, "rejected": 1
        }
        rendered = metrics.render_prometheus()
        assert 'rt_breaker_state{dest="b:2"} 1' in rendered
        assert 'rt_breaker_transitions_total{dest="b:2",to="open"} 1' in rendered
        assert 'rt_breaker_rejected_total{dest="b:2"} 1' in rendered

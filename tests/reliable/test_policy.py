"""Tests for retry policies."""

import pytest

from repro.reliable import ExponentialBackoff, FixedDelay


class TestFixedDelay:
    def test_retries_until_max(self):
        p = FixedDelay(max_attempts=3, delay=0.5)
        assert p.should_retry(1)
        assert p.should_retry(2)
        assert not p.should_retry(3)

    def test_constant_delay(self):
        p = FixedDelay(max_attempts=3, delay=0.5)
        assert p.delay_before(2) == 0.5
        assert p.delay_before(7) == 0.5

    def test_single_attempt_never_retries(self):
        assert not FixedDelay(max_attempts=1).should_retry(1)

    @pytest.mark.parametrize("kwargs", [{"max_attempts": 0}, {"delay": -1}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FixedDelay(**kwargs)


class TestExponentialBackoff:
    def test_growth(self):
        p = ExponentialBackoff(max_attempts=6, base=1.0, factor=2.0, max_delay=100)
        assert p.delay_before(2) == 1.0
        assert p.delay_before(3) == 2.0
        assert p.delay_before(4) == 4.0

    def test_cap(self):
        p = ExponentialBackoff(base=1.0, factor=10.0, max_delay=5.0)
        assert p.delay_before(5) == 5.0

    def test_first_attempt_immediate(self):
        assert ExponentialBackoff().delay_before(1) == 0.0

    def test_retry_budget(self):
        p = ExponentialBackoff(max_attempts=2)
        assert p.should_retry(1)
        assert not p.should_retry(2)

    @pytest.mark.parametrize(
        "kwargs",
        [{"max_attempts": 0}, {"base": -1}, {"factor": 0.5}, {"max_delay": -1}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExponentialBackoff(**kwargs)

"""The split-phase claim API: expiry must never race a redelivery.

A message claimed by ``take_due`` is invisible to the expiry scan until
its driver resolves it with ``complete`` or ``reschedule`` — so a message
whose redelivery is in flight when its TTL lapses is counted exactly once
(delivered *or* expired, never both).
"""

import threading

from repro.reliable import FixedDelay, HoldRetryStore
from repro.util.clock import ManualClock


def make_store(ttl=10.0, delay=1.0, max_attempts=100):
    clock = ManualClock()
    store = HoldRetryStore(
        policy=FixedDelay(max_attempts=max_attempts, delay=delay),
        default_ttl=ttl,
        clock=clock,
    )
    return store, clock


def test_claimed_message_is_invisible_to_expiry_scan():
    store, clock = make_store(ttl=10.0)
    store.hold("m1", "http://a:80/", b"x")
    (claimed,) = store.take_due(now=clock.now())
    assert claimed.message_id == "m1"
    clock.advance(20.0)  # TTL lapses while the redelivery is in flight
    assert store.take_due(now=clock.now()) == []
    assert store.stats["expired"] == 0
    # the in-flight delivery lands: delivered once, expired never
    assert store.complete("m1") is True
    assert store.stats == {
        "held": 1, "delivered": 1, "expired": 0, "attempts": 1, "restored": 0
    }
    assert store.pending() == 0


def test_reschedule_after_ttl_expires_exactly_once():
    store, clock = make_store(ttl=10.0)
    store.hold("m1", "http://a:80/", b"x")
    store.take_due(now=clock.now())
    clock.advance(20.0)
    assert store.reschedule("m1", now=clock.now()) is False
    assert store.stats["expired"] == 1
    # late duplicate resolutions are no-ops, not double counts
    assert store.complete("m1") is False
    assert store.reschedule("m1", now=clock.now()) is False
    assert store.stats == {
        "held": 1, "delivered": 0, "expired": 1, "attempts": 1, "restored": 0
    }


def test_unclaimed_message_expires_in_take_due():
    store, clock = make_store(ttl=5.0)
    store.hold("m1", "http://a:80/", b"x")
    clock.advance(6.0)
    assert store.take_due(now=clock.now()) == []
    assert store.stats["expired"] == 1
    assert store.pending() == 0


def test_claim_blocks_concurrent_take_due():
    store, clock = make_store(ttl=100.0, delay=0.0)
    store.hold("m1", "http://a:80/", b"x")
    assert len(store.take_due(now=clock.now())) == 1
    # a second pump tick before resolution must not re-claim it
    assert store.take_due(now=clock.now()) == []
    store.reschedule("m1", now=clock.now())
    assert len(store.take_due(now=clock.now())) == 1


def test_retry_budget_exhaustion_expires_via_reschedule():
    store, clock = make_store(ttl=1000.0, delay=1.0, max_attempts=3)
    store.hold("m1", "http://a:80/", b"x")
    for _ in range(3):
        (msg,) = store.take_due(now=clock.now())
        store.reschedule(msg.message_id, now=clock.now())
        clock.advance(1.0)
    assert store.pending() == 0
    assert store.stats["expired"] == 1
    assert store.stats["attempts"] == 3


def test_threaded_stress_never_double_counts():
    """Many messages, every TTL lapsing mid-flight, two racing resolvers."""
    store, clock = make_store(ttl=10.0)
    n = 200
    for i in range(n):
        store.hold(f"m{i}", "http://a:80/", b"x")
    claimed = store.take_due(now=clock.now())
    assert len(claimed) == n
    clock.advance(20.0)  # every message is now past TTL

    barrier = threading.Barrier(3)

    def complete_half():
        barrier.wait()
        for msg in claimed[::2]:
            store.complete(msg.message_id)

    def reschedule_half():
        barrier.wait()
        for msg in claimed[1::2]:
            store.reschedule(msg.message_id, now=clock.now())

    def expiry_scanner():
        barrier.wait()
        for _ in range(50):
            store.take_due(now=clock.now())

    threads = [
        threading.Thread(target=complete_half),
        threading.Thread(target=reschedule_half),
        threading.Thread(target=expiry_scanner),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    stats = store.stats
    assert stats["delivered"] == n // 2
    assert stats["expired"] == n // 2
    assert stats["delivered"] + stats["expired"] == stats["held"]
    assert store.pending() == 0

"""Integration tests: the binary-XML protocol extension end to end."""

import pytest

from repro.core import MsgDispatcher, MsgDispatcherConfig, ServiceRegistry
from repro.errors import AuthError
from repro.http import Headers, HttpRequest
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.soap import Envelope, parse_rpc_response
from repro.soap.binxml import BINXML_CONTENT_TYPE, decode_envelope, encode_envelope
from repro.util.ids import IdGenerator
from repro.workload.echo import EchoService, make_echo_message, make_echo_request


@pytest.fixture
def binary_ws(inproc):
    app = SoapHttpApp(accept_binary=True)
    app.mount("/echo", EchoService())
    server = HttpServer(inproc.listen("ws:9000"), app.handle_request).start()
    yield server
    server.stop()


def binary_post(body: bytes) -> HttpRequest:
    headers = Headers()
    headers.set("Content-Type", BINXML_CONTENT_TYPE)
    return HttpRequest("POST", "/", headers=headers, body=body)


def test_binary_request_gets_binary_reply(inproc, binary_ws):
    client = HttpClient(inproc)
    wire = encode_envelope(make_echo_request())
    resp = client.request("http://ws:9000/echo", binary_post(wire))
    assert resp.status == 200
    assert BINXML_CONTENT_TYPE in resp.headers.get("Content-Type")
    reply = decode_envelope(resp.body)
    assert parse_rpc_response(reply).result("return") is not None
    client.close()


def test_text_callers_unaffected(inproc, binary_ws):
    client = HttpClient(inproc)
    reply = client.call_soap("http://ws:9000/echo", make_echo_request())
    assert parse_rpc_response(reply).result("return") is not None
    client.close()


def test_binary_smaller_on_the_wire(inproc, binary_ws):
    env = make_echo_request()
    assert len(encode_envelope(env)) < len(env.to_bytes())


def test_binary_garbage_rejected_cleanly(inproc, binary_ws):
    client = HttpClient(inproc)
    resp = client.request(
        "http://ws:9000/echo", binary_post(b"BX1\xff\xff\xff\xff\x7f")
    )
    assert resp.status == 400
    client.close()


def test_non_binary_app_rejects_binary(inproc):
    app = SoapHttpApp()  # accept_binary off
    app.mount("/echo", EchoService())
    server = HttpServer(inproc.listen("plain:9100"), app.handle_request).start()
    client = HttpClient(inproc)
    wire = encode_envelope(make_echo_request())
    resp = client.request("http://plain:9100/echo", binary_post(wire))
    assert resp.status == 400
    server.stop()
    client.close()


def test_msg_dispatcher_inspector_hook(inproc):
    """The MSG-Dispatcher's 'message security inspection' rejects."""
    registry = ServiceRegistry()
    registry.register("echo", "http://nowhere:1/echo")
    rejected = []

    def inspector(envelope: Envelope, logical: str) -> None:
        rejected.append(logical)
        raise AuthError("inspection failed")

    dispatcher = MsgDispatcher(
        registry,
        HttpClient(inproc),
        own_address="http://wsd:8000/msg",
        config=MsgDispatcherConfig(cx_threads=1, ws_threads=1),
        inspector=inspector,
    )
    from repro.rt.service import RequestContext

    ids = IdGenerator("insp", seed=1)
    msg = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
    dispatcher.handle(msg, RequestContext(path="/msg/echo"))

    import time

    deadline = time.monotonic() + 3
    while time.monotonic() < deadline:
        if dispatcher.stats.get("rejected_by_inspector", 0) == 1:
            break
        time.sleep(0.02)
    assert dispatcher.stats.get("rejected_by_inspector") == 1
    assert rejected == ["echo"]
    assert dispatcher.stats.get("delivered", 0) == 0
    dispatcher.stop()

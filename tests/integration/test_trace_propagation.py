"""End-to-end trace propagation: one trace id across every hop.

The acceptance scenario for the observability subsystem: a traced message
through the MSG-Dispatcher pipeline yields a retrievable trace whose spans
(admit, queue-wait, deliver, ...) share the message's trace id, in causal
order, on both transport stacks — real threads over the in-process
network, and the deterministic simulator.
"""

import json
import logging

import pytest

from repro.core import MsgDispatcher, MsgDispatcherConfig, ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.http import Headers, HttpRequest
from repro.msgbox import MailboxStore, MsgBoxClient, MsgBoxService
from repro.msgbox.security import MailboxSecurity
from repro.msgbox.service import make_mailbox_epr
from repro.obs import (
    Introspection,
    MetricsRegistry,
    TraceStore,
    ensure_trace,
    extract_trace,
)
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer, sim_http_request
from repro.simnet.services import SimAsyncEchoService
from repro.simnet.topology import AccessLink, Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import AsyncEchoService, make_echo_message


def span_names(spans):
    return [s.name for s in spans]


def first_span(spans, name, **attrs):
    for s in spans:
        if s.name == name and all(s.attrs.get(k) == v for k, v in attrs.items()):
            return s
    raise AssertionError(f"no span {name!r} with {attrs} in {span_names(spans)}")


class TestThreadedStack:
    @pytest.fixture
    def deployment(self, inproc):
        metrics = MetricsRegistry()
        traces = TraceStore()

        ws_client = HttpClient(inproc, metrics=metrics)
        async_echo = AsyncEchoService(
            ws_client, ids=IdGenerator("ws", seed=1), traces=traces
        )
        ws_app = SoapHttpApp()
        ws_app.mount("/echo-msg", async_echo)
        ws_server = HttpServer(
            inproc.listen("internal:9000"), ws_app.handle_request,
            workers=4, name="ws", metrics=metrics,
        ).start()

        registry = ServiceRegistry(metrics=metrics)
        registry.register("echo-msg", "http://internal:9000/echo-msg")

        disp_client = HttpClient(inproc, metrics=metrics)
        msg_disp = MsgDispatcher(
            registry,
            disp_client,
            own_address="http://wsd:8000/msg",
            config=MsgDispatcherConfig(cx_threads=2, ws_threads=4),
            metrics=metrics,
            traces=traces,
        )
        msgbox = MsgBoxService(
            MailboxStore(),
            security=MailboxSecurity(b"trace-test-secret"),
            base_url="http://wsd:8000/mailbox",
            metrics=metrics,
            traces=traces,
        )
        intro = Introspection(metrics=metrics, traces=traces)
        app = SoapHttpApp()
        app.mount("/msg", msg_disp)
        app.mount("/mailbox", msgbox)
        intro.mount(app)
        front = HttpServer(
            inproc.listen("wsd:8000"), app.handle_request,
            workers=8, name="front", metrics=metrics,
        ).start()

        yield inproc, metrics, traces
        msg_disp.stop()
        front.stop()
        ws_server.stop()
        ws_client.close()
        disp_client.close()

    @pytest.fixture
    def traced_roundtrip(self, deployment, caplog):
        """Send one traced message through the full pipeline; return
        (trace_id, spans, reply, client, traces, metrics, caplog)."""
        inproc, metrics, traces = deployment
        client = HttpClient(inproc, metrics=metrics)
        mbc = MsgBoxClient(client, "http://wsd:8000/mailbox")
        mbc.create()

        msg = make_echo_message(
            to="urn:wsd:echo-msg",
            message_id=IdGenerator("cli", seed=7).next(),
            reply_to=mbc.epr(),
        )
        ctx = ensure_trace(msg)
        with caplog.at_level(logging.DEBUG, logger="repro"):
            resp = client.post_envelope("http://wsd:8000/msg/echo-msg", msg)
            assert resp.status == 202
            messages = mbc.poll(expected=1, timeout=5)
        assert len(messages) == 1
        spans = traces.get(ctx.trace_id)
        # caplog drops setup-phase records before the test body runs;
        # snapshot them here
        records = list(caplog.records)
        yield ctx.trace_id, spans, messages[0], client, traces, metrics, records
        client.close()

    def test_one_trace_id_spans_every_hop(self, traced_roundtrip):
        trace_id, spans, reply, *_ = traced_roundtrip
        assert spans, "no spans recorded"
        assert {s.trace_id for s in spans} == {trace_id}
        components = {s.component for s in spans}
        assert {"msgd", "echo", "msgbox"} <= components
        # request hop, service think, reply hop, final deposit
        names = set(span_names(spans))
        assert {"admit", "queue-wait", "route", "deliver", "service", "deposit"} <= names
        # the reply that reached the mailbox still carries the context
        assert extract_trace(reply).trace_id == trace_id

    def test_spans_in_causal_order_with_sane_durations(self, traced_roundtrip):
        trace_id, spans, _, _, traces, *_ = traced_roundtrip
        admit = first_span(spans, "admit")
        accept_wait = first_span(spans, "queue-wait", queue="accept")
        dest_wait = first_span(spans, "queue-wait", queue="destination")
        deliver = first_span(spans, "deliver")
        service = first_span(spans, "service")
        # causal order along the request hop; the service handles the
        # message *inside* the delivery exchange, so it starts after the
        # delivery does (but may finish before the 202 comes back)
        assert admit.start <= accept_wait.start <= dest_wait.start
        assert dest_wait.start <= deliver.start <= service.start
        # the three acceptance spans fit inside the trace's wall time
        wall = traces.wall_time(trace_id)
        assert wall > 0
        total = admit.duration + accept_wait.duration + deliver.duration
        assert total <= wall * 1.001 + 1e-6

    def test_trace_endpoint_serves_the_trace(self, traced_roundtrip):
        trace_id, _, _, client, *_ = traced_roundtrip
        resp = client.request(
            f"http://wsd:8000/trace/{trace_id}", HttpRequest("GET", "/")
        )
        assert resp.status == 200
        doc = json.loads(resp.body)
        assert doc["trace_id"] == trace_id
        assert len(doc["spans"]) >= 3
        names = [s["name"] for s in doc["spans"]]
        for required in ("admit", "queue-wait", "deliver"):
            assert required in names
        assert sum(
            s["duration"]
            for s in doc["spans"]
            if s["name"] in ("admit", "queue-wait", "deliver")
        ) <= doc["wall_time"] * 2 + 1e-6  # request + reply hop both recorded

        # unknown ids 404
        resp = client.request(
            "http://wsd:8000/trace/trace-nope", HttpRequest("GET", "/")
        )
        assert resp.status == 404

    def test_metrics_endpoint_shows_queues_and_latency(self, traced_roundtrip):
        client = traced_roundtrip[3]
        resp = client.request(
            "http://wsd:8000/metrics", HttpRequest("GET", "/")
        )
        assert resp.status == 200
        text = resp.body.decode()
        # per-destination queue depth gauge, labeled by destination
        assert "msgd_destination_queue_depth{dest=" in text
        # latency histogram exposes cumulative buckets and totals
        assert "# TYPE msgd_queue_wait_seconds histogram" in text
        assert 'msgd_queue_wait_seconds_bucket{' in text
        assert "msgd_transmit_seconds_count" in text
        assert "msgd_delivered_total 2" in text  # ws hop + mailbox hop

    def test_log_lines_carry_the_trace_id_at_each_hop(self, traced_roundtrip):
        trace_id, *_, records = traced_roundtrip
        by_logger = {}
        for record in records:
            if f"trace={trace_id}" in record.getMessage():
                by_logger.setdefault(record.name, set()).add(
                    record.getMessage().split(" ", 1)[0]
                )
        assert "event=admit" in by_logger.get("repro.msgd", set())
        assert "event=deliver" in by_logger.get("repro.msgd", set())
        assert "event=deposit" in by_logger.get("repro.msgbox", set())


class TestSimnetStack:
    @pytest.fixture
    def world(self, sim):
        metrics = MetricsRegistry()
        traces = TraceStore()
        net = Network(sim)
        link = AccessLink(5000, 5000, 0.005)
        client = net.add_host("client", link)
        ws_host = net.add_host("ws", link)
        wsd_host = net.add_host("wsd", link)

        echo = SimAsyncEchoService(net, ws_host, reply_senders=8, traces=traces)
        SimHttpServer(net, ws_host, 9000, echo.handler)
        registry = ServiceRegistry(metrics=metrics)
        registry.register("echo", "http://ws:9000/echo")

        disp = SimMsgDispatcher(
            net, wsd_host, registry,
            own_address="http://wsd:8000/msg",
            config=SimMsgDispatcherConfig(cx_workers=2, ws_workers=4),
            metrics=metrics,
            traces=traces,
        )
        SimHttpServer(net, wsd_host, 8000, disp.handler)

        store = MailboxStore(clock=sim.clock)
        msgbox = MsgBoxService(
            store, base_url="http://wsd:8500/mailbox",
            clock=sim.clock, metrics=metrics, traces=traces,
        )
        app = SoapHttpApp()
        app.mount("/mailbox", msgbox)
        SimHttpServer(net, wsd_host, 8500, lambda r: app.handle_request(r, None))
        return net, client, store, metrics, traces

    def test_trace_spans_the_simulated_pipeline(self, world):
        net, client, store, metrics, traces = world
        sim = net.sim
        mailbox_id = store.create()
        epr = make_mailbox_epr("http://wsd:8500/mailbox", mailbox_id)

        msg = make_echo_message(
            to="urn:wsd:echo",
            message_id=IdGenerator("t", seed=1).next(),
            reply_to=epr,
        )
        ctx = ensure_trace(msg)
        headers = Headers()
        headers.set("Content-Type", SOAP11_CONTENT_TYPE)

        def send():
            resp = yield from sim_http_request(
                net, client, "wsd", 8000,
                HttpRequest("POST", "/msg/echo", headers=headers, body=msg.to_bytes()),
            )
            return resp.status

        assert sim.run(sim.process(send())) == 202
        sim.run(until=sim.now + 5.0)
        assert store.peek_count(mailbox_id) == 1

        spans = traces.get(ctx.trace_id)
        assert {s.trace_id for s in spans} == {ctx.trace_id}
        names = set(span_names(spans))
        assert {"admit", "queue-wait", "route", "deliver", "service", "deposit"} <= names

        # all timestamps live in the simulated clock domain
        assert all(0.0 <= s.start <= s.end <= sim.now for s in spans)

        # causal order along the request hop, in simulated time
        admit = first_span(spans, "admit")
        accept_wait = first_span(spans, "queue-wait", queue="accept")
        dest_wait = first_span(spans, "queue-wait", queue="destination")
        deliver = first_span(spans, "deliver")
        service = first_span(spans, "service")
        deposit = first_span(spans, "deposit")
        assert admit.start <= accept_wait.start <= dest_wait.start
        # the service handles the message inside the delivery exchange;
        # the reply's mailbox deposit comes last
        assert dest_wait.end <= deliver.start <= service.start <= deposit.end

        # the metrics side saw the same traffic
        snap = metrics.snapshot()
        delivered = snap["msgd_delivered_total"]["samples"][0]["value"]
        assert delivered >= 1
        assert snap["msgd_queue_wait_seconds"]["samples"]

    def test_trace_survives_the_simulated_wire(self, world):
        """The deposited reply still carries the originating trace id."""
        net, client, store, metrics, traces = world
        sim = net.sim
        mailbox_id = store.create()
        epr = make_mailbox_epr("http://wsd:8500/mailbox", mailbox_id)
        msg = make_echo_message(
            to="urn:wsd:echo",
            message_id=IdGenerator("t", seed=2).next(),
            reply_to=epr,
        )
        ctx = ensure_trace(msg)
        headers = Headers()
        headers.set("Content-Type", SOAP11_CONTENT_TYPE)

        def send():
            yield from sim_http_request(
                net, client, "wsd", 8000,
                HttpRequest("POST", "/msg/echo", headers=headers, body=msg.to_bytes()),
            )

        sim.run(sim.process(send()))
        sim.run(until=sim.now + 5.0)

        from repro.soap import Envelope

        deposited = store.take(mailbox_id, max_messages=1)
        assert len(deposited) == 1
        reply = Envelope.from_bytes(deposited[0])
        assert extract_trace(reply).trace_id == ctx.trace_id

"""End-to-end integration: the full WS-Dispatcher stack on real threads.

Recreates the paper's Figure 1 choreography (steps 1-8) inside one
process: firewalled client → MSG-Dispatcher → Registry → WS →
MSG-Dispatcher → WS-MsgBox → client poll.
"""

import pytest

from repro.core import (
    MsgDispatcher,
    MsgDispatcherConfig,
    RpcDispatcher,
    ServiceRegistry,
)
from repro.core.registry import RegistryService
from repro.http import HttpRequest, HttpResponse
from repro.msgbox import MailboxSecurity, MailboxStore, MsgBoxService, MsgBoxClient
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.soap import parse_rpc_response
from repro.util.ids import IdGenerator
from repro.workload.echo import (
    AsyncEchoService,
    EchoService,
    make_echo_message,
    make_echo_request,
)


@pytest.fixture
def deployment(inproc):
    """A complete deployment: WS host, dispatcher host, client tooling."""
    handles = {}

    # --- inaccessible zone: two services on an internal host --------------
    ws_client = HttpClient(inproc)
    async_echo = AsyncEchoService(ws_client, ids=IdGenerator("ws", seed=1))
    ws_app = SoapHttpApp()
    ws_app.mount("/echo-msg", async_echo)
    ws_app.mount("/echo-rpc", EchoService())
    handles["ws_server"] = HttpServer(
        inproc.listen("internal:9000"), ws_app.handle_request, workers=4
    ).start()

    # --- intermediary: registry + both dispatchers + mailbox -------------
    registry = ServiceRegistry()
    registry.register("echo-msg", "http://internal:9000/echo-msg")
    registry.register("echo-rpc", "http://internal:9000/echo-rpc")
    registry_svc = RegistryService(registry)

    disp_client = HttpClient(inproc)
    msg_disp = MsgDispatcher(
        registry,
        disp_client,
        own_address="http://wsd:8000/msg",
        config=MsgDispatcherConfig(cx_threads=2, ws_threads=4),
    )
    rpc_disp = RpcDispatcher(registry, disp_client)
    msgbox = MsgBoxService(
        MailboxStore(),
        security=MailboxSecurity(b"deployment-secret"),
        base_url="http://wsd:8000/mailbox",
    )
    app = SoapHttpApp()
    app.mount("/msg", msg_disp)
    app.mount("/mailbox", msgbox)
    app.mount("/registry", registry_svc)
    app.mount_page(
        "/registry",
        lambda req: HttpResponse(
            200, body=registry_svc.render_listing().encode()
        ),
    )

    def front(request: HttpRequest, peer=None) -> HttpResponse:
        if request.target.startswith("/rpc"):
            return rpc_disp.handle_request(request, peer)
        return app.handle_request(request, peer)

    handles["front"] = HttpServer(
        inproc.listen("wsd:8000"), front, workers=8
    ).start()
    handles["msg_disp"] = msg_disp
    handles["registry"] = registry

    yield inproc, handles, async_echo
    msg_disp.stop()
    handles["front"].stop()
    handles["ws_server"].stop()
    ws_client.close()
    disp_client.close()


def test_figure1_full_choreography(deployment):
    """Steps 1-8 of Figure 1, asynchronous path with mailbox."""
    inproc, handles, async_echo = deployment
    client_http = HttpClient(inproc)
    ids = IdGenerator("cli", seed=7)

    # (1) client creates a mailbox at the intermediary
    mbc = MsgBoxClient(client_http, "http://wsd:8000/mailbox")
    mbc.create()

    # (2) client sends a one-way message addressed by logical name
    msg = make_echo_message(
        to="urn:wsd:echo-msg", message_id=ids.next(), reply_to=mbc.epr()
    )
    resp = client_http.post_envelope("http://wsd:8000/msg/echo-msg", msg)
    assert resp.status == 202

    # (3..7) dispatcher resolves, forwards, WS replies, response lands in
    # the mailbox; (8) the client picks it up
    messages = mbc.poll(expected=1, timeout=5)
    assert len(messages) == 1
    echoed = parse_rpc_response(messages[0])
    assert echoed.result("return") is not None

    # the WS only ever saw the dispatcher's return address
    stats = handles["msg_disp"].stats
    assert stats["routed_requests"] == 1
    assert stats["routed_responses"] == 1
    mbc.destroy()
    client_http.close()


def test_rpc_and_msg_paths_coexist(deployment):
    inproc, handles, async_echo = deployment
    client_http = HttpClient(inproc)
    reply = client_http.call_soap(
        "http://wsd:8000/rpc/echo-rpc", make_echo_request()
    )
    assert parse_rpc_response(reply).result("return") is not None
    client_http.close()


def test_registry_browsable_over_http(deployment):
    inproc, handles, async_echo = deployment
    client_http = HttpClient(inproc)
    resp = client_http.request(
        "http://wsd:8000/registry/list", HttpRequest("GET", "/")
    )
    assert resp.status == 200
    assert b"echo-msg" in resp.body and b"echo-rpc" in resp.body
    client_http.close()


def test_service_relocation_via_registry(deployment, inproc):
    """Location transparency: re-registering moves traffic, clients unchanged."""
    inproc_, handles, async_echo = deployment
    app = SoapHttpApp()
    moved = EchoService()
    app.mount("/echo-rpc", moved)
    new_host = HttpServer(inproc.listen("internal2:9100"), app.handle_request).start()
    handles["registry"].register("echo-rpc", "http://internal2:9100/echo-rpc")

    client_http = HttpClient(inproc)
    client_http.call_soap("http://wsd:8000/rpc/echo-rpc", make_echo_request())
    assert moved.calls == 1
    new_host.stop()
    client_http.close()


def test_many_clients_share_one_mailbox_service(deployment):
    inproc, handles, async_echo = deployment
    ids = IdGenerator("multi", seed=3)
    clients = []
    for _ in range(5):
        http = HttpClient(inproc)
        mbc = MsgBoxClient(http, "http://wsd:8000/mailbox")
        mbc.create()
        clients.append((http, mbc))
    for i, (http, mbc) in enumerate(clients):
        msg = make_echo_message(
            to="urn:wsd:echo-msg", message_id=ids.next(), reply_to=mbc.epr()
        )
        http.post_envelope("http://wsd:8000/msg/echo-msg", msg)
    for http, mbc in clients:
        assert len(mbc.poll(expected=1, timeout=5)) == 1
        http.close()

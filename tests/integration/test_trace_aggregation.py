"""Cross-process trace aggregation over the simulated network.

Three "processes" — the client shim, the echo service host, and the
WS-Dispatcher/MsgBox host — each record spans into their *own* trace
store.  Span shippers POST the remote stores' outboxes to the
dispatcher's ``/trace-report`` endpoint, after which the dispatcher's
aggregated store renders the complete multi-hop span tree for a single
trace id.
"""

import json

import pytest

from repro.core import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.http import Headers, HttpRequest
from repro.msgbox import MailboxStore, MsgBoxService
from repro.msgbox.service import make_mailbox_epr
from repro.obs import Introspection, MetricsRegistry, TraceStore
from repro.obs.spanreport import (
    SPAN_REPORT_PATH,
    ReportingTraceStore,
    SimSpanShipper,
    SpanReportHandler,
)
from repro.obs.trace import TraceContext, attach_trace
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer, sim_http_request
from repro.simnet.services import SimAsyncEchoService
from repro.simnet.topology import AccessLink, Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message


@pytest.fixture
def world(sim):
    """client / ws / wsd hosts, each with its own per-process store."""
    metrics = MetricsRegistry()
    aggregated = TraceStore(span_prefix="wsd")
    client_traces = ReportingTraceStore(span_prefix="client")
    svc_traces = ReportingTraceStore(span_prefix="svc")

    net = Network(sim)
    link = AccessLink(5000, 5000, 0.005)
    client = net.add_host("client", link)
    ws_host = net.add_host("ws", link)
    wsd_host = net.add_host("wsd", link)

    echo = SimAsyncEchoService(net, ws_host, reply_senders=8, traces=svc_traces)
    SimHttpServer(net, ws_host, 9000, echo.handler)
    registry = ServiceRegistry(metrics=metrics)
    registry.register("echo", "http://ws:9000/echo")

    dispatcher = SimMsgDispatcher(
        net, wsd_host, registry,
        own_address="http://wsd:8000/msg",
        config=SimMsgDispatcherConfig(cx_workers=2, ws_workers=4),
        metrics=metrics, traces=aggregated,
    )
    report_handler = SpanReportHandler(aggregated, metrics=metrics)
    intro = Introspection(metrics=metrics, traces=aggregated)
    intro_app = SoapHttpApp()
    intro.mount(intro_app)

    def wsd_handler(request: HttpRequest):
        path = request.target.split("?", 1)[0]
        if path == SPAN_REPORT_PATH:
            return report_handler(request)
        if path.startswith("/trace"):
            return intro_app.handle_request(request, None)
        return (yield from dispatcher.handler(request))

    SimHttpServer(net, wsd_host, 8000, wsd_handler)

    store = MailboxStore(clock=sim.clock)
    msgbox = MsgBoxService(
        store, base_url="http://wsd:8500/mailbox",
        clock=sim.clock, metrics=metrics, traces=aggregated,
    )
    mb_app = SoapHttpApp()
    mb_app.mount("/mailbox", msgbox)
    SimHttpServer(net, wsd_host, 8500, lambda r: mb_app.handle_request(r, None))

    shippers = [
        SimSpanShipper(net, client, client_traces, "wsd", 8000, interval=0.25),
        SimSpanShipper(net, ws_host, svc_traces, "wsd", 8000, interval=0.25),
    ]
    for shipper in shippers:
        shipper.start()

    return {
        "net": net,
        "client": client,
        "store": store,
        "aggregated": aggregated,
        "client_traces": client_traces,
        "svc_traces": svc_traces,
        "shippers": shippers,
    }


def _send_traced(world):
    """Send one traced message; returns (trace_id, mailbox_id)."""
    net, client = world["net"], world["client"]
    sim = net.sim
    mailbox_id = world["store"].create()
    epr = make_mailbox_epr("http://wsd:8500/mailbox", mailbox_id)
    mid = IdGenerator("agg", seed=11).next()
    msg = make_echo_message(to="urn:wsd:echo", message_id=mid, reply_to=epr)

    client_traces = world["client_traces"]
    ctx = TraceContext(f"trace-{mid}")
    send_sid = client_traces.new_span_id()
    attach_trace(msg, ctx.child(send_sid))
    headers = Headers()
    headers.set("Content-Type", SOAP11_CONTENT_TYPE)

    def send():
        t_send = sim.now
        resp = yield from sim_http_request(
            net, client, "wsd", 8000,
            HttpRequest("POST", "/msg/echo", headers=headers, body=msg.to_bytes()),
        )
        client_traces.record(
            ctx.trace_id, "send", "client", t_send, sim.now,
            span_id=send_sid, status=str(resp.status),
        )
        return resp.status

    assert sim.run(sim.process(send())) == 202
    # let delivery, the reply hop, and at least one shipping round land
    sim.run(until=sim.now + 5.0)
    return ctx.trace_id, mailbox_id


def test_aggregated_store_holds_the_complete_span_tree(world):
    trace_id, mailbox_id = _send_traced(world)
    assert world["store"].peek_count(mailbox_id) == 1

    spans = world["aggregated"].get(trace_id)
    components = {s.component for s in spans}
    # spans from all three processes landed in ONE store
    assert {"client", "msgd", "echo", "msgbox"} <= components

    # prefix scheme: remote span ids arrive verbatim, no collisions
    ids = [s.span_id for s in spans]
    assert len(ids) == len(set(ids))
    assert any(i.startswith("client-") for i in ids)
    assert any(i.startswith("svc-") for i in ids)
    assert any(i.startswith("wsd-") for i in ids)

    # every recorded parent pointer resolves inside the aggregated tree
    id_set = set(ids)
    parents = [s.parent_id for s in spans if s.parent_id is not None]
    assert parents, "expected at least one parent-linked span"
    assert all(p in id_set for p in parents)

    # the client's root "send" span is present and spans the exchange
    send = next(s for s in spans if s.name == "send")
    assert send.component == "client"
    assert send.span_id.startswith("client-")

    # nothing was lost in shipping
    assert world["client_traces"].pending == 0
    assert world["svc_traces"].pending == 0
    assert sum(s.shipped for s in world["shippers"]) >= 2


def test_trace_endpoint_renders_the_multi_process_tree(world):
    trace_id, _ = _send_traced(world)
    net, client = world["net"], world["client"]
    sim = net.sim

    def scrape():
        resp = yield from sim_http_request(
            net, client, "wsd", 8000,
            HttpRequest("GET", f"/trace/{trace_id}"),
        )
        return resp

    response = sim.run(sim.process(scrape()))
    assert response.status == 200
    doc = json.loads(response.body)
    assert doc["trace_id"] == trace_id
    components = {s["component"] for s in doc["spans"]}
    assert {"client", "msgd", "echo", "msgbox"} <= components
    # ≥ 3 distinct processes contributed spans to one GET /trace/<id> page
    assert len(components) >= 3

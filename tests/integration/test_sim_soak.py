"""Deterministic soak test: mixed workload, conservation invariants.

Runs a long (simulated) mixed workload through the full simulated
deployment and checks *accounting identities*: every message the
dispatcher accepted is either delivered, dropped for a counted reason, or
still queued; every mailbox deposit is a delivered response; no
connection slots leak.
"""

import pytest

from dataclasses import replace

from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.http import Headers, HttpRequest
from repro.msgbox import MailboxStore, MsgBoxService
from repro.msgbox.service import make_mailbox_epr
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.services import SimAsyncEchoService
from repro.simnet.topology import Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.workload.sim_testclient import SimRampConfig, SimRampTester


@pytest.mark.slow
def test_soak_accounting_identities():
    sim = Simulator()
    net = Network(sim)
    client_host = add_site(net, INRIA, name="inria")
    ws_host = add_site(net, replace(BACKBONE_IU, name="iuWS"), open_ports=(9000,))
    wsd_host = add_site(
        net, replace(BACKBONE_IU, name="iuWSD"), open_ports=(8000, 8500)
    )

    echo = SimAsyncEchoService(net, ws_host, reply_senders=32)
    SimHttpServer(net, ws_host, 9000, echo.handler, workers=32, service_time=0.002)

    registry = ServiceRegistry()
    registry.register("echo", "http://iuWS:9000/echo")
    dispatcher = SimMsgDispatcher(
        net,
        wsd_host,
        registry,
        own_address="http://iuWSD:8000/msg",
        config=SimMsgDispatcherConfig(
            cx_workers=4,
            ws_workers=8,
            parallel_per_destination=4,
            shed_on_full=True,
            passthrough_reply_prefixes=("http://iuWSD:8500/mailbox",),
        ),
    )
    SimHttpServer(net, wsd_host, 8000, dispatcher.handler, workers=32,
                  service_time=0.002)

    store = MailboxStore(clock=sim.clock, max_messages_per_box=1_000_000)
    msgbox = MsgBoxService(store, base_url="http://iuWSD:8500/mailbox")
    app = SoapHttpApp()
    app.mount("/mailbox", msgbox)
    SimHttpServer(net, wsd_host, 8500, lambda r: app.handle_request(r, None),
                  workers=32, service_time=0.002)

    ids = IdGenerator("soak", seed=99)
    boxes = [store.create() for _ in range(20)]
    eprs = [make_mailbox_epr("http://iuWSD:8500/mailbox", b) for b in boxes]

    def factory(counter=[0]):
        counter[0] += 1
        env = make_echo_message(
            to="urn:wsd:echo",
            message_id=ids.next(),
            reply_to=eprs[counter[0] % len(eprs)],
        )
        headers = Headers()
        headers.set("Content-Type", SOAP11_CONTENT_TYPE)
        return HttpRequest("POST", "/msg/echo", headers=headers, body=env.to_bytes())

    tester = SimRampTester(net, client_host, "iuWSD", 8000, "/msg/echo", factory)
    result = tester.run(SimRampConfig(clients=20, duration=120.0))
    # drain: let in-flight deliveries and replies settle
    sim.run(until=sim.now + 40.0)

    stats = dispatcher.stats
    accepted = stats.get("accepted", 0)
    routed = stats.get("routed_requests", 0)
    delivered = stats.get("delivered", 0)
    failures = stats.get("delivery_failures", 0)
    backlog = dispatcher.backlog()

    assert accepted > 1000  # a real soak, not a trickle

    # (1) everything accepted is routed or still in the accept queue or
    #     dropped for a counted reason
    dropped = (
        stats.get("dropped_unroutable", 0)
        + stats.get("dropped_destination_queue_full", 0)
        + stats.get("unknown_service", 0)
        + stats.get("dropped_no_reply_to", 0)
    )
    assert routed + dropped + backlog >= accepted - 5  # in-flight slack
    # (2) routed requests are delivered, failed, or queued
    assert delivered + failures + backlog >= routed
    # (3) the WS saw exactly the delivered requests
    assert echo.stats["received"] == delivered
    # (4) every reply the WS sent landed in a mailbox (passthrough path)
    replies = echo.stats.get("replies_sent", 0)
    deposited = sum(store.stats(b)["deposits"] for b in boxes)
    assert deposited == replies
    # replies are produced for every received message eventually
    assert replies >= echo.stats["received"] - 64  # minus in-flight senders
    # (5) client-side counts match the dispatcher's acceptance, up to the
    #     posts whose 202 was still in flight when the window closed
    assert 0 <= accepted - result.transmitted <= 20

    # (6) connection slots do not leak once traffic stops
    sim.run(until=sim.now + 60.0)
    for host in (client_host, ws_host, wsd_host):
        # pooled keep-alive connections may persist; bound, not growing
        assert host.active_connections <= 80

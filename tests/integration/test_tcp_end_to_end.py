"""End-to-end over *real* loopback TCP sockets.

Everything else in the suite uses the in-process transport; this module
proves the identical stack works over genuine sockets — server accept
loops, connection pooling, keep-alive, and the full dispatcher + mailbox
choreography.
"""

import pytest

from repro.core import (
    MsgDispatcher,
    MsgDispatcherConfig,
    RpcDispatcher,
    ServiceRegistry,
)
from repro.core.sso import SsoGate, TokenIssuer, attach_token
from repro.msgbox import MailboxSecurity, MailboxStore, MsgBoxClient, MsgBoxService
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.soap import parse_rpc_response
from repro.transport.tcp import TcpConnector, TcpListener
from repro.util.ids import IdGenerator
from repro.workload.echo import AsyncEchoService, EchoService, make_echo_message, make_echo_request


@pytest.fixture
def tcp_deployment():
    """Full stack on 127.0.0.1 with OS-assigned ports."""
    connector = TcpConnector()
    servers = []

    # internal WS host
    ws_http = HttpClient(connector)
    ws_app = SoapHttpApp()
    ws_app.mount("/echo-rpc", EchoService())
    ws_app.mount("/echo-msg", AsyncEchoService(ws_http, ids=IdGenerator("t", seed=1)))
    ws_listener = TcpListener("127.0.0.1:0")
    ws_server = HttpServer(ws_listener, ws_app.handle_request, workers=4).start()
    servers.append(ws_server)
    ws_base = f"http://127.0.0.1:{ws_listener.endpoint.port}"

    # intermediary
    registry = ServiceRegistry()
    registry.register("echo-rpc", f"{ws_base}/echo-rpc")
    registry.register("echo-msg", f"{ws_base}/echo-msg")
    wsd_listener = TcpListener("127.0.0.1:0")
    wsd_base = f"http://127.0.0.1:{wsd_listener.endpoint.port}"

    disp_http = HttpClient(connector)
    rpc_disp = RpcDispatcher(registry, disp_http)
    msg_disp = MsgDispatcher(
        registry,
        disp_http,
        own_address=f"{wsd_base}/msg",
        config=MsgDispatcherConfig(cx_threads=2, ws_threads=4),
    )
    msgbox = MsgBoxService(
        MailboxStore(),
        security=MailboxSecurity(b"tcp-secret"),
        base_url=f"{wsd_base}/mailbox",
    )
    app = SoapHttpApp()
    app.mount("/msg", msg_disp)
    app.mount("/mailbox", msgbox)

    def front(request, peer=None):
        if request.target.startswith("/rpc"):
            return rpc_disp.handle_request(request, peer)
        return app.handle_request(request, peer)

    wsd_server = HttpServer(wsd_listener, front, workers=8).start()
    servers.append(wsd_server)

    client = HttpClient(connector)
    yield wsd_base, client, msg_disp
    msg_disp.stop()
    for server in servers:
        server.stop()
    client.close()
    ws_http.close()
    disp_http.close()


def test_rpc_roundtrip_over_real_sockets(tcp_deployment):
    wsd_base, client, _ = tcp_deployment
    reply = client.call_soap(f"{wsd_base}/rpc/echo-rpc", make_echo_request())
    assert parse_rpc_response(reply).result("return") is not None


def test_async_mailbox_roundtrip_over_real_sockets(tcp_deployment):
    wsd_base, client, msg_disp = tcp_deployment
    mbc = MsgBoxClient(client, f"{wsd_base}/mailbox")
    mbc.create()
    ids = IdGenerator("tcp", seed=2)
    msg = make_echo_message(
        to="urn:wsd:echo-msg", message_id=ids.next(), reply_to=mbc.epr()
    )
    assert client.post_envelope(f"{wsd_base}/msg/echo-msg", msg).status == 202
    messages = mbc.poll(expected=1, timeout=8)
    assert len(messages) == 1
    assert parse_rpc_response(messages[0]).result("return") is not None
    mbc.destroy()


def test_sustained_keep_alive_traffic(tcp_deployment):
    wsd_base, client, _ = tcp_deployment
    for _ in range(20):
        reply = client.call_soap(f"{wsd_base}/rpc/echo-rpc", make_echo_request())
        assert parse_rpc_response(reply).result("return") is not None


def test_sso_over_real_sockets():
    connector = TcpConnector()
    issuer = TokenIssuer(b"tcp-sso")
    issuer.add_principal("alice", "pw")
    gate = SsoGate(issuer)
    gate.restrict("echo", ["alice"])

    app = SoapHttpApp()
    app.mount("/echo", EchoService())
    ws_listener = TcpListener("127.0.0.1:0")
    ws = HttpServer(ws_listener, app.handle_request).start()

    registry = ServiceRegistry()
    registry.register("echo", f"http://127.0.0.1:{ws_listener.endpoint.port}/echo")
    dispatcher = RpcDispatcher(registry, HttpClient(connector), inspector=gate)
    wsd_listener = TcpListener("127.0.0.1:0")
    front = HttpServer(wsd_listener, dispatcher.handle_request).start()
    url = f"http://127.0.0.1:{wsd_listener.endpoint.port}/rpc/echo"

    client = HttpClient(connector)
    assert client.post_envelope(url, make_echo_request()).status == 401
    token = issuer.login("alice", "pw")
    env = attach_token(make_echo_request(), token)
    assert client.post_envelope(url, env).status == 200
    ws.stop()
    front.stop()
    client.close()

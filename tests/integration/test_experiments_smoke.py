"""Scaled-down smoke runs of every experiment, with shape assertions.

The full-scale paper parameters run in ``benchmarks/``; here each
experiment runs a reduced grid so the whole suite stays fast while still
verifying the qualitative claims end-to-end.
"""

import pytest

from repro.experiments import ablations, fig4, fig5, fig6, table1


@pytest.mark.slow
class TestFig4:
    def test_shape(self):
        report = fig4.run(client_counts=[10, 500], duration=10.0)
        assert fig4.check_shape(report) == []
        direct = report.series_by_label("direct")
        assert direct.results[0].not_sent == 0  # healthy at 10 clients
        assert direct.results[1].not_sent > direct.results[1].transmitted


@pytest.mark.slow
class TestFig5:
    def test_shape(self):
        report = fig5.run(client_counts=[5, 50, 200], duration=10.0)
        assert fig5.check_shape(report) == []
        for series in report.series:
            assert all(r.not_sent == 0 for r in series.results)


@pytest.mark.slow
class TestFig6:
    def test_shape(self):
        report = fig6.run(client_counts=[15, 30], duration=60.0)
        assert fig6.check_shape(report) == []
        mbox = report.series_by_label(fig6.MODES[2])
        direct = report.series_by_label(fig6.MODES[0])
        # mailbox beats direct by a wide margin above 10 clients
        assert mbox.results[-1].per_minute > 2 * direct.results[-1].per_minute


@pytest.mark.slow
class TestTable1:
    def test_verdicts(self):
        report = table1.run(clients=5, duration=10.0)
        assert table1.check_shape(report) == []
        results = report.extras["results"]
        assert results[4].works_slow and not results[1].works_slow


@pytest.mark.slow
class TestAblations:
    def test_msgbox_bug(self):
        report = ablations.msgbox_bug(client_counts=[5, 60])
        assert ablations.check_msgbox_bug(report) == []

    def test_batching_beats_connection_per_message(self):
        report = ablations.batching(clients=15, duration=10.0)
        batched = report.extras["batch=8, pipelined"]
        per_msg = report.extras["batch=1, conn-per-msg"]
        assert batched["delivered"] > per_msg["delivered"]
        assert batched["fresh_connects"] < per_msg["fresh_connects"]

    def test_reliability_backoff_survives_outage(self):
        report = ablations.reliability(downtime=5.0, messages=20, ttl=30.0)
        assert report.extras["no-retry"]["delivered"] == 0
        assert report.extras["backoff x8"]["delivered"] == 20

    def test_pool_sizing_monotone_delivery(self):
        report = ablations.pool_sizing(
            ws_worker_counts=[1, 8], clients=15, duration=10.0
        )
        one = report.extras["ws=1"]["delivered"]
        eight = report.extras["ws=8"]["delivered"]
        assert eight >= one

"""Determinism guarantees of the simulation experiments.

A reproduction whose numbers wobble between runs cannot support the
paper-vs-measured claims in EXPERIMENTS.md; these tests pin bit-identical
results for repeated runs of the same configuration.
"""

import pytest

from repro.experiments import fig5, fig6


@pytest.mark.slow
def test_fig5_is_bit_identical_across_runs():
    a = fig5.run(client_counts=[10, 50], duration=5.0)
    b = fig5.run(client_counts=[10, 50], duration=5.0)
    for series_a, series_b in zip(a.series, b.series):
        assert series_a.transmitted() == series_b.transmitted()
        assert series_a.not_sent() == series_b.not_sent()
        for ra, rb in zip(series_a.results, series_b.results):
            assert ra.latency.mean == rb.latency.mean


@pytest.mark.slow
def test_fig6_is_bit_identical_across_runs():
    a = fig6.run(client_counts=[10], duration=10.0)
    b = fig6.run(client_counts=[10], duration=10.0)
    for series_a, series_b in zip(a.series, b.series):
        assert series_a.transmitted() == series_b.transmitted()


def test_sim_ramp_deterministic():
    from repro.rt.service import SoapHttpApp
    from repro.simnet.httpsim import SimHttpServer
    from repro.simnet.kernel import Simulator
    from repro.simnet.topology import AccessLink, Network
    from repro.workload.echo import EchoService
    from repro.workload.sim_testclient import SimRampConfig, SimRampTester

    def run_once():
        sim = Simulator()
        net = Network(sim)
        client = net.add_host("c", AccessLink(5000, 5000, 0.005))
        server = net.add_host("s", AccessLink(5000, 5000, 0.005))
        app = SoapHttpApp()
        app.mount("/echo", EchoService())
        SimHttpServer(net, server, 80, lambda r: app.handle_request(r, None))
        tester = SimRampTester(net, client, "s", 80, "/echo")
        result = tester.run(SimRampConfig(clients=3, duration=5.0))
        return (result.transmitted, result.not_sent, result.latency.mean,
                sim.events_processed)

    assert run_once() == run_once()

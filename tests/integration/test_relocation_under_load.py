"""Service relocation while traffic is flowing (location transparency).

The registry's point (paper §4.1) is that clients address *logical*
names; operators can move a service between hosts without telling anyone.
This test re-registers the physical address repeatedly while a load
generator hammers the dispatcher, and requires zero client-visible
failures.
"""

import threading
import time

import pytest

from repro.core import RpcDispatcher, ServiceRegistry
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.workload.echo import EchoService, make_echo_request


def test_relocation_under_concurrent_load(inproc):
    registry = ServiceRegistry()

    # two generations of the service on different hosts
    services = []
    for i in range(2):
        app = SoapHttpApp()
        svc = EchoService()
        app.mount("/echo", svc)
        server = HttpServer(
            inproc.listen(f"gen{i}:9000"), app.handle_request, workers=8
        ).start()
        services.append((server, svc))
    registry.register("echo", "http://gen0:9000/echo")

    dispatcher = RpcDispatcher(registry, HttpClient(inproc))
    front = HttpServer(
        inproc.listen("wsd:8000"), dispatcher.handle_request, workers=8
    ).start()

    stop = threading.Event()
    failures = []
    successes = [0]
    lock = threading.Lock()

    def load():
        client = HttpClient(inproc)
        while not stop.is_set():
            resp = client.post_envelope(
                "http://wsd:8000/rpc/echo", make_echo_request()
            )
            with lock:
                if resp.status == 200:
                    successes[0] += 1
                else:
                    failures.append(resp.status)
        client.close()

    workers = [threading.Thread(target=load, daemon=True) for _ in range(4)]
    for w in workers:
        w.start()

    # flip the physical binding back and forth while traffic flows
    for flip in range(10):
        time.sleep(0.05)
        registry.register("echo", f"http://gen{flip % 2}:9000/echo")
    time.sleep(0.1)
    stop.set()
    for w in workers:
        w.join(5)

    assert failures == []
    assert successes[0] > 50
    # both generations actually served traffic
    assert services[0][1].calls > 0
    assert services[1][1].calls > 0

    front.stop()
    for server, _ in services:
        server.stop()

"""Failure-injection integration tests: the stack under partial failure.

The paper's motivation for scalability testing (§4.3.2): "if a web
service becomes popular but was not tested for scalability users may
start to experience undeterministic and very puzzling errors".  These
tests make the failure modes deterministic and assert the system degrades
the way it is designed to.
"""

import time

import pytest

from repro.core import (
    MsgDispatcher,
    MsgDispatcherConfig,
    RpcDispatcher,
    ServiceRegistry,
)
from repro.errors import TransportError
from repro.http import HttpRequest, HttpResponse
from repro.msgbox import MailboxStore, MsgBoxClient, MsgBoxService
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import FunctionService, SoapHttpApp
from repro.soap import Envelope, parse_rpc_response
from repro.util.ids import IdGenerator
from repro.workload.echo import AsyncEchoService, EchoService, make_echo_message, make_echo_request


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestServiceDeathMidTraffic:
    def test_rpc_dispatcher_reports_502_then_recovers(self, inproc):
        registry = ServiceRegistry()
        registry.register("echo", "http://ws:9000/echo")
        dispatcher = RpcDispatcher(
            registry, HttpClient(inproc, connect_timeout=0.2)
        )
        front = HttpServer(
            inproc.listen("wsd:8000"), dispatcher.handle_request
        ).start()
        client = HttpClient(inproc)

        def start_ws():
            app = SoapHttpApp()
            app.mount("/echo", EchoService())
            return HttpServer(inproc.listen("ws:9000"), app.handle_request).start()

        ws = start_ws()
        assert client.post_envelope(
            "http://wsd:8000/rpc/echo", make_echo_request()
        ).status == 200

        ws.stop()  # service dies
        resp = client.post_envelope("http://wsd:8000/rpc/echo", make_echo_request())
        assert resp.status == 502
        assert Envelope.from_bytes(resp.body).is_fault()

        ws = start_ws()  # service returns at the same address
        assert client.post_envelope(
            "http://wsd:8000/rpc/echo", make_echo_request()
        ).status == 200
        ws.stop()
        front.stop()
        client.close()

    def test_failover_to_surviving_replica(self, inproc):
        """Registry-level redundancy: second physical address takes over."""
        from repro.core.loadbalance import LeastPending

        registry = ServiceRegistry(selector=LeastPending())
        apps = []
        for i in range(2):
            app = SoapHttpApp()
            svc = EchoService()
            app.mount("/echo", svc)
            server = HttpServer(
                inproc.listen(f"r{i}:9000"), app.handle_request
            ).start()
            apps.append((server, svc))
        registry.register(
            "echo", ["http://r0:9000/echo", "http://r1:9000/echo"]
        )
        dispatcher = RpcDispatcher(
            registry, HttpClient(inproc, connect_timeout=0.2)
        )
        front = HttpServer(inproc.listen("wsd:8000"), dispatcher.handle_request).start()
        client = HttpClient(inproc)

        apps[0][0].stop()
        registry.remove_physical("echo", "http://r0:9000/echo")
        ok = 0
        for _ in range(5):
            if client.post_envelope(
                "http://wsd:8000/rpc/echo", make_echo_request()
            ).status == 200:
                ok += 1
        assert ok == 5
        assert apps[1][1].calls == 5
        apps[1][0].stop()
        front.stop()
        client.close()


class TestMailboxOverflow:
    def test_deposits_shed_when_quota_hit_but_service_survives(self, inproc):
        store = MailboxStore(max_messages_per_box=3)
        msgbox = MsgBoxService(store, base_url="http://mb:8500/mailbox")
        app = SoapHttpApp()
        app.mount("/mailbox", msgbox)
        server = HttpServer(inproc.listen("mb:8500"), app.handle_request).start()
        client = HttpClient(inproc)
        mbc = MsgBoxClient(client, "http://mb:8500/mailbox")
        mbc.create()
        ids = IdGenerator("ovf", seed=1)

        statuses = []
        for _ in range(5):
            env = make_echo_message(
                to="urn:x", message_id=ids.next(), reply_to=mbc.epr()
            )
            statuses.append(
                client.post_envelope(mbc.epr().address, env).status
            )
        assert statuses[:3] == [202, 202, 202]
        assert all(s == 500 for s in statuses[3:])  # quota faults, no crash
        # draining restores service
        assert len(mbc.take(max_messages=10)) == 3
        env = make_echo_message(to="urn:x", message_id=ids.next(), reply_to=mbc.epr())
        assert client.post_envelope(mbc.epr().address, env).status == 202
        server.stop()
        client.close()


class TestSlowClientDoesNotStallOthers:
    def test_one_stalled_destination_leaves_others_flowing(self, inproc):
        """A destination that blackholes deliveries must not stop traffic
        to healthy destinations (separate WsThread queues)."""
        registry = ServiceRegistry()
        ws_http = HttpClient(inproc)
        echo = AsyncEchoService(ws_http)
        app = SoapHttpApp()
        app.mount("/echo", echo)
        ws = HttpServer(inproc.listen("good:9000"), app.handle_request).start()
        registry.register("good", "http://good:9000/echo")
        registry.register("void", "http://void:9999/echo")  # nothing there

        dispatcher = MsgDispatcher(
            registry,
            HttpClient(inproc, connect_timeout=0.3),
            own_address="http://wsd:8000/msg",
            config=MsgDispatcherConfig(cx_threads=2, ws_threads=4),
        )
        front = HttpServer(inproc.listen("wsd:8000"), SoapHttpApp().handle_request).start()
        # mount after construction to reuse the running server
        client = HttpClient(inproc)
        ids = IdGenerator("stall", seed=1)

        from repro.rt.service import RequestContext

        # 5 messages to the dead destination, then 5 to the healthy one
        for _ in range(5):
            msg = make_echo_message(to="urn:wsd:void", message_id=ids.next())
            dispatcher.handle(msg, RequestContext(path="/msg/void"))
        for _ in range(5):
            msg = make_echo_message(to="urn:wsd:good", message_id=ids.next())
            dispatcher.handle(msg, RequestContext(path="/msg/good"))

        assert wait_for(lambda: echo.received == 5)
        assert wait_for(
            lambda: dispatcher.stats.get("delivery_failures", 0) == 5
        )
        dispatcher.stop()
        ws.stop()
        front.stop()
        client.close()
        ws_http.close()


class TestMalformedTrafficContained:
    def test_garbage_bytes_do_not_kill_the_dispatcher(self, inproc):
        registry = ServiceRegistry()
        app = SoapHttpApp()
        echo_app = SoapHttpApp()
        echo_app.mount("/echo", EchoService())
        ws = HttpServer(inproc.listen("ws:9000"), echo_app.handle_request).start()
        registry.register("echo", "http://ws:9000/echo")
        dispatcher = RpcDispatcher(registry, HttpClient(inproc))
        front = HttpServer(inproc.listen("wsd:8000"), dispatcher.handle_request).start()
        client = HttpClient(inproc)

        for garbage in (b"", b"\x00\x01\x02", b"<unclosed", b"a" * 1000):
            resp = client.request(
                "http://wsd:8000/rpc/echo",
                HttpRequest("POST", "/", body=garbage),
            )
            assert resp.status in (400, 413)
        # still healthy afterwards
        assert client.post_envelope(
            "http://wsd:8000/rpc/echo", make_echo_request()
        ).status == 200
        ws.stop()
        front.stop()
        client.close()

    def test_raw_protocol_garbage_on_the_wire(self, inproc):
        app = SoapHttpApp()
        app.mount("/echo", EchoService())
        server = HttpServer(inproc.listen("ws:9000"), app.handle_request).start()
        # speak broken HTTP directly at the server
        stream = inproc.connect("ws:9000")
        stream.send(b"NOT HTTP AT ALL\r\n\r\n\r\n")
        # server drops the connection without dying
        assert stream.recv(1024, timeout=2.0) == b""
        # and keeps serving proper clients
        client = HttpClient(inproc)
        assert client.post_envelope(
            "http://ws:9000/echo", make_echo_request()
        ).status == 200
        server.stop()
        client.close()

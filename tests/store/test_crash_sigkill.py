"""The acceptance scenario, for real: SIGKILL a durable dispatcher
process mid-drain, restart from its journal file, and verify the sink
absorbs every accepted message exactly once."""

import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

from repro.core.msg_dispatcher import MsgDispatcher, MsgDispatcherConfig
from repro.core.registry import ServiceRegistry
from repro.errors import ReproError
from repro.http import HttpRequest, HttpResponse
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.soap import Envelope
from repro.store import MessageJournal
from repro.transport.tcp import TcpConnector, TcpListener
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.wsa import AddressingHeaders

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
_CHILD = pathlib.Path(__file__).with_name("_crash_child.py")

MESSAGES = 12


class _Sink:
    """Records every arriving MessageID; 202s everything parseable."""

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.lock = threading.Lock()
        self.arrivals = 0
        self.unique: set[str] = set()

    def handler(self, request: HttpRequest, peer=None) -> HttpResponse:
        try:
            envelope = Envelope.from_bytes(request.body)
            mid = AddressingHeaders.from_envelope(envelope).message_id
        except ReproError:
            return HttpResponse(status=400)
        if self.delay:
            time.sleep(self.delay)
        with self.lock:
            self.arrivals += 1
            if mid:
                self.unique.add(mid)
        return HttpResponse(status=202)


def wait_for(predicate, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def test_sigkill_mid_drain_recovers_all_messages_exactly_once(tmp_path):
    journal_path = str(tmp_path / "crash.journal")
    sink = _Sink(delay=0.2)  # slow sink keeps a backlog at kill time
    sink_listener = TcpListener("127.0.0.1:0")
    sink_server = HttpServer(sink_listener, sink.handler, workers=1).start()

    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    child = subprocess.Popen(
        [
            sys.executable, str(_CHILD),
            journal_path, str(sink_listener.endpoint.port),
        ],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        port_line = child.stdout.readline().strip()
        assert port_line, "child never reported its port"
        port = int(port_line)

        client = HttpClient(TcpConnector())
        ids = IdGenerator("sigkill", seed=13)
        sent = []
        for _ in range(MESSAGES):
            mid = ids.next()
            msg = make_echo_message(to="urn:wsd:echo", message_id=mid)
            resp = client.post_envelope(
                f"http://127.0.0.1:{port}/msg/echo", msg
            )
            # 202 means the record hit the journal before the ack
            assert resp.status == 202
            sent.append(mid)
        client.close()

        # kill the process the moment a couple of deliveries landed —
        # the rest of the backlog dies with it
        assert wait_for(lambda: sink.arrivals >= 2, timeout=30.0)
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=10)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=10)

    killed_with = len(sink.unique)
    assert killed_with < MESSAGES, "nothing left to recover — died too late"

    # the restarted incarnation: same journal file, fresh everything else
    sink.delay = 0.0
    registry = ServiceRegistry()
    registry.register(
        "echo", f"http://127.0.0.1:{sink_listener.endpoint.port}/echo"
    )
    journal = MessageJournal(journal_path, sync="always")
    dispatcher = MsgDispatcher(
        registry,
        HttpClient(TcpConnector()),
        own_address="http://127.0.0.1:0/msg",
        config=MsgDispatcherConfig(cx_threads=2, ws_threads=2),
        durable=journal,
        recover=True,
    )
    try:
        assert wait_for(lambda: sink.unique == set(sent), timeout=30.0)
        # zero loss: every accepted message arrived; exactly-once at the
        # sink: the unique set absorbed each mid once (redeliveries of
        # unmarked-but-delivered records are allowed on the wire)
        assert len(sink.unique) == MESSAGES
        assert dispatcher.stats.get("recovered", 0) >= MESSAGES - killed_with
        assert dispatcher.stop(drain=True) is True
        assert journal.pending_count() == 0
    finally:
        dispatcher.stop()
        journal.close()
        sink_server.stop()

"""Unit tests for the durable message journal."""

import threading

import pytest

from repro.errors import JournalError
from repro.store import (
    ABSORBED,
    DEAD,
    DELIVERED,
    ENQUEUED,
    MessageJournal,
)


@pytest.fixture
def journal():
    with MessageJournal(sync="lazy", flush_threshold=10_000) as j:
        yield j


def test_append_returns_monotonic_seqs(journal):
    seqs = [journal.append(f"m{i}", "/msg/echo", b"<x/>") for i in range(5)]
    assert seqs == [1, 2, 3, 4, 5]
    assert journal.pending_count() == 5


def test_append_synthesizes_message_id_when_none(journal):
    seq = journal.append(None, "/msg/echo", b"<x/>")
    rec = journal.get(seq)
    assert rec.message_id == f"jrnl:{seq}"


def test_state_machine_and_sticky_terminal_marks(journal):
    seq = journal.append("m1", "/msg/echo", b"<x/>")
    assert journal.get(seq).state == ENQUEUED
    journal.mark(seq, DELIVERED)
    assert journal.get(seq).state == DELIVERED
    # a conflicting later mark is a no-op: terminal states never change
    journal.mark(seq, DEAD, reason="late")
    rec = journal.get(seq)
    assert rec.state == DELIVERED
    assert rec.reason is None


def test_mark_rejects_non_terminal_state(journal):
    seq = journal.append("m1", "/msg/echo", b"<x/>")
    with pytest.raises(JournalError):
        journal.mark(seq, ENQUEUED)
    with pytest.raises(JournalError):
        journal.mark(seq, "exploded")


def test_append_on_closed_journal_raises():
    j = MessageJournal()
    j.close()
    with pytest.raises(JournalError):
        j.append("m1", "/msg/echo", b"<x/>")


def test_unknown_sync_mode_rejected():
    with pytest.raises(JournalError):
        MessageJournal(sync="sometimes")


def test_undelivered_filters_by_kind_and_orders_by_seq(journal):
    journal.append("m1", "/msg/echo", b"<a/>", kind="inbound")
    journal.append("m2", "box-1", b"<b/>", kind="mailbox")
    journal.append("m3", "/msg/echo", b"<c/>", kind="inbound")
    inbound = journal.undelivered(kind="inbound")
    assert [r.message_id for r in inbound] == ["m1", "m3"]
    assert len(journal.undelivered()) == 3


def test_group_commit_shares_transactions():
    """Concurrent appenders pile onto the leader's commit: far fewer
    commits than appends (the whole point of group commit)."""
    with MessageJournal(sync="group", group_window=0.005) as j:
        threads = [
            threading.Thread(
                target=lambda i=i: j.append(f"m{i}", "/msg/echo", b"<x/>")
            )
            for i in range(32)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5)
        stats = j.stats
        assert stats["appended"] == 32
        assert stats["commits"] < 32
        assert j.pending_count() == 32


def test_lazy_mode_buffers_until_threshold():
    with MessageJournal(sync="lazy", flush_threshold=5) as j:
        for i in range(4):
            j.append(f"m{i}", "/msg/echo", b"<x/>")
        assert j.stats["buffered_ops"] == 4
        j.append("m4", "/msg/echo", b"<x/>")  # hits the threshold
        assert j.stats["buffered_ops"] == 0
        assert j.stats["commits"] == 1


def test_corrupt_record_skipped_and_dead_lettered(journal):
    """A torn write (CRC mismatch) must never crash recovery: the record
    is skipped and surfaces in the dead-letter queue as ``corrupt``."""
    journal.append("m1", "/msg/echo", b"<ok/>")
    bad = journal.append("m2", "/msg/echo", b"<ok/>")
    journal.flush()
    with journal._db_lock, journal._conn:
        journal._conn.execute(
            "UPDATE journal SET body=? WHERE seq=?", (b"<torn", bad)
        )
    survivors = journal.undelivered()
    assert [r.message_id for r in survivors] == ["m1"]
    assert journal.get(bad).state == DEAD
    assert journal.dead_counts() == {"corrupt": 1}
    assert journal.stats["corrupt_skipped"] == 1


def test_dead_letter_queries_and_snapshot(journal):
    s1 = journal.append("m1", "/msg/echo", b"<x/>")
    s2 = journal.append("m2", "/msg/echo", b"<y/>")
    journal.append("m3", "/msg/echo", b"<z/>")
    journal.mark(s1, DEAD, reason="expired")
    journal.mark(s2, DEAD, reason="unroutable")
    dead = journal.dead_letters()
    assert [r.seq for r in dead] == [s2, s1]  # newest first
    snapshot = journal.deadletter_snapshot()
    assert snapshot["total"] == 2
    assert snapshot["by_reason"] == {"expired": 1, "unroutable": 1}
    assert {e["reason"] for e in snapshot["recent"]} == {"expired", "unroutable"}
    assert snapshot["recent"][0]["bytes"] == len(b"<y/>")


def test_checkpoint_drops_terminal_keeps_dead(journal):
    s1 = journal.append("m1", "/msg/echo", b"<x/>")
    s2 = journal.append("m2", "/msg/echo", b"<x/>")
    s3 = journal.append("m3", "/msg/echo", b"<x/>")
    journal.append("m4", "/msg/echo", b"<x/>")
    journal.mark(s1, DELIVERED)
    journal.mark(s2, ABSORBED, reason="duplicate")
    journal.mark(s3, DEAD, reason="expired")
    result = journal.checkpoint()
    assert result == {"removed": 2, "pending": 1, "dead": 1}
    # keep_dead=False purges the dead-letter queue too
    assert journal.checkpoint(keep_dead=False)["dead"] == 0
    assert journal.counts() == {ENQUEUED: 1}


def test_drop_unflushed_loses_buffered_marks_only():
    """The crash hook: committed appends survive, buffered marks do not —
    recovery then replays the (actually delivered) message."""
    with MessageJournal(sync="always") as j:
        seq = j.append("m1", "/msg/echo", b"<x/>")
        j.mark(seq, DELIVERED)  # buffered, not yet committed
        assert j.drop_unflushed() == 1
        assert j.get(seq).state == ENQUEUED
        assert [r.seq for r in j.undelivered()] == [seq]


def test_expiry_deadlines_stored_on_wall_clock():
    wall = {"now": 1000.0}
    with MessageJournal(sync="lazy", now_fn=lambda: wall["now"]) as j:
        seq = j.append("m1", "/msg/echo", b"<x/>", expires_at=1060.0)
        wall["now"] = 1500.0
        rec = j.get(seq)
        assert rec.expires_at == 1060.0
        assert rec.created_at == 1000.0
        assert j.wall_now() == 1500.0


def test_note_attempt_accumulates(journal):
    seq = journal.append("m1", "/msg/echo", b"<x/>")
    journal.note_attempt(seq)
    journal.note_attempt(seq)
    assert journal.get(seq).attempts == 2


def test_reopen_from_disk_continues_sequence(tmp_path):
    path = str(tmp_path / "journal.db")
    with MessageJournal(path, sync="always") as j:
        j.append("m1", "/msg/echo", b"<x/>")
        j.append("m2", "/msg/echo", b"<y/>")
    with MessageJournal(path, sync="always") as j2:
        assert [r.message_id for r in j2.undelivered()] == ["m1", "m2"]
        assert j2.append("m3", "/msg/echo", b"<z/>") == 3

"""Child process for the SIGKILL crash test.

Runs a durable threaded MSG-Dispatcher on a real TCP port, routing
``echo`` to the sink URL the parent passes in.  Prints its own port and
then idles forever — the parent kills it with SIGKILL mid-drain.

Usage: python _crash_child.py <journal_path> <sink_port>
"""

import sys
import time

from repro.core.msg_dispatcher import MsgDispatcher, MsgDispatcherConfig
from repro.core.registry import ServiceRegistry
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.store import MessageJournal
from repro.transport.tcp import TcpConnector, TcpListener


def main() -> None:
    journal_path, sink_port = sys.argv[1], int(sys.argv[2])
    registry = ServiceRegistry()
    registry.register("echo", f"http://127.0.0.1:{sink_port}/echo")
    journal = MessageJournal(journal_path, sync="always")
    dispatcher = MsgDispatcher(
        registry,
        HttpClient(TcpConnector()),
        own_address="http://127.0.0.1:0/msg",
        config=MsgDispatcherConfig(cx_threads=2, ws_threads=1),
        durable=journal,
    )
    app = SoapHttpApp()
    app.mount("/msg", dispatcher)
    listener = TcpListener("127.0.0.1:0")
    HttpServer(listener, app.handle_request, workers=4).start()
    print(listener.endpoint.port, flush=True)
    while True:
        time.sleep(1.0)


if __name__ == "__main__":
    main()

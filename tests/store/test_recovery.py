"""Crash-recovery tests: journal replay through the threaded dispatcher,
durable hold store restore, and mailbox rebuild."""

import time

import pytest

from repro.core.msg_dispatcher import MsgDispatcher, MsgDispatcherConfig
from repro.core.registry import ServiceRegistry
from repro.msgbox import MailboxStore
from repro.obs.metrics import MetricsRegistry
from repro.reliable import FixedDelay, HoldRetryStore
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.store import DEAD, ENQUEUED, MessageJournal
from repro.util.ids import IdGenerator
from repro.workload.echo import AsyncEchoService, make_echo_message


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


@pytest.fixture
def echo_world(inproc):
    """A one-way echo sink behind an HTTP server, plus a registry."""
    ws_client = HttpClient(inproc)
    echo = AsyncEchoService(ws_client, ids=IdGenerator("ws", seed=1))
    app = SoapHttpApp()
    app.mount("/echo", echo)
    server = HttpServer(
        inproc.listen("ws:9000"), app.handle_request, workers=4
    ).start()
    registry = ServiceRegistry()
    registry.register("echo", "http://ws:9000/echo")
    yield registry, echo
    server.stop()
    ws_client.close()


def make_dispatcher(inproc, registry, journal, recover=True, **config_kw):
    return MsgDispatcher(
        registry,
        HttpClient(inproc),
        own_address="http://wsd:8000/msg",
        config=MsgDispatcherConfig(
            cx_threads=2, ws_threads=2, destination_idle_ttl=0.5, **config_kw
        ),
        durable=journal,
        recover=recover,
    )


def seed_journal(journal, ids, count, target="/msg/echo"):
    """Journal ``count`` inbound messages, as a dead incarnation did."""
    mids = []
    for _ in range(count):
        mid = ids.next()
        env = make_echo_message(to="urn:wsd:echo", message_id=mid)
        journal.append(mid, target, env.to_bytes(), kind="inbound")
        mids.append(mid)
    return mids


class TestDispatcherRecovery:
    def test_hard_stop_leaves_enqueued_then_next_incarnation_replays(
        self, inproc, echo_world
    ):
        registry, echo = echo_world
        journal = MessageJournal(sync="lazy", flush_threshold=1)
        ids = IdGenerator("crash", seed=3)
        seed_journal(journal, ids, 3)

        # incarnation 1 never recovers and dies hard: nothing delivered,
        # the records stay enqueued on "disk"
        first = make_dispatcher(inproc, registry, journal, recover=False)
        assert first.stop() is True  # nothing queued, hard stop is clean
        assert journal.pending_count() == 3

        # incarnation 2 replays all three and drains gracefully
        second = make_dispatcher(inproc, registry, journal)
        assert wait_for(lambda: echo.received == 3)
        assert second.stats.get("recovered") == 3
        assert second.stop(drain=True) is True
        assert journal.pending_count() == 0
        # the graceful path checkpointed: delivered records are gone
        assert journal.counts() == {}
        journal.close()

    def test_recover_is_idempotent_within_an_incarnation(
        self, inproc, echo_world
    ):
        registry, echo = echo_world
        journal = MessageJournal(sync="lazy", flush_threshold=1)
        seed_journal(journal, IdGenerator("idem", seed=5), 2)
        dispatcher = make_dispatcher(inproc, registry, journal)
        assert wait_for(lambda: echo.received == 2)
        # marks race the second scan: flush so they are visible, then a
        # replayed seq must not be re-injected no matter what
        journal.flush()
        assert dispatcher.recover() == 0
        time.sleep(0.2)
        assert echo.received == 2
        dispatcher.stop(drain=True)
        journal.close()

    def test_corrupt_record_dead_lettered_not_replayed(
        self, inproc, echo_world
    ):
        registry, echo = echo_world
        journal = MessageJournal(sync="lazy", flush_threshold=1)
        seed_journal(journal, IdGenerator("torn", seed=7), 2)
        journal.flush()
        # tear the final record, as a crash mid-write would
        with journal._db_lock, journal._conn:
            journal._conn.execute(
                "UPDATE journal SET body=? WHERE seq=2", (b"<torn",)
            )
        dispatcher = make_dispatcher(inproc, registry, journal)
        assert wait_for(lambda: echo.received == 1)
        assert journal.dead_counts() == {"corrupt": 1}
        dispatcher.stop(drain=True)
        assert journal.counts() == {DEAD: 1}  # checkpoint keeps the DLQ
        journal.close()

    def test_journal_before_ack_and_delivered_mark(self, inproc, echo_world):
        registry, echo = echo_world
        journal = MessageJournal(sync="lazy", flush_threshold=1)
        dispatcher = make_dispatcher(inproc, registry, journal)
        client = HttpClient(inproc)
        msg = make_echo_message(to="urn:wsd:echo", message_id="uuid:jba-1")
        app = SoapHttpApp()
        app.mount("/msg", dispatcher)
        front = HttpServer(
            inproc.listen("wsd:8000"), app.handle_request, workers=4
        ).start()
        resp = client.post_envelope("http://wsd:8000/msg/echo", msg)
        assert resp.status == 202
        assert journal.stats["appended"] == 1  # journaled before the ack
        assert wait_for(lambda: echo.received == 1)
        assert wait_for(lambda: journal.pending_count() == 0)
        dispatcher.stop(drain=True)
        front.stop()
        client.close()
        journal.close()

    def test_duplicate_resend_absorbed_and_counted(self, inproc, echo_world):
        registry, echo = echo_world
        journal = MessageJournal(sync="lazy", flush_threshold=1)
        metrics = MetricsRegistry()
        dispatcher = MsgDispatcher(
            registry,
            HttpClient(inproc),
            own_address="http://wsd:8000/msg",
            config=MsgDispatcherConfig(
                cx_threads=2, ws_threads=2, destination_idle_ttl=0.5,
                dedupe_window=60.0,
            ),
            metrics=metrics,
            durable=journal,
        )
        client = HttpClient(inproc)
        app = SoapHttpApp()
        app.mount("/msg", dispatcher)
        front = HttpServer(
            inproc.listen("wsd:8000"), app.handle_request, workers=4
        ).start()
        msg = make_echo_message(to="urn:wsd:echo", message_id="uuid:dup-1")
        for _ in range(2):  # an at-least-once upstream resends
            assert client.post_envelope(
                "http://wsd:8000/msg/echo", msg
            ).status == 202
        assert wait_for(lambda: echo.received == 1)
        assert wait_for(
            lambda: dispatcher.stats.get("duplicates_suppressed") == 1
        )
        sample = metrics.snapshot()["dispatcher_duplicates_total"]["samples"]
        assert sample[0]["value"] == 1
        # the duplicate's journal record was absorbed, not left to replay
        journal.flush()
        assert journal.pending_count() == 0 or wait_for(
            lambda: journal.pending_count() == 0
        )
        dispatcher.stop(drain=True)
        front.stop()
        client.close()
        journal.close()


class TestDispatcherRecoveryMatrix:
    """Journal replay is backend-independent: the threaded and the asyncio
    dispatcher must both replay a dead incarnation's records, deliver
    them, and checkpoint the journal clean."""

    def test_hard_stop_then_next_incarnation_replays(
        self, inproc, echo_world, dispatcher_backend
    ):
        registry, echo = echo_world
        journal = MessageJournal(sync="lazy", flush_threshold=1)
        seed_journal(journal, IdGenerator("xmat", seed=9), 3)

        def build(recover):
            return dispatcher_backend.make_dispatcher(
                registry,
                HttpClient(inproc),
                own_address="http://wsd:8000/msg",
                config=MsgDispatcherConfig(
                    cx_threads=2, ws_threads=2, destination_idle_ttl=0.5
                ),
                durable=journal,
                recover=recover,
            )

        # incarnation 1 never recovers and dies hard
        first = build(recover=False)
        assert first.stop() is True
        assert journal.pending_count() == 3

        # incarnation 2 replays all three and drains gracefully
        second = build(recover=True)
        assert wait_for(lambda: echo.received == 3), second.stats
        assert second.stats.get("recovered") == 3
        assert second.stop(drain=True) is True
        assert journal.pending_count() == 0
        assert journal.counts() == {}
        journal.close()


class TestHoldStoreRestore:
    def test_restore_is_wall_clock_safe_and_idempotent(self):
        wall = {"now": 1000.0}
        journal = MessageJournal(
            sync="lazy", flush_threshold=1, now_fn=lambda: wall["now"]
        )
        store = HoldRetryStore(
            policy=FixedDelay(max_attempts=5, delay=0.1),
            default_ttl=60.0,
            durable=journal,
        )
        store.hold("uuid:h1", "http://dest:1/x", b"<a/>")
        store.hold("uuid:h2", "http://dest:1/x", b"<b/>", ttl=10.0)

        # the process dies; 20 wall seconds pass before the restart
        wall["now"] += 20.0
        fresh = HoldRetryStore(
            policy=FixedDelay(max_attempts=5, delay=0.1),
            default_ttl=60.0,
            durable=journal,
        )
        # h2's 10s TTL elapsed while down: dead-lettered, not resurrected
        assert fresh.restore() == 1
        assert fresh.is_held("uuid:h1")
        assert not fresh.is_held("uuid:h2")
        assert journal.dead_counts() == {"expired": 1}
        assert fresh.stats["restored"] == 1
        # idempotent: nothing new on a second scan
        assert fresh.restore() == 0
        journal.close()

    def test_completed_hold_marks_delivered_and_is_not_restored(self):
        journal = MessageJournal(sync="lazy", flush_threshold=1)
        store = HoldRetryStore(
            policy=FixedDelay(max_attempts=5, delay=0.0),
            default_ttl=60.0,
            durable=journal,
        )
        store.hold("uuid:done", "http://dest:1/x", b"<a/>")
        assert len(store.take_due()) == 1
        assert store.complete("uuid:done")
        fresh = HoldRetryStore(durable=journal)
        assert fresh.restore() == 0
        journal.close()


class TestMailboxRecovery:
    def test_undelivered_deposits_survive_restart_under_same_id(self):
        journal = MessageJournal(sync="lazy", flush_threshold=1)
        store = MailboxStore(durable=journal)
        box = store.create()
        store.deposit(box, b"<one/>")
        store.deposit(box, b"<two/>")
        store.deposit(box, b"<three/>")
        assert store.take(box, max_messages=1) == [b"<one/>"]

        # restart: a fresh store rebuilds the mailbox under the same id —
        # a client holding the pre-crash address keeps polling it
        fresh = MailboxStore(durable=journal)
        assert fresh.recover() == 2
        assert fresh.exists(box)
        assert fresh.take(box) == [b"<two/>", b"<three/>"]
        assert fresh.recover() == 0  # everything terminal now
        journal.close()

    def test_destroyed_mailbox_is_not_resurrected(self):
        journal = MessageJournal(sync="lazy", flush_threshold=1)
        store = MailboxStore(durable=journal)
        box = store.create()
        store.deposit(box, b"<x/>")
        store.destroy(box)
        fresh = MailboxStore(durable=journal)
        assert fresh.recover() == 0
        assert not fresh.exists(box)
        journal.close()

    def test_expired_while_down_goes_to_dead_letters(self):
        wall = {"now": 0.0}
        journal = MessageJournal(
            sync="lazy", flush_threshold=1, now_fn=lambda: wall["now"]
        )
        store = MailboxStore(durable=journal, message_ttl=5.0)
        box = store.create()
        store.deposit(box, b"<x/>")
        wall["now"] += 60.0
        fresh = MailboxStore(durable=journal, message_ttl=5.0)
        assert fresh.recover() == 0
        assert journal.dead_counts() == {"expired": 1}
        journal.close()

"""Tests for the asyncio runtime backend (repro.aio)."""

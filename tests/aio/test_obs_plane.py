"""The observability plane served from the event loop, verbatim.

The introspection endpoints are plain synchronous page handlers; the
acceptance bar is that they mount on a :class:`SoapHttpApp` hosted by
:class:`AioHttpServer` with no adaptation and answer while thousands of
long-poll coroutines could be parked on the same loop.
"""

import asyncio
import json

from repro.aio import AioHttpClient, AioHttpServer, AioLoopThread
from repro.http import Headers, HttpRequest
from repro.obs.http import Introspection
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceStore
from repro.rt.service import SoapHttpApp


def get(target):
    return HttpRequest("GET", target, headers=Headers())


def test_obs_endpoints_scrape_on_the_loop():
    async def main():
        metrics = MetricsRegistry()
        intro = Introspection(metrics=metrics, traces=TraceStore())
        intro.add_source("fake", lambda: {"handled": 7})
        intro.add_health_source("fake", lambda: {"ok": True})
        app = SoapHttpApp()
        intro.mount(app)
        async with AioHttpServer(
            app.handle_request, metrics=metrics, name="obs"
        ) as srv:
            client = AioHttpClient(metrics=metrics)

            warmup = await client.request(srv.url + "/health", get("/health"))
            assert warmup.status == 200

            scrape = await client.request(srv.url + "/metrics", get("/metrics"))
            assert scrape.status == 200
            text = scrape.body.decode()
            # the loop server's own gauges show up in its own scrape
            assert 'aio_http_open_connections{server="obs"} 1' in text
            assert "aio_client_requests_total" in text

            health = json.loads(
                (await client.request(srv.url + "/health", get("/health"))).body
            )
            assert health["fake"] == {"ok": True}
            assert "slo" in health

            slo = await client.request(srv.url + "/slo", get("/slo"))
            assert slo.status == 200

            flight = await client.request(srv.url + "/flightrecorder", get("/flightrecorder"))
            assert flight.status == 200

            client.close()

    asyncio.run(main())


def test_scrape_from_a_thread_while_loop_serves():
    """Cross-thread shape: a threaded scraper polls a loop-hosted app
    through the embedding bridge, as a sidecar collector would."""
    metrics = MetricsRegistry()
    app = SoapHttpApp()
    intro = Introspection(metrics=metrics, traces=TraceStore())
    intro.mount(app)
    with AioLoopThread() as loop_thread:

        async def boot():
            srv = AioHttpServer(app.handle_request, metrics=metrics)
            await srv.start()
            return srv

        srv = loop_thread.run(boot())

        async def scrape(url):
            client = AioHttpClient(metrics=MetricsRegistry())
            try:
                return await client.request(url + "/metrics", get("/metrics"))
            finally:
                client.close()

        response = loop_thread.run(scrape(srv.url))
        assert response.status == 200
        assert b"aio_http_connections_served" in response.body
        loop_thread.run(srv.stop())

"""AioHttpServer + AioHttpClient wire semantics over real loopback TCP.

Every test runs entirely on one event loop via ``asyncio.run`` — the
deployment shape the runtime exists for (no threads anywhere).
"""

import asyncio

from repro.aio import AioHttpClient, AioHttpServer
from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.metrics import MetricsRegistry


def ok_handler(request, peer):
    return HttpResponse(status=200, body=b"echo:" + request.body)


def post(body=b"", target="/x"):
    return HttpRequest("POST", target, headers=Headers(), body=body)


def test_roundtrip_and_keep_alive_reuse():
    async def main():
        metrics = MetricsRegistry()
        async with AioHttpServer(ok_handler, metrics=metrics) as srv:
            client = AioHttpClient(metrics=metrics)
            first = await client.request(srv.url, post(b"one"))
            second = await client.request(srv.url, post(b"two"))
            assert first.body == b"echo:one"
            assert second.body == b"echo:two"
            # the second exchange reused the pooled keep-alive connection
            assert srv.connections_served == 1
            assert srv.requests_served == 2
            client.close()

    asyncio.run(main())


def test_pipeline_burst_in_order():
    async def main():
        async with AioHttpServer(ok_handler) as srv:
            client = AioHttpClient()
            batch = [post(b"%d" % i) for i in range(5)]
            results = await client.pipeline(srv.url, batch)
            assert [r.body for r in results] == [
                b"echo:%d" % i for i in range(5)
            ]
            assert srv.connections_served == 1  # one burst, one connection
            client.close()

    asyncio.run(main())


def test_awaitable_handler_is_awaited():
    async def slow(request, peer):
        await asyncio.sleep(0.01)
        return HttpResponse(status=200, body=b"later")

    def handler(request, peer):
        return slow(request, peer)  # sync handler returning a coroutine

    async def main():
        async with AioHttpServer(handler) as srv:
            client = AioHttpClient()
            response = await client.request(srv.url, post())
            assert response.body == b"later"
            client.close()

    asyncio.run(main())


def test_503_retry_after_sleep_out():
    calls = []

    def handler(request, peer):
        calls.append(1)
        if len(calls) == 1:
            headers = Headers()
            headers.set("Retry-After", "0.05")
            return HttpResponse(status=503, headers=headers, body=b"busy")
        return HttpResponse(status=200, body=b"ok")

    async def main():
        async with AioHttpServer(handler) as srv:
            client = AioHttpClient(overload_retries=1)
            response = await client.request(srv.url, post())
            assert response.status == 200
            assert len(calls) == 2
            client.close()

    asyncio.run(main())


def test_stale_pooled_connection_retried_once():
    async def main():
        async with AioHttpServer(ok_handler, keep_alive_timeout=0.1) as srv:
            client = AioHttpClient()
            assert (await client.request(srv.url, post(b"a"))).status == 200
            # the server expires the idle keep-alive connection; the
            # pooled conn is now stale and the retry must be transparent
            await asyncio.sleep(0.3)
            assert (await client.request(srv.url, post(b"b"))).status == 200
            assert srv.connections_served == 2
            client.close()

    asyncio.run(main())


def test_connection_close_honoured():
    async def main():
        async with AioHttpServer(ok_handler) as srv:
            client = AioHttpClient()
            request = post(b"bye")
            request.headers.set("Connection", "close")
            response = await client.request(srv.url, request)
            assert response.body == b"echo:bye"
            assert response.headers.get("Connection") == "close"
            # nothing was pooled: the next request opens a new connection
            assert (await client.request(srv.url, post(b"hi"))).status == 200
            assert srv.connections_served == 2
            client.close()

    asyncio.run(main())


def test_many_parked_connections_on_one_loop():
    """The C10k shape in miniature: hundreds of handlers parked as
    coroutines on one loop, no thread per connection anywhere."""
    release = None

    def handler(request, peer):
        async def wait():
            await release.wait()
            return HttpResponse(status=200, body=b"released")

        return wait()

    async def main():
        nonlocal release
        release = asyncio.Event()
        async with AioHttpServer(handler) as srv:
            clients = [AioHttpClient(pool_per_endpoint=1) for _ in range(200)]
            pending = [
                asyncio.ensure_future(c.request(srv.url, post()))
                for c in clients
            ]
            while srv.open_connections < 200:
                await asyncio.sleep(0.01)
            release.set()
            responses = await asyncio.gather(*pending)
            assert all(r.body == b"released" for r in responses)
            for c in clients:
                c.close()

    asyncio.run(main())

"""The synchronous-side async seams: queue listeners and mailbox
arrival waiters (the hooks the event-loop runtime parks on)."""

import pytest

from repro.errors import MailboxNotFound
from repro.msgbox import MailboxStore
from repro.store import MessageJournal
from repro.util.concurrency import ClosableQueue


class TestQueueListeners:
    def test_listener_fires_on_put_try_put_and_close(self):
        queue = ClosableQueue(maxsize=4)
        fired = []
        queue.add_listener(lambda: fired.append(1))
        queue.put("a")
        assert len(fired) == 1
        queue.try_put("b")
        assert len(fired) == 2
        queue.close()
        assert len(fired) == 3

    def test_listener_exceptions_are_swallowed(self):
        queue = ClosableQueue(maxsize=4)

        def bad():
            raise RuntimeError("listener bug")

        fired = []
        queue.add_listener(bad)
        queue.add_listener(lambda: fired.append(1))
        assert queue.put("a") is True  # the put itself is unaffected
        assert fired == [1]

    def test_rejected_try_put_does_not_notify(self):
        queue = ClosableQueue(maxsize=1)
        fired = []
        queue.put("a")
        queue.add_listener(lambda: fired.append(1))
        assert queue.try_put("b") is False  # full: rejected, no wakeup
        assert fired == []


class TestArrivalWaiters:
    def test_waiter_fires_once_on_deposit(self):
        store = MailboxStore()
        box = store.create()
        fired = []
        store.add_arrival_waiter(box, lambda: fired.append(1))
        store.deposit(box, b"<one/>")
        store.deposit(box, b"<two/>")
        assert fired == [1]  # one-shot: the second deposit finds no waiter

    def test_remove_is_idempotent_and_prevents_firing(self):
        store = MailboxStore()
        box = store.create()
        fired = []
        handle = store.add_arrival_waiter(box, lambda: fired.append(1))
        store.remove_arrival_waiter(handle)
        store.remove_arrival_waiter(handle)  # second remove is a no-op
        store.deposit(box, b"<x/>")
        assert fired == []

    def test_destroy_wakes_waiters(self):
        """A parked long-poller must wake on destroy to observe
        MailboxNotFound promptly, not at its wait deadline."""
        store = MailboxStore()
        box = store.create()
        fired = []
        store.add_arrival_waiter(box, lambda: fired.append(1))
        store.destroy(box)
        assert fired == [1]
        with pytest.raises(MailboxNotFound):
            store.peek_count(box)

    def test_waiter_callback_errors_do_not_break_deposit(self):
        store = MailboxStore()
        box = store.create()

        def bad():
            raise RuntimeError("waiter bug")

        store.add_arrival_waiter(box, bad)
        store.deposit(box, b"<x/>")
        assert store.peek_count(box) == 1

    def test_recover_fires_waiters(self):
        journal = MessageJournal(sync="lazy", flush_threshold=1)
        store = MailboxStore(durable=journal)
        box = store.create()
        store.deposit(box, b"<x/>")

        fresh = MailboxStore(durable=journal)
        fired = []
        fresh.add_arrival_waiter(box, lambda: fired.append(1))
        assert fresh.recover() == 1
        assert fired == [1]
        journal.close()

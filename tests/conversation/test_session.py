"""Tests for the conversation layer."""

import pytest

from repro.conversation import (
    CONVERSATION_NS,
    Conversation,
    ConversationPeer,
)
from repro.conversation.session import Q_CONVERSATION_ID, Q_SEQ
from repro.errors import ReproError
from repro.msgbox import MailboxSecurity, MailboxStore, MsgBoxClient, MsgBoxService
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.util.clock import ManualClock
from repro.xmlmini import Element, QName


@pytest.fixture
def post_office(inproc):
    """One public WS-MsgBox service both peers use."""
    msgbox = MsgBoxService(
        MailboxStore(),
        security=MailboxSecurity(b"po"),
        base_url="http://po:8500/mailbox",
    )
    app = SoapHttpApp()
    app.mount("/mailbox", msgbox)
    server = HttpServer(inproc.listen("po:8500"), app.handle_request, workers=4).start()
    yield "http://po:8500/mailbox"
    server.stop()


def make_peer(inproc, name, post_office_url) -> ConversationPeer:
    http = HttpClient(inproc)
    mailbox = MsgBoxClient(http, post_office_url)
    mailbox.create()
    peer = ConversationPeer(name, http, mailbox, clock=ManualClock())
    return peer


def body(text: str) -> Element:
    return Element(QName("urn:app", "note"), text=text)


class TestBasicExchange:
    def test_two_peer_roundtrip(self, inproc, post_office):
        alice = make_peer(inproc, "alice", post_office)
        bob = make_peer(inproc, "bob", post_office)

        conv = alice.start()
        conv.send(body("hello bob"), to=bob.mailbox.epr())

        bob.poll()
        bob_conv = bob.conversation(conv.id)
        received = bob_conv.receive(timeout=1.0)
        assert received.envelope.body.text == "hello bob"
        assert received.seq == 1

        # bob replies using the learned remote EPR (no explicit `to`)
        bob_conv.send(body("hello alice"))
        alice.poll()
        back = conv.receive(timeout=1.0)
        assert back.envelope.body.text == "hello alice"

    def test_first_send_requires_destination(self, inproc, post_office):
        alice = make_peer(inproc, "alice", post_office)
        conv = alice.start()
        with pytest.raises(ReproError):
            conv.send(body("to nowhere"))

    def test_first_destination_remembered(self, inproc, post_office):
        alice = make_peer(inproc, "alice", post_office)
        bob = make_peer(inproc, "bob", post_office)
        conv = alice.start()
        conv.send(body("one"), to=bob.mailbox.epr())
        conv.send(body("two"))  # no explicit `to` needed anymore
        bob.poll()
        bob_conv = bob.conversation(conv.id)
        assert bob_conv.receive(timeout=1.0).envelope.body.text == "one"
        assert bob_conv.receive(timeout=1.0).envelope.body.text == "two"

    def test_multiple_concurrent_conversations(self, inproc, post_office):
        alice = make_peer(inproc, "alice", post_office)
        bob = make_peer(inproc, "bob", post_office)
        convs = [alice.start() for _ in range(3)]
        for i, conv in enumerate(convs):
            conv.send(body(f"c{i}"), to=bob.mailbox.epr())
        bob.poll()
        assert len(bob.conversations()) == 3
        texts = {
            bob.conversation(c.id).receive(timeout=1.0).envelope.body.text
            for c in convs
        }
        assert texts == {"c0", "c1", "c2"}

    def test_relates_to_chains_turns(self, inproc, post_office):
        alice = make_peer(inproc, "alice", post_office)
        bob = make_peer(inproc, "bob", post_office)
        conv = alice.start()
        first_id = conv.send(body("turn 1"), to=bob.mailbox.epr())
        bob.poll()
        bob_conv = bob.conversation(conv.id)
        bob_conv.receive(timeout=1.0)
        bob_conv.send(body("turn 2"))
        alice.poll()
        reply = conv.receive(timeout=1.0)
        from repro.wsa import AddressingHeaders

        headers = AddressingHeaders.from_envelope(reply.envelope)
        assert first_id in headers.relates_to

    def test_receive_timeout(self, inproc, post_office):
        alice = make_peer(inproc, "alice", post_office)
        conv = alice.start()
        with pytest.raises(TimeoutError):
            conv.receive(timeout=0.2, poll_interval=0.05)


class TestOrderingAndDedup:
    def deliver_raw(self, peer, conversation_id, seq, text, message_id):
        """Deposit a hand-built turn directly into the peer's mailbox."""
        from repro.soap import Envelope
        from repro.wsa import AddressingHeaders

        env = Envelope(body(text))
        AddressingHeaders(
            to=peer.mailbox.epr().address,
            message_id=message_id,
            reply_to=peer.mailbox.epr(),
        ).attach(env)
        env.headers.append(Element(Q_CONVERSATION_ID, text=conversation_id))
        env.headers.append(Element(Q_SEQ, text=str(seq)))
        peer.http.post_envelope(peer.mailbox.epr().address, env)

    def test_out_of_order_arrivals_released_in_order(self, inproc, post_office):
        alice = make_peer(inproc, "alice", post_office)
        self.deliver_raw(alice, "conv-1", 3, "third", "uuid:m3")
        self.deliver_raw(alice, "conv-1", 1, "first", "uuid:m1")
        self.deliver_raw(alice, "conv-1", 2, "second", "uuid:m2")
        alice.poll()
        conv = alice.conversation("conv-1")
        assert conv.receive(timeout=1.0).envelope.body.text == "first"
        assert conv.receive(timeout=1.0).envelope.body.text == "second"
        assert conv.receive(timeout=1.0).envelope.body.text == "third"

    def test_gap_blocks_later_messages(self, inproc, post_office):
        alice = make_peer(inproc, "alice", post_office)
        self.deliver_raw(alice, "conv-1", 2, "second", "uuid:m2")
        alice.poll()
        conv = alice.conversation("conv-1")
        with pytest.raises(TimeoutError):
            conv.receive(timeout=0.2)
        assert conv.pending_out_of_order() == 1
        self.deliver_raw(alice, "conv-1", 1, "first", "uuid:m1")
        alice.poll()
        assert conv.receive(timeout=1.0).envelope.body.text == "first"
        assert conv.receive(timeout=1.0).envelope.body.text == "second"

    def test_duplicate_message_id_dropped(self, inproc, post_office):
        alice = make_peer(inproc, "alice", post_office)
        self.deliver_raw(alice, "conv-1", 1, "once", "uuid:dup")
        self.deliver_raw(alice, "conv-1", 1, "once again", "uuid:dup")
        alice.poll()
        conv = alice.conversation("conv-1")
        assert conv.receive(timeout=1.0).envelope.body.text == "once"
        with pytest.raises(TimeoutError):
            conv.receive(timeout=0.2)
        assert alice.duplicates_dropped == 1

    def test_stale_seq_retransmission_dropped(self, inproc, post_office):
        alice = make_peer(inproc, "alice", post_office)
        self.deliver_raw(alice, "conv-1", 1, "v1", "uuid:a")
        alice.poll()
        alice.conversation("conv-1").receive(timeout=1.0)
        # a different message id but an already-consumed sequence number
        self.deliver_raw(alice, "conv-1", 1, "v1-retx", "uuid:b")
        alice.poll()
        with pytest.raises(TimeoutError):
            alice.conversation("conv-1").receive(timeout=0.2)
        assert alice.duplicates_dropped == 1

    def test_non_conversation_traffic_ignored(self, inproc, post_office):
        from repro.workload.echo import make_echo_message

        alice = make_peer(inproc, "alice", post_office)
        env = make_echo_message(
            to=alice.mailbox.epr().address,
            message_id="uuid:plain",
            reply_to=alice.mailbox.epr(),
        )
        alice.http.post_envelope(alice.mailbox.epr().address, env)
        assert alice.poll() == 0


class TestPeerApi:
    def test_start_rejects_duplicate_id(self, inproc, post_office):
        alice = make_peer(inproc, "alice", post_office)
        alice.start("fixed-id")
        with pytest.raises(ReproError):
            alice.start("fixed-id")

    def test_long_conversation_sequences(self, inproc, post_office):
        alice = make_peer(inproc, "alice", post_office)
        bob = make_peer(inproc, "bob", post_office)
        conv = alice.start()
        conv.send(body("0"), to=bob.mailbox.epr())
        bob.poll()
        bob_conv = bob.conversation(conv.id)
        bob_conv.receive(timeout=1.0)
        # 20 more alternating turns
        for i in range(1, 21):
            if i % 2:
                bob_conv.send(body(str(i)))
                alice.poll()
                msg = conv.receive(timeout=1.0)
            else:
                conv.send(body(str(i)))
                bob.poll()
                msg = bob_conv.receive(timeout=1.0)
            assert msg.envelope.body.text == str(i)

"""Tests for the text-file backed map."""

import threading

import pytest

from repro.util.textdb import TextFileMap


def test_in_memory_when_no_path():
    db = TextFileMap()
    db.put("echo", "http://a:1/echo")
    assert db.get("echo") == ("http://a:1/echo", {})


def test_put_get_roundtrip(tmp_path):
    db = TextFileMap(tmp_path / "registry.txt")
    db.put("echo", "http://inside:8080/echo", {"owner": "alice"})
    assert db.get("echo") == ("http://inside:8080/echo", {"owner": "alice"})


def test_persistence_across_instances(tmp_path):
    path = tmp_path / "reg.txt"
    db = TextFileMap(path)
    db.put("a", "x", {"k": "v"})
    db.put("b", "y")
    reloaded = TextFileMap(path)
    assert reloaded.get("a") == ("x", {"k": "v"})
    assert reloaded.get("b") == ("y", {})
    assert len(reloaded) == 2


def test_remove(tmp_path):
    path = tmp_path / "reg.txt"
    db = TextFileMap(path)
    db.put("a", "x")
    assert db.remove("a") is True
    assert db.remove("a") is False
    assert "a" not in TextFileMap(path)


def test_file_format_is_line_oriented(tmp_path):
    path = tmp_path / "reg.txt"
    db = TextFileMap(path)
    db.put("svc", "http://h:1/", {"zeta": "1", "alpha": "2"})
    content = path.read_text()
    assert content.startswith("#")
    assert "svc\thttp://h:1/\talpha=2\tzeta=1" in content


def test_comments_and_blank_lines_ignored(tmp_path):
    path = tmp_path / "reg.txt"
    path.write_text("# comment\n\nsvc\thttp://h:1/\n")
    db = TextFileMap(path)
    assert db.get("svc") == ("http://h:1/", {})


def test_malformed_line_rejected(tmp_path):
    path = tmp_path / "reg.txt"
    path.write_text("just-one-field\n")
    with pytest.raises(ValueError):
        TextFileMap(path)


def test_malformed_attr_rejected(tmp_path):
    path = tmp_path / "reg.txt"
    path.write_text("svc\thttp://h:1/\tnoequals\n")
    with pytest.raises(ValueError):
        TextFileMap(path)


def test_tabs_in_values_rejected():
    db = TextFileMap()
    with pytest.raises(ValueError):
        db.put("a\tb", "x")


def test_get_returns_copy():
    db = TextFileMap()
    db.put("a", "x", {"k": "v"})
    _, attrs = db.get("a")
    attrs["k"] = "mutated"
    assert db.get("a")[1] == {"k": "v"}


def test_keys_and_items_sorted():
    db = TextFileMap()
    db.put("zebra", "z")
    db.put("ant", "a")
    assert db.keys() == ["ant", "zebra"]
    assert [k for k, _, _ in db.items()] == ["ant", "zebra"]


def test_concurrent_writes(tmp_path):
    db = TextFileMap(tmp_path / "reg.txt")

    def writer(prefix: str):
        for i in range(50):
            db.put(f"{prefix}-{i}", f"url-{i}")

    threads = [threading.Thread(target=writer, args=(p,)) for p in "abcd"]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(db) == 200
    assert len(TextFileMap(tmp_path / "reg.txt")) == 200

"""Tests for clock abstractions."""

import threading
import time

import pytest

from repro.util.clock import Clock, ManualClock, MonotonicClock


def test_monotonic_clock_advances():
    clock = MonotonicClock()
    t0 = clock.now()
    clock.sleep(0.01)
    assert clock.now() >= t0 + 0.005


def test_monotonic_sleep_ignores_nonpositive():
    clock = MonotonicClock()
    t0 = time.monotonic()
    clock.sleep(0)
    clock.sleep(-1)
    assert time.monotonic() - t0 < 0.05


def test_manual_clock_starts_at_given_time():
    assert ManualClock(10.0).now() == 10.0


def test_manual_clock_advance():
    clock = ManualClock()
    clock.advance(5.0)
    assert clock.now() == 5.0


def test_manual_clock_advance_rejects_negative():
    with pytest.raises(ValueError):
        ManualClock().advance(-1)


def test_manual_clock_sleep_advances_immediately():
    clock = ManualClock()
    t0 = time.monotonic()
    clock.sleep(100.0)  # must not block
    assert clock.now() == 100.0
    assert time.monotonic() - t0 < 0.5


def test_manual_clock_wait_until_crossing_threads():
    clock = ManualClock()
    reached = threading.Event()

    def waiter():
        if clock.wait_until(5.0, real_timeout=2.0):
            reached.set()

    t = threading.Thread(target=waiter)
    t.start()
    clock.advance(5.0)
    t.join(2.0)
    assert reached.is_set()


def test_manual_clock_wait_until_times_out():
    clock = ManualClock()
    assert clock.wait_until(1.0, real_timeout=0.05) is False


def test_clocks_satisfy_protocol():
    assert isinstance(MonotonicClock(), Clock)
    assert isinstance(ManualClock(), Clock)

"""Tests for online statistics."""

import math
import statistics
import threading

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import Counter, Histogram, OnlineStats


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_value(self):
        s = OnlineStats()
        s.add(3.0)
        assert s.mean == 3.0
        assert s.variance == 0.0
        assert s.min == s.max == 3.0

    def test_known_values(self):
        s = OnlineStats()
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for x in data:
            s.add(x)
        assert s.mean == pytest.approx(statistics.mean(data))
        assert s.variance == pytest.approx(statistics.variance(data))
        assert s.min == 2.0 and s.max == 9.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_matches_statistics_module(self, data):
        s = OnlineStats()
        for x in data:
            s.add(x)
        assert s.mean == pytest.approx(statistics.mean(data), rel=1e-6, abs=1e-6)
        assert s.variance == pytest.approx(
            statistics.variance(data), rel=1e-5, abs=1e-5
        )

    @given(
        st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=50),
        st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=50),
    )
    def test_merge_equals_combined(self, left, right):
        a = OnlineStats()
        for x in left:
            a.add(x)
        b = OnlineStats()
        for x in right:
            b.add(x)
        a.merge(b)
        combined = OnlineStats()
        for x in left + right:
            combined.add(x)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean, rel=1e-6, abs=1e-6)
        assert a.variance == pytest.approx(combined.variance, rel=1e-4, abs=1e-4)
        assert a.min == combined.min and a.max == combined.max

    def test_merge_empty_is_noop(self):
        a = OnlineStats()
        a.add(1.0)
        a.merge(OnlineStats())
        assert a.count == 1

    def test_merge_into_empty(self):
        a = OnlineStats()
        b = OnlineStats()
        b.add(2.0)
        b.add(4.0)
        a.merge(b)
        assert a.count == 2 and a.mean == 3.0


class TestHistogram:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Histogram(0)
        with pytest.raises(ValueError):
            Histogram(1.0, num_buckets=0)

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            Histogram(1.0).add(-0.1)

    def test_quantile_empty(self):
        assert Histogram(1.0).quantile(0.5) == 0.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram(1.0).quantile(1.5)

    def test_quantiles_of_uniform_data(self):
        h = Histogram(1.0, num_buckets=100)
        for i in range(100):
            h.add(i + 0.5)
        assert h.quantile(0.5) == pytest.approx(50.0, abs=1.0)
        assert h.quantile(0.99) == pytest.approx(99.0, abs=1.5)

    def test_overflow_bucket(self):
        h = Histogram(1.0, num_buckets=4)
        h.add(100.0)
        assert h.overflow == 1
        assert h.quantile(1.0) == math.inf

    def test_quantile_zero_is_minimum_edge(self):
        # regression: q=0 used to report the *upper* edge of the first
        # occupied bucket, overstating the minimum by a bucket width
        h = Histogram(1.0, num_buckets=10)
        h.add(3.5)  # lands in bucket [3, 4)
        h.add(7.2)
        assert h.quantile(0.0) == 3.0
        assert h.quantile(0.0) < h.quantile(1.0)

    def test_quantile_zero_in_first_bucket(self):
        h = Histogram(1.0, num_buckets=4)
        h.add(0.25)
        assert h.quantile(0.0) == 0.0

    def test_quantile_one_is_last_occupied_upper_edge(self):
        h = Histogram(1.0, num_buckets=10)
        h.add(1.5)
        h.add(4.5)
        assert h.quantile(1.0) == 5.0

    def test_quantile_edges_when_all_samples_overflow(self):
        h = Histogram(1.0, num_buckets=4)
        h.add(50.0)
        h.add(60.0)
        # the minimum is at least the overflow bucket's lower edge; the
        # maximum is unbounded
        assert h.quantile(0.0) == 4.0
        assert h.quantile(1.0) == math.inf


class TestCounter:
    def test_inc_and_get(self):
        c = Counter()
        c.inc("a")
        c.inc("a", 2)
        assert c.get("a") == 3
        assert c.get("missing") == 0

    def test_merge(self):
        a = Counter()
        a.inc("x")
        b = Counter()
        b.inc("x", 2)
        b.inc("y")
        a.merge(b)
        assert a.as_dict() == {"x": 3, "y": 1}

    def test_as_dict_is_copy(self):
        c = Counter()
        c.inc("a")
        d = c.as_dict()
        d["a"] = 99
        assert c.get("a") == 1

    def test_concurrent_inc_is_not_lossy(self):
        # regression: inc() was an unlocked read-modify-write, so the
        # dispatchers' CxThreads and WsThreads lost increments under load
        c = Counter()
        per_thread, n_threads = 5000, 8
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(per_thread):
                c.inc("hits")

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.get("hits") == per_thread * n_threads

    def test_concurrent_mutual_merge_does_not_deadlock(self):
        a = Counter()
        b = Counter()
        a.inc("x")
        b.inc("x")
        done = threading.Barrier(2)

        def merge(dst, src):
            done.wait()
            for _ in range(200):
                dst.merge(src)

        t1 = threading.Thread(target=merge, args=(a, b))
        t2 = threading.Thread(target=merge, args=(b, a))
        t1.start()
        t2.start()
        t1.join(timeout=10)
        t2.join(timeout=10)
        assert not t1.is_alive() and not t2.is_alive()

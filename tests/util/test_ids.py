"""Tests for id generation."""

import threading

import pytest

from repro.util.ids import IdGenerator, new_message_id, new_uuid


def test_new_uuid_unique():
    assert new_uuid() != new_uuid()


def test_new_message_id_uses_uuid_scheme():
    assert new_message_id().startswith("uuid:")


def test_seeded_generator_is_deterministic():
    a = IdGenerator("msg", seed=42)
    b = IdGenerator("msg", seed=42)
    assert [a.next() for _ in range(5)] == [b.next() for _ in range(5)]


def test_different_seeds_differ():
    a = IdGenerator("msg", seed=1)
    b = IdGenerator("msg", seed=2)
    assert a.next() != b.next()


def test_ids_carry_namespace_and_counter():
    gen = IdGenerator("mbox", seed=0)
    first = gen.next()
    second = gen.next()
    assert "mbox" in first
    assert first.endswith("-1")
    assert second.endswith("-2")


def test_generator_is_iterable():
    gen = IdGenerator(seed=3)
    seen = [next(gen) for _ in range(3)]
    assert len(set(seen)) == 3


def test_next_token_length_and_determinism():
    gen = IdGenerator(seed=7)
    token = gen.next_token(128)
    assert len(token) == 32  # 128 bits as hex
    assert IdGenerator(seed=7).next_token(128) == token


def test_next_token_rejects_nonpositive_bits():
    with pytest.raises(ValueError):
        IdGenerator(seed=0).next_token(0)


def test_thread_safety_no_duplicates():
    gen = IdGenerator(seed=9)
    out: list[str] = []
    lock = threading.Lock()

    def worker():
        local = [gen.next() for _ in range(200)]
        with lock:
            out.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(out) == len(set(out)) == 1600

"""Tests for queues and bounded executors."""

import threading
import time

import pytest

from repro.util.concurrency import (
    BoundedExecutor,
    ClosableQueue,
    QueueClosed,
    RejectedExecution,
    join_all,
)


class TestClosableQueue:
    def test_fifo_order(self):
        q = ClosableQueue()
        for i in range(5):
            q.put(i)
        assert [q.get() for _ in range(5)] == list(range(5))

    def test_len(self):
        q = ClosableQueue()
        q.put("a")
        q.put("b")
        assert len(q) == 2

    def test_try_put_respects_capacity(self):
        q = ClosableQueue(maxsize=1)
        assert q.try_put(1) is True
        assert q.try_put(2) is False

    def test_put_timeout_when_full(self):
        q = ClosableQueue(maxsize=1)
        q.put(1)
        assert q.put(2, timeout=0.05) is False

    def test_get_timeout(self):
        q = ClosableQueue()
        with pytest.raises(TimeoutError):
            q.get(timeout=0.05)

    def test_close_drains_then_raises(self):
        q = ClosableQueue()
        q.put(1)
        q.close()
        assert q.get() == 1
        with pytest.raises(QueueClosed):
            q.get()

    def test_put_after_close_raises(self):
        q = ClosableQueue()
        q.close()
        with pytest.raises(QueueClosed):
            q.put(1)

    def test_close_wakes_blocked_getter(self):
        q = ClosableQueue()
        errors = []

        def getter():
            try:
                q.get(timeout=5)
            except QueueClosed:
                errors.append("closed")

        t = threading.Thread(target=getter)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(2)
        assert errors == ["closed"]

    def test_get_batch_takes_up_to_max(self):
        q = ClosableQueue()
        for i in range(10):
            q.put(i)
        batch = q.get_batch(4)
        assert batch == [0, 1, 2, 3]
        assert len(q) == 6

    def test_get_batch_blocks_for_first_only(self):
        q = ClosableQueue()
        q.put(1)
        assert q.get_batch(8) == [1]

    def test_get_batch_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ClosableQueue().get_batch(0)

    def test_get_batch_returns_already_queued_items_immediately(self):
        """Queued backlog must ride along with the first item — no second
        wait, no trickle of one-item batches."""
        q = ClosableQueue()
        for i in range(5):
            q.put(i)
        start = time.monotonic()
        batch = q.get_batch(8, timeout=5.0)
        assert batch == [0, 1, 2, 3, 4]
        assert time.monotonic() - start < 1.0  # no per-item blocking

    def test_get_batch_wakes_on_late_first_item(self):
        q = ClosableQueue()
        got = []

        def consumer():
            got.extend(q.get_batch(4, timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.05)
        q.put("a")
        t.join(timeout=5.0)
        assert got == ["a"]

    def test_get_batch_timeout(self):
        q = ClosableQueue()
        with pytest.raises(TimeoutError):
            q.get_batch(4, timeout=0.05)

    def test_get_batch_raises_once_closed_and_drained(self):
        q = ClosableQueue()
        q.put(1)
        q.close()
        assert q.get_batch(4) == [1]
        with pytest.raises(QueueClosed):
            q.get_batch(4)

    def test_get_batch_is_contiguous_under_contention(self):
        """Competing consumers must each take a contiguous FIFO slice —
        the whole batch comes out under one lock acquisition."""
        q = ClosableQueue()
        batches = []
        lock = threading.Lock()
        barrier = threading.Barrier(4)

        def consumer():
            barrier.wait()
            while True:
                try:
                    b = q.get_batch(16, timeout=0.5)
                except (QueueClosed, TimeoutError):
                    return
                with lock:
                    batches.append(b)

        threads = [threading.Thread(target=consumer) for _ in range(3)]
        for t in threads:
            t.start()
        barrier.wait()
        for i in range(300):
            q.put(i)
        q.close()
        for t in threads:
            t.join(timeout=5.0)
        seen = sorted(x for b in batches for x in b)
        assert seen == list(range(300))  # nothing lost or duplicated
        for b in batches:
            # contiguity: each batch is an unbroken run of the sequence
            assert b == list(range(b[0], b[0] + len(b)))


class TestBoundedExecutor:
    def test_runs_tasks(self):
        pool = BoundedExecutor(2, name="t")
        done = threading.Event()
        pool.submit(done.set)
        assert done.wait(2)
        pool.shutdown()

    def test_counts_completions(self):
        pool = BoundedExecutor(4)
        barrier = threading.Barrier(5)
        for _ in range(4):
            pool.submit(lambda: barrier.wait(2))
        barrier.wait(2)
        deadline = time.monotonic() + 2
        while pool.tasks_completed < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pool.tasks_completed == 4
        pool.shutdown()

    def test_reject_policy_raises_when_saturated(self):
        pool = BoundedExecutor(1, queue_size=1, policy="reject")
        release = threading.Event()
        pool.submit(lambda: release.wait(5))  # occupies the worker
        time.sleep(0.05)
        pool.submit(lambda: None)  # fills the queue
        with pytest.raises(RejectedExecution):
            pool.submit(lambda: None)
        assert pool.tasks_rejected == 1
        release.set()
        pool.shutdown()

    def test_unbounded_policy_spawns_threads(self):
        pool = BoundedExecutor(0, policy="unbounded", name="burst")
        release = threading.Event()
        for _ in range(10):
            pool.submit(lambda: release.wait(5))
        time.sleep(0.05)
        assert pool.live_threads() == 10
        assert pool.peak_threads >= 10
        release.set()
        pool.shutdown()

    def test_unbounded_threads_die_after_task(self):
        pool = BoundedExecutor(0, policy="unbounded")
        for _ in range(5):
            pool.submit(lambda: None)
        deadline = time.monotonic() + 2
        while pool.live_threads() > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pool.live_threads() == 0

    def test_submit_after_shutdown_rejected(self):
        pool = BoundedExecutor(1)
        pool.shutdown()
        with pytest.raises(RejectedExecution):
            pool.submit(lambda: None)

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            BoundedExecutor(1, policy="bogus")

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            BoundedExecutor(0, policy="block")

    def test_task_exception_does_not_kill_worker(self):
        pool = BoundedExecutor(1)
        pool.submit(lambda: 1 / 0)
        done = threading.Event()
        pool.submit(done.set)
        assert done.wait(2)
        pool.shutdown()


def test_join_all_bounds_total_wait():
    stop = threading.Event()
    threads = [
        threading.Thread(target=stop.wait, args=(5,), daemon=True)
        for _ in range(3)
    ]
    for t in threads:
        t.start()
    t0 = time.monotonic()
    join_all(threads, timeout=0.2)
    assert time.monotonic() - t0 < 1.0
    stop.set()

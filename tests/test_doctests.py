"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.simnet.kernel
import repro.soap.binxml
import repro.util.stats
import repro.xmlmini


@pytest.mark.parametrize(
    "module",
    [
        repro.xmlmini,
        repro.soap.binxml,
        repro.simnet.kernel,
        repro.util.stats,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0

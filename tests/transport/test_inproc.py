"""Tests for the in-process transport."""

import threading

import pytest

from repro.errors import (
    ConnectionLimitExceeded,
    ConnectionRefused,
    ConnectionTimeout,
    TransportError,
)
from repro.transport.base import Endpoint, parse_http_url
from repro.transport.inproc import InprocNetwork, stream_pair


class TestEndpoint:
    def test_parse(self):
        ep = Endpoint.parse("host.example:8080")
        assert ep == Endpoint("host.example", 8080)
        assert str(ep) == "host.example:8080"

    def test_parse_rejects_missing_port(self):
        with pytest.raises(ValueError):
            Endpoint.parse("hostonly")


class TestParseHttpUrl:
    def test_full_url(self):
        ep, path = parse_http_url("http://h:9000/a/b")
        assert ep == Endpoint("h", 9000)
        assert path == "/a/b"

    def test_default_port_and_path(self):
        ep, path = parse_http_url("http://h")
        assert ep.port == 80
        assert path == "/"

    def test_rejects_https(self):
        from repro.errors import HttpError

        with pytest.raises(HttpError):
            parse_http_url("https://h/")


class TestStreamPair:
    def test_bidirectional(self):
        a, b = stream_pair()
        a.send(b"ping")
        assert b.recv(100) == b"ping"
        b.send(b"pong")
        assert a.recv(100) == b"pong"

    def test_recv_respects_max_bytes(self):
        a, b = stream_pair()
        a.send(b"abcdef")
        assert b.recv(2) == b"ab"
        assert b.recv(100) == b"cdef"

    def test_close_gives_eof_after_drain(self):
        a, b = stream_pair()
        a.send(b"last")
        a.close()
        assert b.recv(100) == b"last"
        assert b.recv(100) == b""

    def test_send_after_peer_close_raises(self):
        a, b = stream_pair()
        b.close()
        with pytest.raises(TransportError):
            a.send(b"x")

    def test_recv_timeout(self):
        a, b = stream_pair()
        with pytest.raises(ConnectionTimeout):
            b.recv(10, timeout=0.05)


class TestInprocNetwork:
    def test_connect_and_accept(self, inproc):
        listener = inproc.listen("svc:80")
        client = inproc.connect("svc:80")
        server = listener.accept(timeout=1)
        client.send(b"hello")
        assert server.recv(100) == b"hello"

    def test_connect_to_unbound_refused(self, inproc):
        with pytest.raises(ConnectionRefused):
            inproc.connect("nobody:1")

    def test_double_bind_rejected(self, inproc):
        inproc.listen("svc:80")
        with pytest.raises(TransportError):
            inproc.listen("svc:80")

    def test_port_zero_auto_assigns(self, inproc):
        a = inproc.listen("svc:0")
        b = inproc.listen("svc:0")
        assert a.endpoint != b.endpoint
        assert a.endpoint.port >= 49152

    def test_close_unbinds(self, inproc):
        listener = inproc.listen("svc:80")
        listener.close()
        with pytest.raises(ConnectionRefused):
            inproc.connect("svc:80")
        inproc.listen("svc:80")  # rebinding now works

    def test_backlog_limit(self, inproc):
        inproc.listen("svc:80", backlog=2)
        inproc.connect("svc:80")
        inproc.connect("svc:80")
        with pytest.raises(ConnectionLimitExceeded):
            inproc.connect("svc:80")

    def test_accept_timeout(self, inproc):
        listener = inproc.listen("svc:80")
        with pytest.raises(ConnectionTimeout):
            listener.accept(timeout=0.05)

    def test_concurrent_connections_isolated(self, inproc):
        listener = inproc.listen("svc:80")
        results = {}

        def serve():
            for _ in range(2):
                stream = listener.accept(timeout=2)
                data = stream.recv(100)
                stream.send(data.upper())

        t = threading.Thread(target=serve)
        t.start()
        c1 = inproc.connect("svc:80")
        c1.send(b"one")
        results["c1"] = c1.recv(100)
        c2 = inproc.connect("svc:80")
        c2.send(b"two")
        results["c2"] = c2.recv(100)
        t.join(2)
        assert results == {"c1": b"ONE", "c2": b"TWO"}

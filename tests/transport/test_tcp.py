"""Tests for the real-socket transport (loopback only)."""

import threading

import pytest

from repro.errors import ConnectionRefused, ConnectionTimeout
from repro.transport.base import Endpoint
from repro.transport.tcp import TcpConnector, TcpListener


@pytest.fixture
def listener():
    lst = TcpListener("127.0.0.1:0")
    yield lst
    lst.close()


def test_ephemeral_port_assigned(listener):
    assert listener.endpoint.port != 0


def test_echo_roundtrip(listener):
    def serve():
        stream = listener.accept(timeout=2)
        data = stream.recv(100)
        stream.send(data[::-1])
        stream.close()

    t = threading.Thread(target=serve)
    t.start()
    client = TcpConnector().connect(listener.endpoint, timeout=2)
    client.send(b"abc")
    assert client.recv(100) == b"cba"
    client.close()
    t.join(2)


def test_connect_refused():
    with pytest.raises(ConnectionRefused):
        # port 1 on loopback is almost certainly closed
        TcpConnector().connect(Endpoint("127.0.0.1", 1), timeout=1)


def test_accept_timeout(listener):
    with pytest.raises(ConnectionTimeout):
        listener.accept(timeout=0.05)


def test_recv_timeout(listener):
    hold = threading.Event()

    def serve():
        stream = listener.accept(timeout=2)
        hold.wait(2)
        stream.close()

    t = threading.Thread(target=serve)
    t.start()
    client = TcpConnector().connect(listener.endpoint, timeout=2)
    with pytest.raises(ConnectionTimeout):
        client.recv(10, timeout=0.05)
    hold.set()
    client.close()
    t.join(2)


def test_eof_on_close(listener):
    def serve():
        stream = listener.accept(timeout=2)
        stream.close()

    t = threading.Thread(target=serve)
    t.start()
    client = TcpConnector().connect(listener.endpoint, timeout=2)
    assert client.recv(100, timeout=2) == b""
    client.close()
    t.join(2)


def test_reuse_port_probe_is_bool():
    from repro.transport.tcp import reuse_port_supported

    assert isinstance(reuse_port_supported(), bool)


def test_reuse_port_shares_an_endpoint():
    from repro.transport.tcp import reuse_port_supported

    if not reuse_port_supported():
        pytest.skip("SO_REUSEPORT unsupported on this platform")
    first = TcpListener("127.0.0.1:0", reuse_port=True)
    try:
        second = TcpListener(first.endpoint, reuse_port=True)
        second.close()
    finally:
        first.close()


def test_reuse_port_off_still_conflicts():
    """Without the knob, a second bind of the same endpoint must fail —
    the knob is opt-in, not a global behavior change."""
    from repro.errors import TransportError

    first = TcpListener("127.0.0.1:0")
    try:
        with pytest.raises(TransportError):
            TcpListener(first.endpoint)
    finally:
        first.close()


def test_reuse_port_raises_when_unsupported(monkeypatch):
    import socket

    from repro.errors import TransportError

    monkeypatch.delattr(socket, "SO_REUSEPORT", raising=False)
    with pytest.raises(TransportError, match="SO_REUSEPORT"):
        TcpListener("127.0.0.1:0", reuse_port=True)

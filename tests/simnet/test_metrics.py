"""Tests for the simulation metrics sampler."""

import pytest

from repro.errors import SimulationError
from repro.simnet.kernel import Simulator
from repro.simnet.metrics import MetricsSampler, SeriesData
from repro.simnet.topology import AccessLink, Network


class TestSeriesData:
    def test_at_interpolates_stepwise(self):
        s = SeriesData("x", times=[0.0, 1.0, 2.0], values=[1.0, 5.0, 3.0])
        assert s.at(-1.0) == 0.0
        assert s.at(0.5) == 1.0
        assert s.at(1.0) == 5.0
        assert s.at(10.0) == 3.0

    def test_aggregates(self):
        s = SeriesData("x", times=[0, 1], values=[2.0, 4.0])
        assert s.peak == 4.0
        assert s.mean == 3.0
        assert SeriesData("empty").peak == 0.0


class TestSampler:
    def test_samples_on_cadence(self, sim):
        sampler = MetricsSampler(sim, interval=1.0)
        counter = [0]
        sampler.gauge("count", lambda: counter[0])

        def bump():
            for _ in range(5):
                yield sim.timeout(1.0)
                counter[0] += 1

        sampler.start()
        sim.run(sim.process(bump()))
        data = sampler.series["count"]
        assert data.times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert data.values == [0, 0, 1, 2, 3, 4]

    def test_watch_host_gauges(self, sim):
        net = Network(sim)
        host = net.add_host("h", AccessLink(8, 8, 0.001))  # 8 kbps = 1000 B/s
        sampler = MetricsSampler(sim, interval=0.5)
        sampler.watch_host(host)
        sampler.start()
        host.link.up.transmit(10_000)  # 10 s of backlog at 1000 B/s
        host.try_acquire_connection()
        sim.run(until=2.0)
        assert sampler.series["h.connections"].peak == 1.0
        assert sampler.series["h.up_backlog_s"].peak > 5.0

    def test_duplicate_gauge_rejected(self, sim):
        sampler = MetricsSampler(sim, interval=1.0)
        sampler.gauge("x", lambda: 0)
        with pytest.raises(SimulationError):
            sampler.gauge("x", lambda: 1)

    def test_export_to_unified_registry(self, sim):
        from repro.obs import MetricsRegistry

        sampler = MetricsSampler(sim, interval=1.0)
        backlog = [0.0]
        sampler.gauge("uplink-backlog", lambda: backlog[0])
        sampler.gauge("connections", lambda: 3.0)
        registry = MetricsRegistry()
        sampler.export_to(registry)
        backlog[0] = 7.5
        snap = registry.snapshot()
        samples = {
            s["labels"]["series"]: s["value"]
            for s in snap["sim_gauge"]["samples"]
        }
        # live reads: the registry sees current values, not a snapshot
        assert samples == {"uplink-backlog": 7.5, "connections": 3.0}
        assert 'sim_gauge{series="uplink-backlog"} 7.5' in (
            registry.render_prometheus()
        )

    def test_invalid_interval(self, sim):
        with pytest.raises(SimulationError):
            MetricsSampler(sim, interval=0)

    def test_double_start_rejected(self, sim):
        sampler = MetricsSampler(sim, interval=1.0)
        sampler.start()
        with pytest.raises(SimulationError):
            sampler.start()

    def test_failing_gauge_records_zero(self, sim):
        sampler = MetricsSampler(sim, interval=1.0)
        sampler.gauge("broken", lambda: 1 / 0)
        sampler.start()
        sim.run(until=1.5)
        assert sampler.series["broken"].values == [0.0, 0.0]

    def test_render_shows_stats_and_bar(self, sim):
        sampler = MetricsSampler(sim, interval=0.5)
        ramp = [0]
        sampler.gauge("ramp", lambda: ramp[0])

        def grow():
            for i in range(10):
                yield sim.timeout(0.5)
                ramp[0] = i

        sampler.start()
        sim.run(sim.process(grow()))
        text = sampler.render()
        assert "ramp" in text and "peak=" in text and "|" in text

    def test_render_empty_series(self, sim):
        sampler = MetricsSampler(sim, interval=1.0)
        sampler.gauge("never", lambda: 1)
        assert "(no samples)" in sampler.render()


def test_sampler_diagnoses_fig4_congestion():
    """The sampler makes Figure 4's mechanism visible: uplink backlog and
    connection-table occupancy climbing with offered load."""
    from repro.simnet.scenarios import CABLE_MODEM_US, INRIA_SLOW, make_network
    from repro.rt.service import SoapHttpApp
    from repro.simnet.httpsim import SimHttpServer
    from repro.workload.echo import EchoService
    from repro.workload.sim_testclient import SimRampConfig, SimRampTester

    sim, net, hosts = make_network(CABLE_MODEM_US, INRIA_SLOW)
    client_host, server_host = hosts["iuLow"], hosts["inriaSlow"]
    server_host.firewall.open_ports = frozenset({8080})
    app = SoapHttpApp()
    app.mount("/echo", EchoService())
    SimHttpServer(net, server_host, 8080, lambda r: app.handle_request(r, None))

    sampler = MetricsSampler(sim, interval=2.0)
    sampler.watch_host(client_host, prefix="cable")
    sampler.start()

    tester = SimRampTester(net, client_host, "inriaSlow", 8080, "/echo")
    tester.run(SimRampConfig(clients=400, duration=20.0))

    # the consumer connection table pegs at its 256 limit...
    assert sampler.series["cable.connections"].peak == 256
    # ...and the 288 kbps uplink runs a persistent backlog
    assert sampler.series["cable.up_backlog_s"].peak > 0.5

"""Tests for simulation stores and resources."""

import pytest

from repro.errors import SimulationError
from repro.simnet.resources import Resource, Store


class TestStore:
    def test_fifo_order(self, sim):
        store = Store(sim)
        received = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        for i in range(3):
            store.put(i)
        sim.run(sim.process(consumer()))
        assert received == [0, 1, 2]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def consumer():
            item = yield store.get()
            return (sim.now, item)

        def producer():
            yield sim.timeout(2)
            yield store.put("late")

        c = sim.process(consumer())
        sim.process(producer())
        assert sim.run(c) == (2.0, "late")

    def test_capacity_blocks_put(self, sim):
        store = Store(sim, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            log.append(("a", sim.now))
            yield store.put("b")
            log.append(("b", sim.now))

        def consumer():
            yield sim.timeout(5)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert log == [("a", 0.0), ("b", 5.0)]

    def test_try_put_respects_capacity(self, sim):
        store = Store(sim, capacity=1)
        assert store.try_put("a") is True
        assert store.try_put("b") is False

    def test_try_put_succeeds_with_waiting_getter(self, sim):
        store = Store(sim, capacity=1)
        results = []

        def getter():
            item = yield store.get()
            results.append(item)

        sim.process(getter())
        store.put("x")
        sim.run()
        # store momentarily full but the getter drains it
        assert store.try_put("y") is True
        assert results == ["x"]

    def test_cancelled_get_not_fulfilled(self, sim):
        store = Store(sim)

        def waiter():
            get = store.get()
            idx, _ = yield sim.any_of([get, sim.timeout(1)])
            if idx == 1:
                get.cancel()
            yield sim.timeout(10)

        sim.process(waiter())
        sim.run(until=2.0)
        store.put("late item")
        sim.run()
        assert len(store) == 1  # still there; cancelled getter didn't eat it

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)


class TestResource:
    def test_capacity_enforced(self, sim):
        res = Resource(sim, capacity=2)
        grants = []

        def user(tag):
            req = yield res.request()
            grants.append((tag, sim.now))
            yield sim.timeout(1)
            req.release()

        for tag in "abcd":
            sim.process(user(tag))
        sim.run()
        times = [t for _, t in grants]
        assert times == [0.0, 0.0, 1.0, 1.0]

    def test_fifo_granting(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def user(tag):
            req = yield res.request()
            order.append(tag)
            yield sim.timeout(1)
            req.release()

        for tag in "abc":
            sim.process(user(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_cancel_waiting_request(self, sim):
        res = Resource(sim, capacity=1)
        got = []

        def holder():
            req = yield res.request()
            yield sim.timeout(5)
            req.release()

        def impatient():
            req = res.request()
            idx, _ = yield sim.any_of([req, sim.timeout(1)])
            if idx == 1:
                req.cancel()
                got.append("gave up")

        def patient():
            yield sim.timeout(2)
            req = yield res.request()
            got.append(("patient", sim.now))
            req.release()

        sim.process(holder())
        sim.process(impatient())
        sim.process(patient())
        sim.run()
        assert "gave up" in got
        assert ("patient", 5.0) in got

    def test_cancel_held_request_releases(self, sim):
        res = Resource(sim, capacity=1)

        def proc():
            req = yield res.request()
            req.cancel()  # cancel after grant == release
            assert res.in_use == 0

        sim.run(sim.process(proc()))

    def test_double_release_detected(self, sim):
        res = Resource(sim, capacity=1)

        def proc():
            req = yield res.request()
            req.release()
            req.release()  # second release is a no-op (already released)

        sim.run(sim.process(proc()))
        assert res.in_use == 0

    def test_queued_counts_waiting(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            req = yield res.request()
            yield sim.timeout(10)
            req.release()

        def waiter():
            req = yield res.request()
            req.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=1.0)
        assert res.queued == 1

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

"""Tests for crash injection (host fail/recover)."""

import pytest

from repro.errors import ConnectionClosed, ConnectionTimeout
from repro.http import HttpRequest, HttpResponse
from repro.simnet.httpsim import SimHttpServer, sim_http_request
from repro.simnet.tcpsim import TcpParams, connect, listen
from repro.simnet.topology import AccessLink, Network


@pytest.fixture
def world(sim):
    net = Network(sim)
    link = AccessLink(5000, 5000, 0.005)
    client = net.add_host("client", link)
    server = net.add_host("server", link)
    return net, client, server


def test_connect_to_failed_host_times_out(world):
    net, client, server = world
    sim = net.sim
    listen(sim, server, 80)
    server.fail()

    def proc():
        try:
            yield from connect(net, client, "server", 80,
                               TcpParams(connect_timeout=2.0))
        except ConnectionTimeout as exc:
            return (str(exc), sim.now)

    message, elapsed = sim.run(sim.process(proc()))
    assert "host down" in message
    assert elapsed == pytest.approx(2.0, abs=0.1)


def test_established_connection_breaks_on_crash(world):
    net, client, server = world
    sim = net.sim
    listen(sim, server, 80)

    def proc():
        conn = yield from connect(net, client, "server", 80)
        server.fail()
        try:
            yield from conn.send(b"doomed")
        except ConnectionClosed:
            return "broken"

    assert sim.run(sim.process(proc())) == "broken"


def test_crash_mid_transfer_breaks_send(world):
    net, client, server = world
    sim = net.sim
    listen(sim, server, 80)

    def killer():
        yield sim.timeout(0.05)
        server.fail()

    def proc():
        conn = yield from connect(net, client, "server", 80)
        sim.process(killer())
        try:
            # large transfer: the crash lands mid-flight
            yield from conn.send(b"x" * 200_000)
        except ConnectionClosed:
            return "broken mid-send"

    assert sim.run(sim.process(proc())) == "broken mid-send"


def test_recovery_restores_service(world):
    net, client, server = world
    sim = net.sim
    SimHttpServer(net, server, 80, lambda r: HttpResponse(200, body=b"up"))
    server.fail()

    def proc():
        try:
            yield from sim_http_request(
                net, client, "server", 80, HttpRequest("GET", "/"),
                connect_timeout=1.0,
            )
        except ConnectionTimeout:
            pass
        server.recover()
        resp = yield from sim_http_request(
            net, client, "server", 80, HttpRequest("GET", "/"),
            connect_timeout=1.0,
        )
        return resp.body

    assert sim.run(sim.process(proc())) == b"up"


def test_failed_client_cannot_send(world):
    net, client, server = world
    sim = net.sim
    listen(sim, server, 80)

    def proc():
        conn = yield from connect(net, client, "server", 80)
        client.fail()
        try:
            yield from conn.send(b"x")
        except ConnectionClosed:
            return "local down"

    assert sim.run(sim.process(proc())) == "local down"

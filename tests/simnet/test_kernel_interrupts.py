"""Interrupt semantics across waiting contexts."""

import pytest

from repro.errors import SimInterrupt
from repro.simnet.kernel import Simulator
from repro.simnet.resources import Resource, Store


def test_interrupt_while_waiting_on_store(sim):
    """The documented pattern: an interrupted waiter cancels its request,
    so a later put is not eaten by the dead waiter's stale claim."""
    store = Store(sim)

    def victim():
        get = store.get()
        try:
            yield get
        except SimInterrupt:
            get.cancel()
            return "interrupted"

    def attacker(target):
        yield sim.timeout(1.0)
        target.interrupt()

    v = sim.process(victim())
    sim.process(attacker(v))
    assert sim.run(v) == "interrupted"

    store.put("item")

    def consumer():
        value = yield store.get()
        return value

    assert sim.run(sim.process(consumer())) == "item"


def test_interrupt_while_waiting_on_resource(sim):
    res = Resource(sim, capacity=1)

    def holder():
        req = yield res.request()
        yield sim.timeout(10.0)
        req.release()

    def victim():
        req = res.request()
        try:
            yield req
        except SimInterrupt:
            req.cancel()
            return "gave up"

    def attacker(target):
        yield sim.timeout(1.0)
        target.interrupt()

    sim.process(holder())
    v = sim.process(victim())
    sim.process(attacker(v))
    assert sim.run(v) == "gave up"
    sim.run()
    assert res.in_use == 0  # the holder released; no phantom grant


def test_interrupt_cause_propagates(sim):
    def victim():
        try:
            yield sim.timeout(100)
        except SimInterrupt as exc:
            return exc.cause

    def attacker(target):
        yield sim.timeout(1)
        target.interrupt({"reason": "shutdown"})

    v = sim.process(victim())
    sim.process(attacker(v))
    assert sim.run(v) == {"reason": "shutdown"}


def test_double_interrupt_is_safe(sim):
    def victim():
        try:
            yield sim.timeout(100)
        except SimInterrupt:
            return "once"

    v = sim.process(victim())

    def attacker():
        yield sim.timeout(1)
        v.interrupt("a")
        v.interrupt("b")  # second is a no-op on a completed process

    sim.process(attacker())
    assert sim.run(v) == "once"


def test_process_can_continue_after_interrupt(sim):
    """An interrupted wait can be retried — interruption is not death."""
    store = Store(sim)

    def victim():
        get = store.get()
        try:
            yield get
        except SimInterrupt:
            get.cancel()
        # try again; this time the item arrives
        value = yield store.get()
        return (value, sim.now)

    def attacker(target):
        yield sim.timeout(1.0)
        target.interrupt()
        yield sim.timeout(1.0)
        yield store.put("late")

    v = sim.process(victim())
    sim.process(attacker(v))
    value, now = sim.run(v)
    assert value == "late"
    assert now == 2.0

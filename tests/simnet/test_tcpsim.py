"""Tests for the simulated TCP layer and firewall interactions."""

import pytest

from repro.errors import (
    ConnectionClosed,
    ConnectionLimitExceeded,
    ConnectionRefused,
    ConnectionTimeout,
)
from repro.simnet.firewall import FirewallPolicy
from repro.simnet.kernel import Simulator
from repro.simnet.tcpsim import TcpParams, connect, listen
from repro.simnet.topology import AccessLink, Network


@pytest.fixture
def world(sim):
    net = Network(sim)
    client = net.add_host("client", AccessLink(2000, 2000, 0.010))
    server = net.add_host("server", AccessLink(2000, 2000, 0.010))
    return net, client, server


def run_proc(sim, gen):
    return sim.run(sim.process(gen))


class TestConnect:
    def test_established_connection_carries_data(self, world):
        net, client, server = world
        sim = net.sim
        listener = listen(sim, server, 80)
        results = {}

        def server_proc():
            conn = yield listener.accept()
            data = yield from conn.recv()
            yield from conn.send(data.upper())
            conn.close()

        def client_proc():
            conn = yield from connect(net, client, "server", 80)
            yield from conn.send(b"hello")
            results["reply"] = yield from conn.recv(timeout=5)
            conn.close()

        sim.process(server_proc())
        sim.run(sim.process(client_proc()))
        assert results["reply"] == b"HELLO"

    def test_handshake_takes_roughly_one_rtt(self, world):
        net, client, server = world
        sim = net.sim
        listen(sim, server, 80)

        def client_proc():
            yield from connect(net, client, "server", 80)
            return sim.now

        elapsed = run_proc(sim, client_proc())
        assert 0.02 <= elapsed <= 0.06  # RTT 40ms + serialization

    def test_refused_when_no_listener(self, world):
        net, client, server = world

        def client_proc():
            try:
                yield from connect(net, client, "server", 9999)
            except ConnectionRefused:
                return "refused"

        assert run_proc(net.sim, client_proc()) == "refused"

    def test_firewall_drop_burns_connect_timeout(self, world):
        net, client, server = world
        server.firewall = FirewallPolicy.outbound_only()
        listen(net.sim, server, 80)

        def client_proc():
            try:
                yield from connect(
                    net, client, "server", 80, TcpParams(connect_timeout=3.0)
                )
            except ConnectionTimeout:
                return net.sim.now

        assert run_proc(net.sim, client_proc()) == pytest.approx(3.0, abs=0.1)

    def test_firewall_open_port_admits(self, world):
        net, client, server = world
        server.firewall = FirewallPolicy.outbound_only(open_ports=(80,))
        listen(net.sim, server, 80)

        def client_proc():
            conn = yield from connect(net, client, "server", 80)
            return conn is not None

        assert run_proc(net.sim, client_proc()) is True

    def test_client_connection_table_exhaustion(self, world):
        net, client, server = world
        client.max_connections = 1
        listen(net.sim, server, 80)

        def client_proc():
            yield from connect(net, client, "server", 80)
            try:
                yield from connect(net, client, "server", 80)
            except ConnectionLimitExceeded:
                return "limit"

        assert run_proc(net.sim, client_proc()) == "limit"

    def test_server_connection_table_exhaustion_times_out(self, world):
        net, client, server = world
        server.max_connections = 1
        listen(net.sim, server, 80)

        def client_proc():
            yield from connect(net, client, "server", 80)
            try:
                yield from connect(
                    net, client, "server", 80, TcpParams(connect_timeout=2.0)
                )
            except ConnectionTimeout as exc:
                return str(exc)

        msg = run_proc(net.sim, client_proc())
        assert "connection table full" in msg

    def test_failed_connect_releases_client_slot(self, world):
        net, client, server = world

        def client_proc():
            try:
                yield from connect(net, client, "server", 9999)
            except ConnectionRefused:
                pass

        run_proc(net.sim, client_proc())
        assert client.active_connections == 0

    def test_close_releases_both_slots(self, world):
        net, client, server = world
        sim = net.sim
        listener = listen(sim, server, 80)

        def server_proc():
            conn = yield listener.accept()
            yield from conn.recv()
            conn.close()

        def client_proc():
            conn = yield from connect(net, client, "server", 80)
            yield from conn.send(b"x")
            yield from conn.recv(timeout=5)  # EOF
            conn.close()

        sim.process(server_proc())
        sim.run(sim.process(client_proc()))
        sim.run()
        assert client.active_connections == 0
        assert server.active_connections == 0


class TestDataPath:
    def test_recv_timeout(self, world):
        net, client, server = world
        sim = net.sim
        listen(sim, server, 80)

        def client_proc():
            conn = yield from connect(net, client, "server", 80)
            try:
                yield from conn.recv(timeout=1.0)
            except ConnectionTimeout:
                return sim.now

        assert run_proc(sim, client_proc()) == pytest.approx(1.0, abs=0.1)

    def test_send_on_closed_connection(self, world):
        net, client, server = world
        sim = net.sim
        listen(sim, server, 80)

        def client_proc():
            conn = yield from connect(net, client, "server", 80)
            conn.close()
            try:
                yield from conn.send(b"x")
            except ConnectionClosed:
                return "closed"

        assert run_proc(sim, client_proc()) == "closed"

    def test_eof_is_sticky(self, world):
        net, client, server = world
        sim = net.sim
        listener = listen(sim, server, 80)

        def server_proc():
            conn = yield listener.accept()
            conn.close()

        def client_proc():
            conn = yield from connect(net, client, "server", 80)
            first = yield from conn.recv(timeout=5)
            second = yield from conn.recv(timeout=5)
            return (first, second)

        sim.process(server_proc())
        assert sim.run(sim.process(client_proc())) == (b"", b"")

    def test_transfer_time_scales_with_size(self, world):
        net, client, server = world
        sim = net.sim
        listener = listen(sim, server, 80)

        def server_proc():
            conn = yield listener.accept()
            yield from conn.recv()

        def client_proc():
            conn = yield from connect(net, client, "server", 80)
            t0 = sim.now
            yield from conn.send(b"x" * 25_000)  # 200 kbit over 2 Mbps ≈ 0.1s x2
            return sim.now - t0

        sim.process(server_proc())
        elapsed = sim.run(sim.process(client_proc()))
        assert elapsed == pytest.approx(0.22, abs=0.05)


def test_firewall_policy_counters():
    fw = FirewallPolicy.outbound_only()
    assert not fw.admits_inbound("x", 80)
    assert fw.dropped == 1
    fw2 = FirewallPolicy.outbound_only(allowed_sources=("friend",))
    assert fw2.admits_inbound("friend", 9999)

"""Tests for HTTP over the simulated transport."""

import pytest

from repro.http import Headers, HttpRequest, HttpResponse
from repro.simnet.httpsim import (
    SimHttpClientPool,
    SimHttpServer,
    sim_http_request,
)
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, make_network
from repro.simnet.topology import AccessLink, Network


@pytest.fixture
def world(sim):
    net = Network(sim)
    client = net.add_host("client", AccessLink(5000, 5000, 0.005))
    server = net.add_host("server", AccessLink(5000, 5000, 0.005))
    return net, client, server


def echo_handler(request: HttpRequest) -> HttpResponse:
    return HttpResponse(200, body=request.body or request.target.encode())


class TestSimHttpServer:
    def test_request_response(self, world):
        net, client, server_host = world
        sim = net.sim
        SimHttpServer(net, server_host, 80, echo_handler)

        def client_proc():
            req = HttpRequest("POST", "/x", body=b"ping")
            resp = yield from sim_http_request(net, client, "server", 80, req)
            return resp

        resp = sim.run(sim.process(client_proc()))
        assert resp.status == 200 and resp.body == b"ping"

    def test_generator_handler(self, world):
        net, client, server_host = world
        sim = net.sim

        def slow_handler(request):
            yield sim.timeout(0.5)
            return HttpResponse(200, body=b"slow")

        SimHttpServer(net, server_host, 80, slow_handler)

        def client_proc():
            resp = yield from sim_http_request(
                net, client, "server", 80, HttpRequest("GET", "/")
            )
            return (sim.now, resp.body)

        now, body = sim.run(sim.process(client_proc()))
        assert body == b"slow" and now >= 0.5

    def test_service_time_scales_with_host_speed(self, world):
        net, client, server_host = world
        sim = net.sim
        server_host.cpu_factor = 10.0
        SimHttpServer(net, server_host, 80, echo_handler, service_time=0.05)

        def client_proc():
            yield from sim_http_request(
                net, client, "server", 80, HttpRequest("GET", "/")
            )
            return sim.now

        assert sim.run(sim.process(client_proc())) >= 0.5

    def test_worker_pool_limits_concurrency(self, world):
        net, client, server_host = world
        sim = net.sim

        def slow(request):
            yield sim.timeout(1.0)
            return HttpResponse(200)

        SimHttpServer(net, server_host, 80, slow, workers=1)
        finishes = []

        def one_call(i):
            yield from sim_http_request(
                net, client, "server", 80, HttpRequest("GET", f"/{i}")
            )
            finishes.append(sim.now)

        for i in range(3):
            sim.process(one_call(i))
        sim.run()
        assert finishes[-1] >= 3.0  # serialized by the single worker

    def test_keep_alive_on_one_connection(self, world):
        net, client, server_host = world
        sim = net.sim
        server = SimHttpServer(net, server_host, 80, echo_handler)
        pool = SimHttpClientPool(net, client)

        def client_proc():
            for i in range(3):
                resp = yield from pool.exchange(
                    "server", 80, HttpRequest("POST", "/", body=b"%d" % i)
                )
                assert resp.ok
            return (pool.fresh_connects, pool.reuses)

        fresh, reuses = sim.run(sim.process(client_proc()))
        assert fresh == 1 and reuses == 2
        assert server.connections_accepted == 1
        assert server.requests_served == 3

    def test_stop_closes_listener(self, world):
        net, client, server_host = world
        sim = net.sim
        server = SimHttpServer(net, server_host, 80, echo_handler)
        server.stop()

        def client_proc():
            try:
                yield from sim_http_request(
                    net, client, "server", 80, HttpRequest("GET", "/"),
                    connect_timeout=1.0,
                )
            except Exception as exc:
                return type(exc).__name__

        assert sim.run(sim.process(client_proc())) in (
            "ConnectionRefused",
            "ConnectionTimeout",
        )


class TestScenarios:
    def test_make_network_builds_hosts(self):
        sim, net, hosts = make_network(BACKBONE_IU, INRIA)
        assert hosts["iuHigh"].firewall.inbound_open
        assert not hosts["inria"].firewall.inbound_open
        assert hosts["inria"].link.up.rate_bps == pytest.approx(1_262_000)

    def test_transatlantic_rtt_realistic(self):
        sim, net, hosts = make_network(BACKBONE_IU, INRIA)
        rtt = 2 * net.propagation(hosts["iuHigh"], hosts["inria"])
        assert 0.1 <= rtt <= 0.15

"""Firewall drop accounting stays exact under concurrent flows."""

import pytest

from repro.errors import ConnectionTimeout
from repro.simnet.firewall import FirewallPolicy
from repro.simnet.tcpsim import TcpParams, connect, listen
from repro.simnet.topology import AccessLink, Network


@pytest.fixture
def world(sim):
    net = Network(sim)
    clients = [
        net.add_host(f"c{i}", AccessLink(2000, 2000, 0.010)) for i in range(6)
    ]
    server = net.add_host("server", AccessLink(2000, 2000, 0.010))
    return net, clients, server


def test_concurrent_blocked_connects_each_counted_once(world):
    net, clients, server = world
    sim = net.sim
    server.firewall = FirewallPolicy.outbound_only()
    listen(sim, server, 80)
    outcomes = []

    def attempt(client):
        try:
            yield from connect(
                net, client, "server", 80, TcpParams(connect_timeout=2.0)
            )
            outcomes.append("connected")
        except ConnectionTimeout:
            outcomes.append("timeout")

    for client in clients:
        sim.process(attempt(client))
    sim.run()
    assert outcomes == ["timeout"] * len(clients)
    assert server.firewall.dropped == len(clients)


def test_concurrent_allowed_flows_do_not_count_as_drops(world):
    net, clients, server = world
    sim = net.sim
    server.firewall = FirewallPolicy.outbound_only(open_ports=(80,))
    listener = listen(sim, server, 80)
    served = []

    def server_loop():
        while True:
            conn = yield listener.accept()
            sim.process(echo(conn))

    def echo(conn):
        data = yield from conn.recv()
        served.append(data)
        yield from conn.send(data)
        conn.close()

    def attempt(client, i):
        conn = yield from connect(net, client, "server", 80)
        yield from conn.send(b"m%d" % i)
        yield from conn.recv(timeout=5)
        conn.close()

    sim.process(server_loop())
    for i, client in enumerate(clients):
        sim.process(attempt(client, i))
    sim.run(until=30.0)
    assert sorted(served) == [b"m%d" % i for i in range(len(clients))]
    assert server.firewall.dropped == 0


def test_mixed_traffic_counts_only_the_blocked_port(world):
    net, clients, server = world
    sim = net.sim
    server.firewall = FirewallPolicy.outbound_only(
        open_ports=(80,), allowed_sources=("c0",)
    )
    listen(sim, server, 80)
    listen(sim, server, 81)
    outcomes = {"ok": 0, "blocked": 0}

    def attempt(client, port):
        try:
            yield from connect(
                net, client, "server", port, TcpParams(connect_timeout=2.0)
            )
            outcomes["ok"] += 1
        except ConnectionTimeout:
            outcomes["blocked"] += 1

    # c0 is an allowed source: admitted on the closed port 81 too
    sim.process(attempt(clients[0], 81))
    # everyone connects on the open port 80 concurrently
    for client in clients:
        sim.process(attempt(client, 80))
    # three strangers hammer the closed port 81 concurrently
    for client in clients[1:4]:
        sim.process(attempt(client, 81))
    sim.run()
    assert outcomes == {"ok": len(clients) + 1, "blocked": 3}
    assert server.firewall.dropped == 3


def test_retrying_client_counts_every_attempt(world):
    net, clients, server = world
    sim = net.sim
    server.firewall = FirewallPolicy.outbound_only()
    listen(sim, server, 80)

    def retrier():
        for _ in range(4):
            try:
                yield from connect(
                    net, clients[0], "server", 80,
                    TcpParams(connect_timeout=1.0),
                )
            except ConnectionTimeout:
                pass

    sim.run(sim.process(retrier()))
    assert server.firewall.dropped == 4

"""Tests for simulated service implementations."""

import pytest

from repro.http import Headers, HttpRequest
from repro.simnet.httpsim import SimHttpServer, sim_http_request
from repro.simnet.firewall import FirewallPolicy
from repro.simnet.kernel import Simulator
from repro.simnet.services import SimAsyncEchoService
from repro.simnet.tcpsim import listen
from repro.simnet.topology import AccessLink, Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.wsa import EndpointReference


@pytest.fixture
def world(sim):
    net = Network(sim)
    link = AccessLink(5000, 5000, 0.005)
    client = net.add_host("client", link)
    ws = net.add_host("ws", link)
    return net, client, ws


def soap_post(path: str, body: bytes) -> HttpRequest:
    headers = Headers()
    headers.set("Content-Type", SOAP11_CONTENT_TYPE)
    return HttpRequest("POST", path, headers=headers, body=body)


def test_echo_replies_to_reachable_endpoint(world):
    net, client, ws = world
    sim = net.sim
    echo = SimAsyncEchoService(net, ws, reply_senders=4)
    SimHttpServer(net, ws, 9000, echo.handler)

    inbox = []

    def sink_handler(request):
        inbox.append(request.body)
        from repro.http import HttpResponse

        return HttpResponse(202)

    SimHttpServer(net, client, 7000, sink_handler)
    ids = IdGenerator("svc", seed=1)

    def send():
        msg = make_echo_message(
            to="http://ws:9000/echo",
            message_id=ids.next(),
            reply_to=EndpointReference("http://client:7000/inbox"),
        )
        resp = yield from sim_http_request(
            net, client, "ws", 9000, soap_post("/echo", msg.to_bytes())
        )
        return resp.status

    assert sim.run(sim.process(send())) == 202
    sim.run(until=sim.now + 2.0)
    assert echo.stats["replies_sent"] == 1
    assert len(inbox) == 1


def test_blocked_replies_counted(world):
    net, client, ws = world
    sim = net.sim
    client.firewall = FirewallPolicy.outbound_only()
    echo = SimAsyncEchoService(net, ws, reply_senders=4, connect_timeout=1.0)
    SimHttpServer(net, ws, 9000, echo.handler)
    ids = IdGenerator("svc", seed=2)

    def send():
        msg = make_echo_message(
            to="http://ws:9000/echo",
            message_id=ids.next(),
            reply_to=EndpointReference("http://client:7000/inbox"),
        )
        yield from sim_http_request(
            net, client, "ws", 9000, soap_post("/echo", msg.to_bytes())
        )

    sim.run(sim.process(send()))
    sim.run(until=sim.now + 5.0)
    assert echo.stats["replies_blocked"] == 1


def test_no_reply_to_means_no_send(world):
    net, client, ws = world
    sim = net.sim
    echo = SimAsyncEchoService(net, ws)
    SimHttpServer(net, ws, 9000, echo.handler)
    ids = IdGenerator("svc", seed=3)

    def send():
        msg = make_echo_message(to="http://ws:9000/echo", message_id=ids.next())
        resp = yield from sim_http_request(
            net, client, "ws", 9000, soap_post("/echo", msg.to_bytes())
        )
        return resp.status

    assert sim.run(sim.process(send())) == 202
    sim.run(until=sim.now + 1.0)
    assert echo.stats == {"received": 1}


def test_sender_pool_saturation_throttles_acceptance(world):
    """The Figure 6(a) mechanism: blocked senders stall new accepts."""
    net, client, ws = world
    sim = net.sim
    client.firewall = FirewallPolicy.outbound_only()
    echo = SimAsyncEchoService(net, ws, reply_senders=1, connect_timeout=5.0)
    SimHttpServer(net, ws, 9000, echo.handler, workers=8)
    ids = IdGenerator("svc", seed=4)
    accept_times = []

    def send(i):
        msg = make_echo_message(
            to="http://ws:9000/echo",
            message_id=ids.next(),
            reply_to=EndpointReference(f"http://client:{7000 + i}/inbox"),
        )
        resp = yield from sim_http_request(
            net, client, "ws", 9000, soap_post("/echo", msg.to_bytes()),
            response_timeout=60.0,
        )
        accept_times.append(sim.now)
        return resp.status

    for i in range(3):
        sim.process(send(i))
    sim.run()
    # first accept is fast; the next ones wait for the single wedged sender
    accept_times.sort()
    assert accept_times[1] - accept_times[0] >= 4.0


def test_unroutable_reply_address_counted(world):
    net, client, ws = world
    sim = net.sim
    echo = SimAsyncEchoService(net, ws)
    SimHttpServer(net, ws, 9000, echo.handler)
    ids = IdGenerator("svc", seed=5)

    def send():
        msg = make_echo_message(
            to="http://ws:9000/echo",
            message_id=ids.next(),
            reply_to=EndpointReference("not-a-url"),
        )
        yield from sim_http_request(
            net, client, "ws", 9000, soap_post("/echo", msg.to_bytes())
        )

    sim.run(sim.process(send()))
    sim.run(until=sim.now + 1.0)
    assert echo.stats["replies_unroutable"] == 1

"""Tests for the simulated HTTP connection pool's failure handling."""

import pytest

from repro.errors import ConnectionRefused
from repro.http import HttpRequest, HttpResponse
from repro.simnet.httpsim import SimHttpClientPool, SimHttpServer
from repro.simnet.topology import AccessLink, Network


@pytest.fixture
def world(sim):
    net = Network(sim)
    link = AccessLink(5000, 5000, 0.005)
    client = net.add_host("client", link)
    server = net.add_host("server", link)
    return net, client, server


def test_stale_pooled_connection_retried(world):
    """A server restart invalidates pooled connections; the pool recovers."""
    net, client, server_host = world
    sim = net.sim
    server = SimHttpServer(
        net, server_host, 80, lambda r: HttpResponse(200, body=b"v1")
    )
    pool = SimHttpClientPool(net, client)
    results = []

    def scenario():
        resp = yield from pool.exchange("server", 80, HttpRequest("GET", "/"))
        results.append(resp.body)
        # restart: old connections die, a new server appears on the port
        server.stop()
        for conns in pool._idle.values():
            for conn in conns:
                conn.close()  # the server's closure propagates as EOF
        SimHttpServer(net, server_host, 80, lambda r: HttpResponse(200, body=b"v2"))
        resp = yield from pool.exchange("server", 80, HttpRequest("GET", "/"))
        results.append(resp.body)

    sim.run(sim.process(scenario()))
    assert results == [b"v1", b"v2"]


def test_fresh_connect_failure_propagates(world):
    net, client, server_host = world
    sim = net.sim
    pool = SimHttpClientPool(net, client, connect_timeout=0.5)

    def scenario():
        try:
            yield from pool.exchange("server", 80, HttpRequest("GET", "/"))
        except ConnectionRefused:
            return "refused"

    assert sim.run(sim.process(scenario())) == "refused"


def test_close_all_empties_pool(world):
    net, client, server_host = world
    sim = net.sim
    SimHttpServer(net, server_host, 80, lambda r: HttpResponse(200))
    pool = SimHttpClientPool(net, client)

    def scenario():
        yield from pool.exchange("server", 80, HttpRequest("GET", "/"))
        assert sum(len(v) for v in pool._idle.values()) == 1
        pool.close_all()
        assert sum(len(v) for v in pool._idle.values()) == 0

    sim.run(sim.process(scenario()))


def test_connection_close_response_not_pooled(world):
    net, client, server_host = world
    sim = net.sim

    def handler(request):
        resp = HttpResponse(200, body=b"bye")
        resp.headers.set("Connection", "close")
        return resp

    SimHttpServer(net, server_host, 80, handler)
    pool = SimHttpClientPool(net, client)

    def scenario():
        yield from pool.exchange("server", 80, HttpRequest("GET", "/"))
        return sum(len(v) for v in pool._idle.values())

    assert sim.run(sim.process(scenario())) == 0


def test_pool_reuse_counters(world):
    net, client, server_host = world
    sim = net.sim
    SimHttpServer(net, server_host, 80, lambda r: HttpResponse(200))
    pool = SimHttpClientPool(net, client)

    def scenario():
        for _ in range(5):
            yield from pool.exchange("server", 80, HttpRequest("GET", "/"))

    sim.run(sim.process(scenario()))
    assert pool.fresh_connects == 1
    assert pool.reuses == 4

"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimInterrupt, SimulationError
from repro.simnet.kernel import AllOf, AnyOf, Event, Simulator


class TestTimeAdvance:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_time(self, sim):
        def proc():
            yield sim.timeout(2.5)
            return sim.now

        p = sim.process(proc())
        assert sim.run(p) == 2.5

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_events_fire_in_time_order(self, sim):
        order = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(proc(3, "c"))
        sim.process(proc(1, "a"))
        sim.process(proc(2, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_schedule_order(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_time(self, sim):
        fired = []

        def proc():
            yield sim.timeout(5)
            fired.append(True)

        sim.process(proc())
        sim.run(until=3.0)
        assert sim.now == 3.0 and not fired
        sim.run(until=10.0)
        assert fired

    def test_run_to_past_rejected(self, sim):
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        evt = sim.event()

        def proc():
            value = yield evt
            return value

        p = sim.process(proc())
        evt.succeed("payload")
        assert sim.run(p) == "payload"

    def test_fail_raises_in_process(self, sim):
        evt = sim.event()

        def proc():
            try:
                yield evt
            except ValueError as exc:
                return f"caught {exc}"

        p = sim.process(proc())
        evt.fail(ValueError("boom"))
        assert sim.run(p) == "caught boom"

    def test_double_trigger_rejected(self, sim):
        evt = sim.event()
        evt.succeed(1)
        with pytest.raises(SimulationError):
            evt.succeed(2)

    def test_fail_requires_exception(self, sim):
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_waiting_on_already_processed_event(self, sim):
        evt = sim.event()
        evt.succeed("early")
        sim.run()

        def proc():
            value = yield evt
            return value

        assert sim.run(sim.process(proc())) == "early"

    def test_process_failure_propagates_via_run(self, sim):
        def proc():
            yield sim.timeout(1)
            raise RuntimeError("process died")

        p = sim.process(proc())
        with pytest.raises(RuntimeError):
            sim.run(p)

    def test_yielding_non_event_is_error(self, sim):
        def proc():
            yield "nonsense"

        p = sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run(p)


class TestConditions:
    def test_all_of_collects_values(self, sim):
        def proc():
            values = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(2, "b")])
            return (sim.now, values)

        now, values = sim.run(sim.process(proc()))
        assert now == 2.0 and values == ["a", "b"]

    def test_any_of_returns_first(self, sim):
        def proc():
            idx, value = yield sim.any_of([sim.timeout(5, "slow"), sim.timeout(1, "fast")])
            return (sim.now, idx, value)

        now, idx, value = sim.run(sim.process(proc()))
        assert now == 1.0 and idx == 1 and value == "fast"

    def test_empty_all_of_fires_immediately(self, sim):
        def proc():
            values = yield sim.all_of([])
            return values

        assert sim.run(sim.process(proc())) == []

    def test_all_of_propagates_failure(self, sim):
        bad = sim.event()

        def proc():
            try:
                yield sim.all_of([sim.timeout(1), bad])
            except KeyError:
                return "failed"

        p = sim.process(proc())
        bad.fail(KeyError("x"))
        assert sim.run(p) == "failed"


class TestProcesses:
    def test_process_return_value_is_event_value(self, sim):
        def child():
            yield sim.timeout(1)
            return 42

        def parent():
            result = yield sim.process(child())
            return result * 2

        assert sim.run(sim.process(parent())) == 84

    def test_interrupt_raises_sim_interrupt(self, sim):
        def victim():
            try:
                yield sim.timeout(100)
            except SimInterrupt as exc:
                return f"interrupted: {exc.cause}"

        def attacker(target):
            yield sim.timeout(1)
            target.interrupt("deadline")

        v = sim.process(victim())
        sim.process(attacker(v))
        assert sim.run(v) == "interrupted: deadline"
        assert sim.now == 1.0

    def test_interrupt_completed_process_is_noop(self, sim):
        def quick():
            yield sim.timeout(1)
            return "done"

        p = sim.process(quick())
        sim.run()
        p.interrupt("too late")
        assert p.value == "done"

    def test_is_alive(self, sim):
        def proc():
            yield sim.timeout(1)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_uncaught_interrupt_terminates_silently(self, sim):
        def victim():
            yield sim.timeout(100)

        def attacker(target):
            yield sim.timeout(1)
            target.interrupt()

        v = sim.process(victim())
        sim.process(attacker(v))
        assert sim.run(v) is None


class TestClockAdapter:
    def test_now_tracks_sim(self, sim):
        def proc():
            yield sim.timeout(3)

        sim.process(proc())
        sim.run()
        assert sim.clock.now() == 3.0

    def test_sleep_forbidden(self, sim):
        with pytest.raises(SimulationError):
            sim.clock.sleep(1)


def test_events_processed_counter(sim):
    def proc():
        yield sim.timeout(1)
        yield sim.timeout(1)

    sim.process(proc())
    sim.run()
    assert sim.events_processed >= 3


def test_run_until_event_with_empty_queue_raises(sim):
    evt = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=evt)

"""Tests for hosts, pipes, links, and the network fabric."""

import pytest

from repro.errors import SimulationError
from repro.simnet.kernel import Simulator
from repro.simnet.topology import AccessLink, Network, Pipe


@pytest.fixture
def two_hosts(sim):
    net = Network(sim)
    a = net.add_host("a", AccessLink(down_kbps=1000, up_kbps=1000, latency=0.010))
    b = net.add_host("b", AccessLink(down_kbps=1000, up_kbps=500, latency=0.020))
    return net, a, b


class TestPipe:
    def test_single_transfer_time(self, sim):
        pipe = Pipe(sim, rate_bps=8000)  # 1000 bytes/s

        def proc():
            yield pipe.transmit(500)
            return sim.now

        assert sim.run(sim.process(proc())) == pytest.approx(0.5)

    def test_fifo_queueing(self, sim):
        pipe = Pipe(sim, rate_bps=8000)
        done = []

        def sender(tag, size):
            yield pipe.transmit(size)
            done.append((tag, sim.now))

        sim.process(sender("first", 1000))
        sim.process(sender("second", 1000))
        sim.run()
        assert done == [("first", pytest.approx(1.0)), ("second", pytest.approx(2.0))]

    def test_backlog_seconds(self, sim):
        pipe = Pipe(sim, rate_bps=8000)
        pipe.transmit(2000)
        assert pipe.backlog_seconds == pytest.approx(2.0)

    def test_counters(self, sim):
        pipe = Pipe(sim, rate_bps=8000)
        pipe.transmit(10)
        pipe.transmit(20)
        assert pipe.bytes_carried == 30
        assert pipe.transfers == 2

    def test_invalid_rate(self, sim):
        with pytest.raises(SimulationError):
            Pipe(sim, rate_bps=0)

    def test_negative_bytes(self, sim):
        with pytest.raises(SimulationError):
            Pipe(sim, rate_bps=1).transmit(-1)


class TestHost:
    def test_connection_accounting(self, two_hosts):
        _, a, _ = two_hosts
        a.max_connections = 2
        assert a.try_acquire_connection()
        assert a.try_acquire_connection()
        assert not a.try_acquire_connection()
        assert a.refused_connections == 1
        a.release_connection()
        assert a.try_acquire_connection()

    def test_release_underflow_detected(self, two_hosts):
        _, a, _ = two_hosts
        with pytest.raises(SimulationError):
            a.release_connection()

    def test_compute_scales_with_cpu_factor(self, sim):
        net = Network(sim)
        slow = net.add_host(
            "slow", AccessLink(1000, 1000, 0.01), cpu_factor=4.0
        )

        def proc():
            yield slow.compute(0.1)
            return sim.now

        assert sim.run(sim.process(proc())) == pytest.approx(0.4)


class TestNetwork:
    def test_duplicate_host_rejected(self, two_hosts):
        net, _, _ = two_hosts
        with pytest.raises(SimulationError):
            net.add_host("a", AccessLink(1, 1, 0.001))

    def test_unknown_host_rejected(self, two_hosts):
        net, _, _ = two_hosts
        with pytest.raises(SimulationError):
            net.host("ghost")

    def test_propagation_sums_latencies(self, two_hosts):
        net, a, b = two_hosts
        assert net.propagation(a, b) == pytest.approx(0.030)

    def test_loopback_propagation_tiny(self, two_hosts):
        net, a, _ = two_hosts
        assert net.propagation(a, a) < 0.001

    def test_transfer_time_includes_both_pipes(self, two_hosts):
        net, a, b = two_hosts
        sim = net.sim

        # 1000 bytes: up a @1000kbps = 8ms, prop 30ms, down b @1000kbps = 8ms
        def proc():
            yield net.transfer(a, b, 1000)
            return sim.now

        assert sim.run(sim.process(proc())) == pytest.approx(0.046, abs=1e-3)

    def test_asymmetric_direction_matters(self, two_hosts):
        net, a, b = two_hosts
        sim = net.sim

        # b's uplink is 500kbps: 1000 bytes up = 16ms
        def proc():
            yield net.transfer(b, a, 1000)
            return sim.now

        assert sim.run(sim.process(proc())) == pytest.approx(0.054, abs=1e-3)

    def test_same_host_transfer_bypasses_link(self, two_hosts):
        net, a, _ = two_hosts
        sim = net.sim

        def proc():
            yield net.transfer(a, a, 10_000_000)
            return sim.now

        assert sim.run(sim.process(proc())) < 0.01
        assert a.link.up.bytes_carried == 0

    def test_concurrent_transfers_share_uplink(self, two_hosts):
        net, a, b = two_hosts
        sim = net.sim
        done = []

        def send(tag):
            yield net.transfer(a, b, 12_500)  # 100 kbit = 0.1s at 1 Mbps
            done.append((tag, sim.now))

        sim.process(send("x"))
        sim.process(send("y"))
        sim.run()
        # serialized on a's uplink: second finishes ~0.1s after the first
        assert done[1][1] - done[0][1] == pytest.approx(0.1, abs=0.02)

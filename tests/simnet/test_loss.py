"""Tests for link-loss modelling."""

import pytest

from repro.errors import SimulationError
from repro.simnet.kernel import Simulator
from repro.simnet.topology import AccessLink, Network


def test_loss_validation():
    with pytest.raises(SimulationError):
        AccessLink(1000, 1000, 0.01, loss=1.0)
    with pytest.raises(SimulationError):
        AccessLink(1000, 1000, 0.01, loss=-0.1)


def test_lossless_link_never_drops(sim):
    net = Network(sim)
    a = net.add_host("a", AccessLink(1000, 1000, 0.01))
    b = net.add_host("b", AccessLink(1000, 1000, 0.01))

    def sender():
        for _ in range(100):
            yield net.transfer(a, b, 100)

    sim.run(sim.process(sender()))
    assert a.link.dropped_transfers == 0
    assert b.link.dropped_transfers == 0


def test_lossy_link_retransmits_and_counts(sim):
    net = Network(sim, loss_seed=42)
    a = net.add_host("a", AccessLink(8000, 8000, 0.001, loss=0.3))
    b = net.add_host("b", AccessLink(8000, 8000, 0.001))
    durations = []

    def sender():
        for _ in range(200):
            t0 = sim.now
            yield net.transfer(a, b, 100)
            durations.append(sim.now - t0)

    sim.run(sim.process(sender()))
    drops = a.link.dropped_transfers
    # ~30% of 200 transfers (plus re-drops) should have retransmitted
    assert 30 <= drops <= 120
    # retransmitted transfers pay at least one RTO
    assert max(durations) >= net.rto
    assert min(durations) < net.rto


def test_loss_is_deterministic_per_seed():
    def run(seed):
        sim = Simulator()
        net = Network(sim, loss_seed=seed)
        a = net.add_host("a", AccessLink(8000, 8000, 0.001, loss=0.2))
        b = net.add_host("b", AccessLink(8000, 8000, 0.001))

        def sender():
            for _ in range(100):
                yield net.transfer(a, b, 100)

        sim.run(sim.process(sender()))
        return a.link.dropped_transfers, sim.now

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_loss_slows_http_exchange(sim):
    from repro.http import HttpRequest
    from repro.simnet.httpsim import SimHttpServer, sim_http_request
    from repro.http import HttpResponse

    net = Network(sim, loss_seed=1)
    client = net.add_host("client", AccessLink(8000, 8000, 0.001, loss=0.5))
    server = net.add_host("server", AccessLink(8000, 8000, 0.001))
    SimHttpServer(net, server, 80, lambda r: HttpResponse(200, body=b"ok"))

    def call():
        resp = yield from sim_http_request(
            net, client, "server", 80, HttpRequest("GET", "/"),
            response_timeout=60.0, connect_timeout=60.0,
        )
        return (resp.status, sim.now)

    status, elapsed = sim.run(sim.process(call()))
    assert status == 200           # reliability preserved
    assert elapsed >= net.rto      # but the loss cost real time

"""Property-based tests of kernel invariants.

Invariants: time never goes backwards; every scheduled timeout fires at
exactly its due time; FIFO stores conserve and order items under any
interleaving of producers and consumers; resources never exceed capacity.
"""

from hypothesis import given, settings, strategies as st

from repro.simnet.kernel import Simulator
from repro.simnet.resources import Resource, Store

_delays = st.lists(st.floats(0.0, 10.0), min_size=1, max_size=30)


@given(_delays)
@settings(max_examples=100, deadline=None)
def test_timeouts_fire_at_due_time_in_order(delays):
    sim = Simulator()
    fired: list[tuple[float, float]] = []  # (due, actual)

    def waiter(delay):
        yield sim.timeout(delay)
        fired.append((delay, sim.now))

    for d in delays:
        sim.process(waiter(d))
    sim.run()
    assert len(fired) == len(delays)
    for due, actual in fired:
        assert actual == due
    actuals = [a for _, a in fired]
    assert actuals == sorted(actuals)  # monotone time


@given(_delays)
@settings(max_examples=100, deadline=None)
def test_now_is_monotone_under_nested_processes(delays):
    sim = Simulator()
    observed: list[float] = []

    def child(delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    def parent():
        procs = [sim.process(child(d)) for d in delays]
        yield sim.all_of(procs)
        observed.append(sim.now)

    sim.run(sim.process(parent()))
    assert observed == sorted(observed)
    assert observed[-1] == max(delays)


@given(
    items=st.lists(st.integers(), min_size=1, max_size=50),
    capacity=st.integers(1, 8),
    consumer_delay=st.floats(0.0, 0.1),
)
@settings(max_examples=100, deadline=None)
def test_store_conserves_and_orders_items(items, capacity, consumer_delay):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    received: list[int] = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in range(len(items)):
            value = yield store.get()
            received.append(value)
            if consumer_delay:
                yield sim.timeout(consumer_delay)

    sim.process(producer())
    done = sim.process(consumer())
    sim.run(done)
    assert received == items  # all items, FIFO order, none duplicated


@given(
    capacity=st.integers(1, 5),
    users=st.integers(1, 20),
    hold=st.floats(0.01, 1.0),
)
@settings(max_examples=50, deadline=None)
def test_resource_never_exceeds_capacity(capacity, users, hold):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    peak = [0]

    def user():
        req = yield res.request()
        peak[0] = max(peak[0], res.in_use)
        yield sim.timeout(hold)
        req.release()

    for _ in range(users):
        sim.process(user())
    sim.run()
    assert peak[0] <= capacity
    assert res.in_use == 0  # everything released at quiescence
    # total service time is serialized by capacity
    expected = (users + capacity - 1) // capacity * hold
    assert abs(sim.now - expected) < 1e-6


@given(st.lists(st.tuples(st.floats(0.0, 5.0), st.integers(0, 100)),
                min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_events_with_values_deliver_exactly_once(specs):
    sim = Simulator()
    deliveries: list[int] = []

    def waiter(evt):
        value = yield evt
        deliveries.append(value)

    def firer(evt, delay, value):
        yield sim.timeout(delay)
        evt.succeed(value)

    for delay, value in specs:
        evt = sim.event()
        sim.process(waiter(evt))
        sim.process(firer(evt, delay, value))
    sim.run()
    assert sorted(deliveries) == sorted(v for _, v in specs)

"""Version-vector merge semantics of one registry replica.

The merge rules are the whole correctness story of the replicated
registry: per-field last-writer-wins with ``(lamport, peer)`` stamps,
tombstones for unregister, idempotent state-based deltas, and a wire
format that cannot depend on ``PYTHONHASHSEED``.
"""

import subprocess
import sys

import pytest

from repro.errors import RegistryUnavailable, UnknownServiceError
from repro.registry import RegistryReplica, sync_pair
from repro.store.journal import MessageJournal


def test_register_lookup_roundtrip():
    replica = RegistryReplica("a")
    replica.register("echo", "http://ws:9000/echo", metadata={"ver": "1"})
    record = replica.lookup("echo")
    assert record.physical == ["http://ws:9000/echo"]
    assert record.metadata == {"ver": "1"}
    assert "echo" in replica
    assert len(replica) == 1


def test_concurrent_registers_converge_to_one_winner():
    a, b = RegistryReplica("a"), RegistryReplica("b")
    a.register("svc", "http://a:1/svc")
    b.register("svc", "http://b:2/svc")
    sync_pair(a, b)
    sync_pair(b, a)
    # both writes carry lamport 1; the tie breaks on peer id, so every
    # replica picks the same winner ("b" > "a")
    assert a.lookup("svc").physical == ["http://b:2/svc"]
    assert b.lookup("svc").physical == ["http://b:2/svc"]
    assert a.vv == b.vv == {"a": 1, "b": 1}


def test_concurrent_register_and_unregister_tombstone_wins_tie():
    a, b = RegistryReplica("a"), RegistryReplica("b")
    a.register("svc", "http://a:1/svc")
    sync_pair(a, b)
    # concurrent, equal-lamport conflict: a re-registers, b unregisters
    a.register("svc", "http://a:9/svc-v2")
    b.unregister("svc")
    sync_pair(a, b)
    sync_pair(b, a)
    for replica in (a, b):
        with pytest.raises(UnknownServiceError):
            replica.lookup("svc")
        assert replica.list_services() == []
    assert a.stats["tombstones"] == b.stats["tombstones"] == 1


def test_register_after_tombstone_resurrects():
    a, b = RegistryReplica("a"), RegistryReplica("b")
    a.register("svc", "http://a:1/svc")
    sync_pair(a, b)
    b.unregister("svc")
    sync_pair(b, a)
    with pytest.raises(UnknownServiceError):
        a.lookup("svc")
    # a higher-stamped register beats the tombstone everywhere
    a.register("svc", "http://a:2/svc-back")
    sync_pair(a, b)
    assert b.lookup("svc").physical == ["http://a:2/svc-back"]


def test_tombstone_suppresses_stale_register_replay():
    """An *older* register gossiped after the unregister must not
    resurrect the name (the LWW stamps, not arrival order, decide)."""
    a, b = RegistryReplica("a"), RegistryReplica("b")
    a.register("svc", "http://a:1/svc")
    stale_delta = a.delta_for({})
    a.unregister("svc")
    sync_pair(a, b)
    assert b.apply_delta(stale_delta) == 0
    with pytest.raises(UnknownServiceError):
        b.lookup("svc")


def test_regossip_of_same_digest_is_idempotent():
    a = RegistryReplica("a")
    a.register("one", "http://h:1/one")
    a.register("two", "http://h:2/two")
    a.unregister("two")
    delta = a.delta_for({})
    c = RegistryReplica("c")
    assert c.apply_delta(delta) > 0
    assert c.apply_delta(delta) == 0
    assert c.vv == a.vv
    # a full round against an already-synced peer applies nothing
    converged, applied = sync_pair(c, a)
    assert converged
    assert applied == 0


def test_delta_for_returns_only_missing_entries():
    a = RegistryReplica("a")
    a.register("one", "http://h:1/one")
    a.register("two", "http://h:2/two")
    assert a.delta_for(a.vv) == []
    partial = a.delta_for({"a": 1})
    assert [e["logical"] for e in partial] == ["two"]


def test_set_enabled_state_gossips():
    a, b = RegistryReplica("a"), RegistryReplica("b")
    a.register("svc", "http://h:1/svc")
    sync_pair(a, b)
    a.set_enabled("svc", False)
    sync_pair(a, b)
    for replica in (a, b):
        with pytest.raises(UnknownServiceError):
            replica.lookup("svc")
    with pytest.raises(UnknownServiceError):
        a.set_enabled("ghost", True)


def test_unavailable_replica_refuses_reads_writes_and_gossip():
    replica = RegistryReplica("a")
    replica.register("echo", "http://h:1/echo")
    delta = replica.delta_for({})
    replica.set_available(False)
    with pytest.raises(RegistryUnavailable):
        replica.lookup("echo")
    with pytest.raises(RegistryUnavailable):
        replica.register("x", "http://h:1/x")
    with pytest.raises(RegistryUnavailable):
        replica.unregister("echo")
    with pytest.raises(RegistryUnavailable):
        replica.set_enabled("echo", False)
    with pytest.raises(RegistryUnavailable):
        replica.apply_delta(delta)
    replica.set_available(True)
    assert replica.lookup("echo").logical == "echo"


def test_journal_restore_rebuilds_state_and_vector():
    journal = MessageJournal(sync="always")
    replica = RegistryReplica("a", journal=journal)
    replica.register("echo", "http://h:1/echo")
    replica.register("gone", "http://h:2/gone")
    replica.unregister("gone")
    replica.register("dark", "http://h:3/dark")
    replica.set_enabled("dark", False)
    # a new incarnation reopens the same journal (the disk survived)
    reborn = RegistryReplica("a", journal=journal)
    assert reborn.restored > 0
    # tombstoned "gone" is dropped; disabled "dark" stays listed (it is
    # still registered, just not resolvable) — same as the live replica
    assert [r.logical for r in reborn.list_services()] == ["dark", "echo"]
    assert reborn.vv == replica.vv
    with pytest.raises(UnknownServiceError):
        reborn.lookup("gone")
    with pytest.raises(UnknownServiceError):
        reborn.lookup("dark")
    # the restored replica keeps stamping above its own history
    reborn.register("after", "http://h:4/after")
    assert reborn.vv["a"] > replica.vv["a"]


def test_gossip_wire_bytes_are_hashseed_independent():
    """Digest + delta bytes must not depend on dict iteration order:
    every replica process has a different PYTHONHASHSEED."""
    code = (
        "from repro.registry import RegistryReplica\n"
        "from repro.registry.gossip import encode_gossip, gossip_payload\n"
        "r = RegistryReplica('p')\n"
        "for i in range(10):\n"
        "    r.register(f'svc-{i}', f'http://h:{i}/s',\n"
        "               metadata={f'k{i}': 'v', 'zz': 'y', 'aa': 'x'})\n"
        "r.unregister('svc-3')\n"
        "print(encode_gossip(\n"
        "    gossip_payload(r, entries=r.delta_for({}))).decode())\n"
    )
    outs = {
        subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
        ).stdout
        for seed in ("0", "12345")
    }
    assert len(outs) == 1

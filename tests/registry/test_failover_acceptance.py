"""Replica-kill acceptance: the registry-smoke CI gate.

One seeded simulated run of the registry-failover experiment point:
three gossiping replicas, the client's first-preference replica is
SIGKILLed mid-run and rejoins from its journal.  The replication
contract this PR ships is asserted directly: zero lookup failures,
bounded staleness, full flight/obs coverage, bit-reproducibility.
"""

from repro.experiments import registryfailover


def run_point():
    return registryfailover.run_point(8.0, 6.0, seed=17, interval=1.0)


def test_replica_kill_masks_outage_and_reconverges():
    point = run_point()
    # zero lookup failures: failover + availability bias mask the loss
    assert point["lookups"] > 0
    assert point["lookup_failures"] == 0
    assert point["late_lookups"] > 0
    assert point["late_lookup_failures"] == 0
    # the outage was real: sweeps skipped the dead replica
    assert point["failovers"] > 0
    # the rejoining incarnation replayed state from the journal ...
    assert point["replayed_on_restart"] > 0
    # ... and re-converged within two anti-entropy intervals
    assert point["converged_at"] > 0
    assert 0 <= point["staleness_after_rejoin"] <= 2 * point["interval"]
    # obs: both health edges and the convergence event were recorded
    assert point["replica_down_events"] >= 1
    assert point["replica_rejoin_events"] >= 1
    assert point["gossip_converged_events"] >= 1
    # every replica ends holding both services (echo + late-svc)
    assert set(point["final_entries"].values()) == {2}


def test_replica_kill_run_is_bit_reproducible():
    assert run_point() == run_point()

"""Anti-entropy gossip: wire validation, the HTTP endpoint, per-peer
health accounting, and full simulated-network convergence."""

import pytest

from repro.http import HttpRequest
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.registry import (
    GOSSIP_PATH,
    GossipHandler,
    RegistryReplica,
    SimGossipPeer,
    sync_pair,
)
from repro.registry.gossip import (
    GossipHealth,
    decode_gossip,
    drive_round,
    encode_gossip,
    make_gossip_request,
)
from repro.simnet.kernel import Simulator
from repro.simnet.httpsim import SimHttpServer
from repro.simnet.scenarios import BACKBONE_IU, add_site
from repro.simnet.topology import Network


# -- wire codec -------------------------------------------------------------
@pytest.mark.parametrize("body", [
    b"[]",                                   # not an object
    b'{"vv": {}}',                           # missing peer
    b'{"peer": "", "vv": {}}',               # empty peer
    b'{"peer": "a"}',                        # missing vv
    b'{"peer": "a", "vv": {"b": "x"}}',      # non-int lamport
    b'{"peer": "a", "vv": {}, "entries": 1}',  # entries not a list
])
def test_decode_gossip_rejects_malformed(body):
    with pytest.raises(ValueError):
        decode_gossip(body)


# -- the HTTP endpoint ------------------------------------------------------
def _counter(metrics, outcome):
    return metrics.counter(
        "registry_gossip_requests_total",
        "gossip exchanges served, by outcome",
    ).labels(outcome=outcome).get()


def test_handler_status_codes():
    metrics = MetricsRegistry()
    replica = RegistryReplica("srv")
    handler = GossipHandler(replica, metrics=metrics)

    assert handler(HttpRequest("GET", GOSSIP_PATH)).status == 405
    assert handler(
        HttpRequest("POST", GOSSIP_PATH, body=b"not json")
    ).status == 400
    assert _counter(metrics, "bad") == 1

    replica.set_available(False)
    digest = make_gossip_request({"peer": "x", "vv": {}})
    assert handler(digest).status == 503
    assert _counter(metrics, "refused") == 1

    replica.set_available(True)
    response = handler(digest)
    assert response.status == 200
    assert _counter(metrics, "ok") == 1
    reply = decode_gossip(response.body)
    assert reply["peer"] == "srv"


def test_round_over_http_handler_converges_both_ways():
    """A full initiator round driven through the HTTP endpoint reaches
    the same fixpoint as the in-process sync_pair."""
    a, b = RegistryReplica("a"), RegistryReplica("b")
    a.register("only-a", "http://h:1/a")
    b.register("only-b", "http://h:2/b")
    handler = GossipHandler(b, metrics=MetricsRegistry())

    def post(payload):
        response = handler(make_gossip_request(payload))
        assert response.status == 200
        return decode_gossip(response.body)

    converged, applied = drive_round(a, post)
    assert converged
    assert applied == 1
    assert a.vv == b.vv
    assert [r.logical for r in a.list_services()] == ["only-a", "only-b"]
    assert [r.logical for r in b.list_services()] == ["only-a", "only-b"]


# -- health accounting ------------------------------------------------------
def test_health_emits_down_rejoin_and_converged_edges():
    flight = FlightRecorder()
    health = GossipHealth(
        "me", ["peer"], metrics=MetricsRegistry(), flight=flight,
        now_fn=lambda: 42.0,
    )
    # repeated failures record a single down edge
    health.note_fail("peer")
    health.note_fail("peer")
    assert flight.counts_by_kind().get("replica-down") == 1
    assert health.snapshot()["peer"]["up"] is False

    # the first success after a failure is the rejoin edge; convergence
    # fires its own event only on the divergent->converged transition
    health.note_ok("peer", converged=False, applied=3)
    health.note_ok("peer", converged=True, applied=0)
    health.note_ok("peer", converged=True, applied=0)
    counts = flight.counts_by_kind()
    assert counts.get("replica-rejoin") == 1
    assert counts.get("gossip-converged") == 1

    snap = health.snapshot()["peer"]
    assert snap["up"] and snap["converged"]
    assert snap["rounds"] == 3
    assert snap["failures"] == 2


def test_health_lag_gauge_tracks_last_success():
    clock = {"now": 10.0}
    metrics = MetricsRegistry()
    health = GossipHealth(
        "me", ["peer"], metrics=metrics, flight=FlightRecorder(),
        now_fn=lambda: clock["now"],
    )
    health.note_ok("peer", converged=True, applied=0)
    clock["now"] = 17.5
    assert health.snapshot()["peer"]["lag_seconds"] == pytest.approx(7.5)


# -- simulated-network anti-entropy ----------------------------------------
def test_sim_gossip_peers_converge_cluster():
    """Three replicas on the simulated backbone: a write landing on one
    reaches all of them within a few anti-entropy intervals."""
    sim = Simulator()
    net = Network(sim, loss_seed=5)
    metrics = MetricsRegistry()
    flight = FlightRecorder()
    names = ("r1", "r2", "r3")
    port = 7000

    hosts = {
        n: add_site(net, BACKBONE_IU, name=n, open_ports=(port,))
        for n in names
    }
    replicas = {n: RegistryReplica(n, metrics=metrics) for n in names}
    for n in names:
        SimHttpServer(
            net, hosts[n], port, GossipHandler(replicas[n], metrics=metrics),
            workers=2, service_time=0.0005,
        )
    peers = {
        n: SimGossipPeer(
            net, hosts[n], replicas[n],
            {p: (p, port) for p in names if p != n},
            interval=0.5, seed=5 + i, metrics=metrics, flight=flight,
        ).start()
        for i, n in enumerate(names)
    }

    def writer():
        yield sim.timeout(0.1)
        replicas["r1"].register("svc", "http://sink:9000/svc")

    sim.process(writer(), name="writer")
    sim.run(until=6.0)

    for n in names:
        assert replicas[n].lookup("svc").physical == ["http://sink:9000/svc"]
    vvs = [replicas[n].vv for n in names]
    assert vvs[0] == vvs[1] == vvs[2]
    assert flight.counts_by_kind().get("gossip-converged", 0) >= 3
    for n in names:
        for peer_snap in peers[n].health.snapshot().values():
            assert peer_snap["up"]
            assert peer_snap["failures"] == 0


def test_idempotent_round_after_convergence():
    a, b = RegistryReplica("a"), RegistryReplica("b")
    a.register("svc", "http://h:1/svc")
    sync_pair(a, b)
    # wire bytes are stable too: the same digest encodes identically
    assert encode_gossip(a.digest()) == encode_gossip(a.digest())
    converged, applied = sync_pair(a, b)
    assert converged
    assert applied == 0

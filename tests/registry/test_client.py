"""ReplicatedRegistryClient: failover sweep, staleness bias, breakers,
the TTL/single-flight cache, and drop-in use as a dispatcher registry."""

import threading

import pytest

from repro.core.msg_dispatcher import MsgDispatcherConfig
from repro.core.registry import ServiceRegistry
from repro.errors import (
    RegistryError,
    RegistryUnavailable,
    UnknownServiceError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceStore
from repro.registry import RegistryReplica, ReplicatedRegistryClient, sync_pair
from repro.reliable import BreakerConfig
from repro.util.clock import ManualClock
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.rt.service import RequestContext
from tests.core.test_dispatcher_robustness import FakeClient, wait_for

SEED = 7


def make_cluster(n=3, registered=("echo",)):
    replicas = {
        f"r{i}": RegistryReplica(f"r{i}", metrics=MetricsRegistry())
        for i in range(1, n + 1)
    }
    first = next(iter(replicas.values()))
    for logical in registered:
        first.register(logical, f"http://ws:9000/{logical}")
    others = [r for r in replicas.values() if r is not first]
    for other in others:
        sync_pair(first, other)
    return replicas


def make_client(replicas, **kwargs):
    kwargs.setdefault("seed", SEED)
    kwargs.setdefault("metrics", MetricsRegistry())
    return ReplicatedRegistryClient(replicas, **kwargs)


def failover_count(client):
    return client.metrics.counter(
        "registry_client_failover_total",
        "lookup attempts that skipped past a failed replica",
    ).labels().get()


def test_lookup_fails_over_past_unavailable_replica():
    replicas = make_cluster()
    client = make_client(replicas, cache_ttl=0.0)
    victim = client.replica_names[0]
    replicas[victim].set_available(False)
    record = client.lookup("echo")
    assert record.physical == ["http://ws:9000/echo"]
    assert failover_count(client) >= 1
    # repeated sweeps trip the victim's breaker and stop consulting it
    client.lookup("echo")
    client.lookup("echo")
    assert client.breakers.state(victim) == "open"


def test_sweep_rides_out_stale_replica_answering_unknown():
    """A reachable replica that answers "unknown" must not end the sweep:
    a peer that has converged further may still know the name."""
    replicas = make_cluster(registered=())
    client = make_client(replicas, cache_ttl=0.0)
    # only the *last*-preference replica knows the service (the others
    # are healthy but stale, e.g. freshly restarted from a journal)
    straggler = client.replica_names[-1]
    replicas[straggler].register("late", "http://ws:9000/late")
    assert client.lookup("late").physical == ["http://ws:9000/late"]
    # stale answers are healthy answers: no breaker charge, no failover
    assert failover_count(client) == 0
    for name in client.replica_names:
        assert client.breakers.state(name) == "closed"


def test_unknown_everywhere_is_authoritative_no_retry_passes():
    clock = ManualClock()
    client = make_client(
        make_cluster(registered=()), cache_ttl=0.0, clock=clock, max_passes=3
    )
    with pytest.raises(UnknownServiceError):
        client.lookup("ghost")
    # retry passes are for outages, not staleness: no backoff was slept
    assert clock.now() == 0.0


def test_all_replicas_down_raises_registry_unavailable():
    clock = ManualClock()
    replicas = make_cluster()
    for replica in replicas.values():
        replica.set_available(False)
    client = make_client(
        replicas, cache_ttl=0.0, clock=clock, max_passes=2,
        breaker_config=BreakerConfig(consecutive_failures=100, open_for=1.0),
    )
    with pytest.raises(RegistryUnavailable):
        client.lookup("echo")
    assert clock.now() > 0.0  # backoff between the two passes
    assert failover_count(client) == 6  # 2 passes x 3 replicas


def test_bad_request_raises_immediately_without_breaker_charge():
    client = make_client(make_cluster())
    with pytest.raises(RegistryError):
        client.register("", "http://ws:9000/x")
    for name in client.replica_names:
        assert client.breakers.state(name) == "closed"
    assert failover_count(client) == 0


def test_cache_ttl_hit_expiry_and_write_invalidation():
    clock = ManualClock()
    replicas = make_cluster()
    client = make_client(replicas, cache_ttl=5.0, clock=clock)
    client.lookup("echo")
    client.lookup("echo")
    stats = client.cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 1
    clock.advance(6.0)  # past the TTL: the entry is stale
    client.lookup("echo")
    assert client.cache_stats()["misses"] == 2
    # a write through the client invalidates its own cache entry
    client.register("echo", "http://ws:9001/echo-v2")
    assert client.lookup("echo").physical == ["http://ws:9001/echo-v2"]


def test_single_flight_coalesces_concurrent_misses():
    class GatedReplica:
        """lookup blocks until released — holds the first miss in flight
        while a second thread piles onto the same key."""

        def __init__(self, inner):
            self.inner = inner
            self.gate = threading.Event()
            self.entered = threading.Event()

        def lookup(self, logical):
            self.entered.set()
            assert self.gate.wait(5.0)
            return self.inner.lookup(logical)

    inner = RegistryReplica("r1")
    inner.register("echo", "http://ws:9000/echo")
    gated = GatedReplica(inner)
    client = make_client({"r1": gated}, cache_ttl=5.0)

    results = []
    threads = [
        threading.Thread(target=lambda: results.append(client.lookup("echo")))
        for _ in range(2)
    ]
    threads[0].start()
    assert gated.entered.wait(5.0)
    threads[1].start()  # joins the in-flight miss instead of sweeping again
    gated.gate.set()
    for t in threads:
        t.join(timeout=5.0)
    assert len(results) == 2
    stats = client.cache_stats()
    assert stats["misses"] == 1
    assert stats["coalesced"] == 1


def test_writes_propagate_to_peers_via_gossip():
    replicas = make_cluster(registered=())
    client = make_client(replicas, cache_ttl=0.0)
    client.register("svc", "http://ws:9000/svc")
    first = client.replica_names[0]
    names = list(replicas)
    for name in names:
        sync_pair(replicas[first], replicas[name])
    for name in names:
        assert replicas[name].lookup("svc").physical == ["http://ws:9000/svc"]
    client.unregister("svc")
    for name in names:
        sync_pair(replicas[first], replicas[name])
    for name in names:
        with pytest.raises(UnknownServiceError):
            replicas[name].lookup("svc")


def test_health_snapshot_lists_every_replica():
    replicas = make_cluster()
    client = make_client(replicas)
    client.lookup("echo")
    down = client.replica_names[1]
    replicas[down].set_available(False)
    snap = client.health_snapshot()
    assert snap["order"] == client.replica_names
    assert set(snap["replicas"]) == set(replicas)
    for name, entry in snap["replicas"].items():
        assert entry["breaker"] in ("closed", "open", "half-open")
        assert entry["available"] is (name != down)
    assert snap["cache"]["misses"] == 1


def test_rejects_empty_replica_set_and_bad_passes():
    with pytest.raises(RegistryError):
        ReplicatedRegistryClient({})
    with pytest.raises(RegistryError):
        ReplicatedRegistryClient({"r1": ServiceRegistry()}, max_passes=0)


# -- drop-in for the dispatchers --------------------------------------------
def test_dispatcher_routes_through_replicated_client(dispatcher_backend):
    """Both dispatcher backends resolve through the replicated client,
    and keep delivering while the preferred replica is dark."""
    metrics = MetricsRegistry()
    replicas = make_cluster(registered=("echo",))
    registry = make_client(replicas, cache_ttl=0.0, metrics=metrics)
    http = FakeClient(failing=False)
    dispatcher = dispatcher_backend.make_dispatcher(
        registry, http, own_address="http://wsd:8000/msg",
        config=MsgDispatcherConfig(
            cx_threads=1, ws_threads=2, pipeline_batches=False,
        ),
        metrics=metrics, traces=TraceStore(enabled=False),
    )
    try:
        ids = IdGenerator("repl", seed=SEED)
        for _ in range(4):
            env = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
            dispatcher.handle(env, RequestContext(path="/msg/echo"))
        assert wait_for(
            lambda: dispatcher.stats.get("delivered", 0) == 4
        ), dispatcher.stats
        # darken the sweep's first preference mid-run: routing continues
        replicas[registry.replica_names[0]].set_available(False)
        for _ in range(4):
            env = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
            dispatcher.handle(env, RequestContext(path="/msg/echo"))
        assert wait_for(
            lambda: dispatcher.stats.get("delivered", 0) == 8
        ), dispatcher.stats
        assert http.calls == 8
        assert failover_count(registry) >= 1
    finally:
        dispatcher.stop()

"""Tests for the incremental HTTP wire codec."""

import time

import pytest

from repro.errors import HttpParseError
from repro.http import Headers, HttpRequest, HttpResponse
from repro.http.wire import (
    RequestParser,
    ResponseParser,
    serialize_request,
    serialize_response,
)


def parse_request(data: bytes) -> HttpRequest:
    p = RequestParser()
    p.feed(data)
    msg = p.next_message()
    assert msg is not None, "incomplete request"
    return msg


def parse_response(data: bytes, eof: bool = False) -> HttpResponse:
    p = ResponseParser()
    p.feed(data)
    if eof:
        p.feed_eof()
    msg = p.next_message()
    assert msg is not None, "incomplete response"
    return msg


class TestSerializeRequest:
    def test_basic(self):
        req = HttpRequest("GET", "/path")
        wire = serialize_request(req)
        assert wire.startswith(b"GET /path HTTP/1.1\r\n")
        assert wire.endswith(b"\r\n\r\n")

    def test_content_length_added_for_body(self):
        req = HttpRequest("POST", "/", body=b"hello")
        assert b"Content-Length: 5\r\n" in serialize_request(req)

    def test_zero_length_post_gets_content_length(self):
        req = HttpRequest("POST", "/")
        assert b"Content-Length: 0\r\n" in serialize_request(req)

    def test_existing_framing_respected(self):
        req = HttpRequest("POST", "/", body=b"x")
        req.headers.set("Content-Length", "1")
        assert serialize_request(req).count(b"Content-Length") == 1


class TestSerializeResponse:
    def test_basic(self):
        resp = HttpResponse(200, body=b"ok")
        wire = serialize_response(resp)
        assert wire.startswith(b"HTTP/1.1 200 OK\r\n")
        assert wire.endswith(b"ok")
        assert b"Content-Length: 2\r\n" in wire

    def test_custom_reason(self):
        resp = HttpResponse(299, reason="Custom")
        assert b"299 Custom" in serialize_response(resp)


class TestRequestParsing:
    def test_roundtrip(self):
        req = HttpRequest("POST", "/svc", body=b"<xml/>")
        req.headers.set("Content-Type", "text/xml")
        parsed = parse_request(serialize_request(req))
        assert parsed.method == "POST"
        assert parsed.target == "/svc"
        assert parsed.body == b"<xml/>"
        assert parsed.headers.get("content-type") == "text/xml"

    def test_request_without_body(self):
        parsed = parse_request(b"GET / HTTP/1.1\r\nHost: h\r\n\r\n")
        assert parsed.body == b""

    def test_byte_at_a_time(self):
        wire = serialize_request(HttpRequest("POST", "/", body=b"abc"))
        p = RequestParser()
        for i in range(len(wire)):
            assert p.next_message() is None
            p.feed(wire[i : i + 1])
        msg = p.next_message()
        assert msg is not None and msg.body == b"abc"

    def test_pipelined_requests(self):
        wire = serialize_request(HttpRequest("POST", "/a", body=b"1"))
        wire += serialize_request(HttpRequest("POST", "/b", body=b"2"))
        p = RequestParser()
        p.feed(wire)
        first = p.next_message()
        second = p.next_message()
        assert first.target == "/a" and first.body == b"1"
        assert second.target == "/b" and second.body == b"2"
        assert p.idle

    def test_leading_blank_line_tolerated(self):
        parsed = parse_request(b"\r\nGET / HTTP/1.1\r\n\r\n")
        assert parsed.method == "GET"

    def test_chunked_request(self):
        wire = (
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"3\r\nabc\r\n8\r\ndefghijk\r\n0\r\n\r\n"
        )
        assert parse_request(wire).body == b"abcdefghijk"

    def test_chunked_with_extensions_and_trailers(self):
        wire = (
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"3;ext=1\r\nabc\r\n0\r\nTrailer: x\r\n\r\n"
        )
        assert parse_request(wire).body == b"abc"

    @pytest.mark.parametrize(
        "wire",
        [
            b"BAD\r\n\r\n",  # malformed start line
            b"GET / HTTP/2.0\r\n\r\n",  # unsupported version
            b"get / HTTP/1.1\r\n\r\n",  # lowercase method
            b"GET / HTTP/1.1\r\nBad Header\r\n\r\n",  # no colon
            b"GET / HTTP/1.1\r\n Bad: folded\r\n\r\n",  # folding
            b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nZZ\r\n",
        ],
    )
    def test_protocol_violations(self, wire):
        p = RequestParser()
        with pytest.raises(HttpParseError):
            p.feed(wire)
            p.next_message()

    def test_body_limit_enforced(self):
        p = RequestParser(max_body=10)
        with pytest.raises(HttpParseError):
            p.feed(b"POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n")

    def test_chunked_body_limit_enforced(self):
        p = RequestParser(max_body=4)
        with pytest.raises(HttpParseError):
            p.feed(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"5\r\nabcde\r\n"
            )

    def test_eof_mid_message_raises(self):
        p = RequestParser()
        p.feed(b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab")
        with pytest.raises(HttpParseError):
            p.feed_eof()

    def test_eof_at_boundary_ok(self):
        p = RequestParser()
        p.feed(serialize_request(HttpRequest("GET", "/")))
        p.next_message()
        p.feed_eof()  # no error


class TestResponseParsing:
    def test_roundtrip(self):
        resp = HttpResponse(404, body=b"missing")
        parsed = parse_response(serialize_response(resp))
        assert parsed.status == 404
        assert parsed.body == b"missing"
        assert parsed.reason == "Not Found"

    def test_204_has_no_body(self):
        parsed = parse_response(b"HTTP/1.1 204 No Content\r\n\r\n")
        assert parsed.body == b""

    def test_read_until_close(self):
        p = ResponseParser()
        p.feed(b"HTTP/1.1 200 OK\r\n\r\npartial")
        assert p.next_message() is None
        p.feed(b" data")
        p.feed_eof()
        msg = p.next_message()
        assert msg.body == b"partial data"

    def test_head_response_with_content_length(self):
        p = ResponseParser()
        p.expect_no_body = True
        p.feed(b"HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\n")
        msg = p.next_message()
        assert msg is not None and msg.body == b""

    def test_bad_status_code(self):
        p = ResponseParser()
        with pytest.raises(HttpParseError):
            p.feed(b"HTTP/1.1 abc Oops\r\nContent-Length: 0\r\n\r\n")
            p.next_message()

    def test_chunked_response(self):
        wire = (
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"4\r\nwiki\r\n0\r\n\r\n"
        )
        assert parse_response(wire).body == b"wiki"


def test_header_block_size_limit():
    p = RequestParser()
    huge = b"GET / HTTP/1.1\r\n" + b"X: " + b"a" * 40_000 + b"\r\n\r\n"
    with pytest.raises(HttpParseError):
        p.feed(huge)


class TestBufferScaling:
    """The parser buffer must not go quadratic on long pipelined bursts."""

    def test_thousand_pipelined_requests_one_byte_at_a_time(self):
        # Regression: consuming used to `del buf[:n]` per line, making a
        # long burst O(n^2).  1000 requests fed a byte at a time must parse
        # in well under a second; with the old buffering this took minutes.
        body = b"x" * 32
        one = (
            b"POST /svc HTTP/1.1\r\nContent-Length: 32\r\n\r\n" + body
        )
        wire = one * 1000
        p = RequestParser()
        seen = 0
        start = time.monotonic()
        for i in range(len(wire)):
            p.feed(wire[i : i + 1])
            while p.next_message() is not None:
                seen += 1
        elapsed = time.monotonic() - start
        assert seen == 1000
        assert p.idle
        assert elapsed < 5.0  # generous bound; quadratic behavior blows it
        # the consumed prefix must have been trimmed, not retained forever
        assert len(p._buf) < len(wire)

"""Tests for the HTTP message model."""

import pytest

from repro.errors import HttpError
from repro.http import Headers, HttpRequest, HttpResponse


class TestHeaders:
    def test_case_insensitive_get(self):
        h = Headers()
        h.add("Content-Type", "text/xml")
        assert h.get("content-type") == "text/xml"
        assert h.get("CONTENT-TYPE") == "text/xml"

    def test_multi_value_preserved(self):
        h = Headers()
        h.add("Via", "1.1 a")
        h.add("Via", "1.1 b")
        assert h.get_all("via") == ["1.1 a", "1.1 b"]
        assert h.get("via") == "1.1 a"

    def test_set_replaces_all(self):
        h = Headers()
        h.add("X", "1")
        h.add("x", "2")
        h.set("X", "3")
        assert h.get_all("x") == ["3"]

    def test_remove(self):
        h = Headers([("A", "1"), ("a", "2"), ("B", "3")])
        h.remove("a")
        assert "A" not in h
        assert h.get("B") == "3"

    def test_iteration_preserves_order(self):
        h = Headers([("B", "2"), ("A", "1")])
        assert list(h) == [("B", "2"), ("A", "1")]

    def test_rejects_bad_names(self):
        h = Headers()
        for bad in ("", "a b", "a:b", "a\nb"):
            with pytest.raises(HttpError):
                h.add(bad, "v")

    def test_rejects_crlf_in_values(self):
        with pytest.raises(HttpError):
            Headers().add("X", "inject\r\nEvil: yes")

    def test_copy_independent(self):
        h = Headers([("A", "1")])
        dup = h.copy()
        dup.add("B", "2")
        assert "B" not in h


class TestHttpRequest:
    def test_validates_method(self):
        with pytest.raises(HttpError):
            HttpRequest("get", "/")
        with pytest.raises(HttpError):
            HttpRequest("", "/")

    def test_validates_target(self):
        with pytest.raises(HttpError):
            HttpRequest("GET", "")
        with pytest.raises(HttpError):
            HttpRequest("GET", "/a b")

    def test_keep_alive_default_11(self):
        assert HttpRequest("GET", "/").keep_alive is True

    def test_connection_close(self):
        req = HttpRequest("GET", "/")
        req.headers.set("Connection", "close")
        assert req.keep_alive is False

    def test_connection_token_list(self):
        req = HttpRequest("GET", "/")
        req.headers.set("Connection", "keep-alive, Close")
        assert req.keep_alive is False

    def test_http10_defaults_to_close(self):
        req = HttpRequest("GET", "/", version="HTTP/1.0")
        assert req.keep_alive is False
        req.headers.set("Connection", "keep-alive")
        assert req.keep_alive is True


class TestHttpResponse:
    def test_validates_status(self):
        with pytest.raises(HttpError):
            HttpResponse(status=99)
        with pytest.raises(HttpError):
            HttpResponse(status=600)

    def test_ok_range(self):
        assert HttpResponse(200).ok
        assert HttpResponse(204).ok
        assert not HttpResponse(404).ok
        assert not HttpResponse(302).ok

    def test_keep_alive(self):
        assert HttpResponse(200).keep_alive is True
        resp = HttpResponse(200)
        resp.headers.set("Connection", "close")
        assert resp.keep_alive is False

"""Tests for reason phrases and remaining wire-codec corners."""

import pytest

from repro.http import HttpRequest, reason_phrase
from repro.http.wire import RequestParser, serialize_request


@pytest.mark.parametrize(
    "status,phrase",
    [
        (200, "OK"),
        (202, "Accepted"),
        (404, "Not Found"),
        (503, "Service Unavailable"),
    ],
)
def test_known_phrases(status, phrase):
    assert reason_phrase(status) == phrase


@pytest.mark.parametrize(
    "status,phrase",
    [
        (199, "Informational"),
        (299, "Success"),
        (399, "Redirection"),
        (499, "Client Error"),
        (599, "Server Error"),
    ],
)
def test_class_fallbacks(status, phrase):
    assert reason_phrase(status) == phrase


def test_http10_request_roundtrip():
    wire = b"GET /legacy HTTP/1.0\r\nHost: old\r\n\r\n"
    p = RequestParser()
    p.feed(wire)
    req = p.next_message()
    assert req.version == "HTTP/1.0"
    assert req.keep_alive is False


def test_zero_length_chunked_body():
    wire = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"
    p = RequestParser()
    p.feed(wire)
    assert p.next_message().body == b""


def test_query_string_preserved_in_target():
    req = HttpRequest("GET", "/path?x=1&y=2")
    p = RequestParser()
    p.feed(serialize_request(req))
    assert p.next_message().target == "/path?x=1&y=2"


def test_duplicate_identical_content_length_tolerated():
    wire = b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi"
    p = RequestParser()
    p.feed(wire)
    assert p.next_message().body == b"hi"

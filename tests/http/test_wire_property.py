"""Property-based tests for the HTTP wire codec.

Invariants: (1) serialize∘parse is the identity on messages; (2) parsing
is insensitive to how the byte stream is sliced into feed() calls.
"""

from hypothesis import given, settings, strategies as st

from repro.http import Headers, HttpRequest, HttpResponse
from repro.http.wire import (
    RequestParser,
    ResponseParser,
    serialize_request,
    serialize_response,
)

_token = st.from_regex(r"[A-Za-z][A-Za-z0-9-]{0,10}", fullmatch=True)
_value = st.from_regex(r"[ -~]{0,30}", fullmatch=True).map(str.strip)
_body = st.binary(max_size=200)
_method = st.sampled_from(["GET", "POST", "PUT", "DELETE", "HEAD"])
_target = st.from_regex(r"/[A-Za-z0-9/_.-]{0,20}", fullmatch=True)

_RESERVED = {
    "content-length",
    "transfer-encoding",
    "connection",
}


@st.composite
def plain_headers(draw):
    h = Headers()
    for _ in range(draw(st.integers(0, 4))):
        name = draw(_token)
        if name.lower() in _RESERVED:
            continue
        h.add(name, draw(_value))
    return h


@st.composite
def requests(draw):
    method = draw(_method)
    body = b"" if method in ("GET", "HEAD") else draw(_body)
    return HttpRequest(
        method, draw(_target), headers=draw(plain_headers()), body=body
    )


@st.composite
def responses(draw):
    return HttpResponse(
        draw(st.integers(200, 599)),
        headers=draw(plain_headers()),
        body=draw(_body),
    )


def _chunks(data: bytes, cuts: list[int]):
    points = sorted({min(c, len(data)) for c in cuts})
    prev = 0
    out = []
    for p in points:
        out.append(data[prev:p])
        prev = p
    out.append(data[prev:])
    return out


@given(requests())
@settings(max_examples=100, deadline=None)
def test_request_roundtrip(req):
    p = RequestParser()
    p.feed(serialize_request(req))
    parsed = p.next_message()
    assert parsed.method == req.method
    assert parsed.target == req.target
    assert parsed.body == req.body
    for name, _ in req.headers:
        assert parsed.headers.get_all(name) == req.headers.get_all(name)


@given(responses())
@settings(max_examples=100, deadline=None)
def test_response_roundtrip(resp):
    p = ResponseParser()
    p.feed(serialize_response(resp))
    parsed = p.next_message()
    assert parsed.status == resp.status
    assert parsed.body == resp.body


@given(requests(), st.lists(st.integers(0, 500), max_size=8))
@settings(max_examples=100, deadline=None)
def test_request_parse_slicing_invariance(req, cuts):
    wire = serialize_request(req)
    whole = RequestParser()
    whole.feed(wire)
    expected = whole.next_message()

    sliced = RequestParser()
    for chunk in _chunks(wire, cuts):
        sliced.feed(chunk)
    got = sliced.next_message()
    assert got.method == expected.method
    assert got.target == expected.target
    assert got.body == expected.body
    assert list(got.headers) == list(expected.headers)


@given(st.lists(requests(), min_size=1, max_size=4))
@settings(max_examples=50, deadline=None)
def test_pipelined_stream(reqs):
    wire = b"".join(serialize_request(r) for r in reqs)
    p = RequestParser()
    p.feed(wire)
    for expected in reqs:
        got = p.next_message()
        assert got is not None
        assert (got.method, got.target, got.body) == (
            expected.method,
            expected.target,
            expected.body,
        )
    assert p.next_message() is None
    assert p.idle

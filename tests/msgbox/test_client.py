"""Tests for the MsgBox polling client against a real threaded service."""

import pytest

from repro.errors import MailboxError
from repro.msgbox import MailboxSecurity, MailboxStore, MsgBoxService, MsgBoxClient
from repro.msgbox.service import Q_MAILBOX_ID
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import RequestContext, SoapHttpApp
from repro.util.clock import ManualClock
from repro.workload.echo import make_echo_message
from repro.xmlmini import Element


@pytest.fixture
def served(inproc):
    store = MailboxStore()
    service = MsgBoxService(
        store, security=MailboxSecurity(b"s"), base_url="http://mb:8500/mailbox"
    )
    app = SoapHttpApp()
    app.mount("/mailbox", service)
    server = HttpServer(inproc.listen("mb:8500"), app.handle_request).start()
    client = MsgBoxClient(HttpClient(inproc), "http://mb:8500/mailbox")
    yield store, service, client
    server.stop()


def deposit(service, mailbox_id, tag):
    env = make_echo_message(to="urn:wsd:echo", message_id=f"uuid:{tag}")
    env.headers.append(Element(Q_MAILBOX_ID, text=mailbox_id))
    service.handle(env, RequestContext(path="/mailbox"))


def test_create_stores_credentials(served):
    store, service, client = served
    box = client.create()
    assert client.mailbox_id == box
    assert client.owner_token
    assert store.exists(box)


def test_epr_requires_mailbox(served):
    _, _, client = served
    with pytest.raises(MailboxError):
        client.epr()


def test_epr_points_at_deposit_url(served):
    _, _, client = served
    box = client.create()
    epr = client.epr()
    assert epr.address.endswith(f"/deposit/{box}")
    assert epr.reference_properties[0].text == box


def test_peek_and_take(served):
    store, service, client = served
    box = client.create()
    deposit(service, box, "m1")
    deposit(service, box, "m2")
    assert client.peek() == 2
    messages = client.take(max_messages=1)
    assert len(messages) == 1
    assert client.peek() == 1


def test_poll_collects_expected(served):
    store, service, client = served
    box = client.create()
    deposit(service, box, "m1")
    deposit(service, box, "m2")
    messages = client.poll(expected=2, timeout=2)
    assert len(messages) == 2


def test_poll_times_out_gracefully(served):
    _, _, client = served
    client.create()
    client.clock = ManualClock()  # sleeps advance instantly
    assert client.poll(expected=1, timeout=0.2, interval=0.05) == []


def test_destroy_clears_state(served):
    store, _, client = served
    box = client.create()
    client.destroy()
    assert client.mailbox_id is None
    assert not store.exists(box)


def test_operations_require_mailbox(served):
    _, _, client = served
    with pytest.raises(MailboxError):
        client.peek()


def test_server_fault_wrapped_as_mailbox_error(served):
    _, _, client = served
    client.create()
    client.mailbox_id = "bogus-id"  # breaks the token pairing
    with pytest.raises(MailboxError):
        client.take()

"""Tests for WS-MsgBox acknowledgement delivery paths."""

import threading
import time

import pytest

from repro.msgbox import MailboxStore, MsgBoxService
from repro.msgbox.service import Q_MAILBOX_ID
from repro.rt.service import RequestContext
from repro.workload.echo import make_echo_message
from repro.xmlmini import Element


def deposit(service, box, tag="x"):
    env = make_echo_message(to="urn:x", message_id=f"uuid:{tag}")
    env.headers.append(Element(Q_MAILBOX_ID, text=box))
    service.handle(env, RequestContext(path="/mailbox"))


def wait_stat(service, key, value, timeout=3.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service.stats.get(key, 0) >= value:
            return True
        time.sleep(0.02)
    return False


def test_no_ack_sender_means_no_pool():
    service = MsgBoxService(MailboxStore(), delivery_mode="pooled")
    box = service.store.create()
    deposit(service, box)
    assert "acks_sent" not in service.stats


def test_delivery_mode_none_never_acks():
    called = []
    service = MsgBoxService(
        MailboxStore(), delivery_mode="none", ack_sender=called.append
    )
    box = service.store.create()
    deposit(service, box)
    time.sleep(0.1)
    assert called == []


def test_successful_acks_counted():
    received = []
    service = MsgBoxService(
        MailboxStore(), delivery_mode="pooled", ack_sender=received.append
    )
    box = service.store.create()
    for i in range(3):
        deposit(service, box, str(i))
    assert wait_stat(service, "acks_sent", 3)
    assert len(received) == 3
    # the ack payload is the deposited envelope's wire bytes
    assert all(data.startswith(b"<?xml") for data in received)


def test_failing_acks_counted_not_fatal():
    def exploding(data):
        raise ConnectionError("reply path down")

    service = MsgBoxService(
        MailboxStore(), delivery_mode="pooled", ack_sender=exploding
    )
    box = service.store.create()
    for i in range(3):
        deposit(service, box, str(i))
    assert wait_stat(service, "acks_failed", 3)
    assert not service.dead
    # deposits themselves all succeeded
    assert service.stats["deposits"] == 3


def test_pooled_sheds_when_saturated():
    release = threading.Event()
    service = MsgBoxService(
        MailboxStore(),
        delivery_mode="pooled",
        ack_sender=lambda data: release.wait(5),
        ack_workers=1,
    )
    box = service.store.create()
    # 1 worker + queue of 4: the rest must be shed, not block deposits
    for i in range(12):
        deposit(service, box, str(i))
    assert service.stats["deposits"] == 12
    assert service.stats.get("acks_shed", 0) >= 1
    release.set()

"""Tests for WS-MsgBox long polling."""

import threading
import time

import pytest

from repro.errors import MailboxNotFound
from repro.msgbox import MailboxStore
from repro.msgbox.service import Q_MAILBOX_ID
from repro.rt.service import RequestContext
from repro.workload.echo import make_echo_message
from repro.xmlmini import Element


class TestStoreWait:
    def test_returns_immediately_when_message_present(self):
        store = MailboxStore()
        box = store.create()
        store.deposit(box, b"x")
        t0 = time.monotonic()
        assert store.wait_for_message(box, timeout=5.0) is True
        assert time.monotonic() - t0 < 0.1

    def test_times_out_when_empty(self):
        store = MailboxStore()
        box = store.create()
        t0 = time.monotonic()
        assert store.wait_for_message(box, timeout=0.2) is False
        assert 0.15 <= time.monotonic() - t0 < 1.0

    def test_wakes_on_deposit_from_other_thread(self):
        store = MailboxStore()
        box = store.create()
        woke_at = []

        def waiter():
            if store.wait_for_message(box, timeout=5.0):
                woke_at.append(time.monotonic())

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.1)
        deposited_at = time.monotonic()
        store.deposit(box, b"wake up")
        t.join(2)
        assert woke_at and woke_at[0] - deposited_at < 0.5

    def test_missing_mailbox_raises(self):
        with pytest.raises(MailboxNotFound):
            MailboxStore().wait_for_message("nope", timeout=0.1)


class TestServiceLongPoll:
    """The same long-poll contract, asserted against both runtimes: the
    threaded server parks a worker thread, the aio server parks a
    coroutine — the client must not be able to tell the difference."""

    @pytest.fixture
    def served(self, msgbox_backend):
        yield msgbox_backend.serve()

    def deposit_later(self, service, mailbox_id, delay):
        def run():
            time.sleep(delay)
            env = make_echo_message(to="urn:x", message_id=f"uuid:lp-{delay}")
            env.headers.append(Element(Q_MAILBOX_ID, text=mailbox_id))
            service.handle(env, RequestContext(path="/mailbox"))

        threading.Thread(target=run, daemon=True).start()

    def test_long_poll_returns_early_on_arrival(self, served):
        store, service, client = served
        box = client.create()
        self.deposit_later(service, box, delay=0.15)
        t0 = time.monotonic()
        messages = client.take(wait=5.0)
        elapsed = time.monotonic() - t0
        assert len(messages) == 1
        assert elapsed < 2.0  # woke on arrival, not at the wait cap

    def test_long_poll_times_out_empty(self, served):
        store, service, client = served
        client.create()
        t0 = time.monotonic()
        assert client.take(wait=0.3) == []
        assert time.monotonic() - t0 >= 0.25

    def test_wait_capped_by_service_limit(self, served):
        store, service, client = served
        service.max_wait_seconds = 0.2
        client.create()
        t0 = time.monotonic()
        assert client.take(wait=60.0) == []
        assert time.monotonic() - t0 < 2.0

    def test_long_poll_beats_short_polling_on_requests(self, served):
        """One long poll replaces a burst of empty short polls."""
        store, service, client = served
        box = client.create()
        baseline = service.stats.get("takes", 0)

        # short-poll client: hammers take() until the message shows up
        self.deposit_later(service, box, delay=0.4)
        while not client.take():
            time.sleep(0.02)
        short_poll_takes = service.stats.get("takes", 0) - baseline

        self.deposit_later(service, box, delay=0.4)
        got = client.take(wait=5.0)
        long_poll_takes = service.stats.get("takes", 0) - baseline - short_poll_takes
        assert got
        assert long_poll_takes == 1
        assert short_poll_takes > 3

"""Tests for mailbox storage."""

import pytest

from repro.errors import MailboxNotFound, MailboxQuotaExceeded
from repro.msgbox.store import MailboxStore
from repro.util.clock import ManualClock
from repro.util.ids import IdGenerator


@pytest.fixture
def store():
    return MailboxStore(ids=IdGenerator("test", seed=1))


class TestLifecycle:
    def test_create_returns_unguessable_id(self, store):
        a = store.create()
        b = store.create()
        assert a != b
        assert len(a) == 32  # 128 bits of hex

    def test_destroy(self, store):
        box = store.create()
        store.destroy(box)
        assert not store.exists(box)
        with pytest.raises(MailboxNotFound):
            store.destroy(box)

    def test_mailbox_limit(self):
        store = MailboxStore(max_mailboxes=2)
        store.create()
        store.create()
        with pytest.raises(MailboxQuotaExceeded):
            store.create()

    def test_mailbox_count(self, store):
        assert store.mailbox_count() == 0
        store.create()
        assert store.mailbox_count() == 1


class TestDepositTake:
    def test_fifo_order(self, store):
        box = store.create()
        for i in range(3):
            store.deposit(box, b"msg%d" % i)
        assert store.take(box, max_messages=10) == [b"msg0", b"msg1", b"msg2"]

    def test_take_respects_limit(self, store):
        box = store.create()
        for i in range(5):
            store.deposit(box, b"%d" % i)
        assert store.take(box, max_messages=2) == [b"0", b"1"]
        assert store.peek_count(box) == 3

    def test_take_requires_positive_limit(self, store):
        box = store.create()
        with pytest.raises(ValueError):
            store.take(box, max_messages=0)

    def test_deposit_to_missing_box(self, store):
        with pytest.raises(MailboxNotFound):
            store.deposit("nope", b"x")

    def test_take_from_missing_box(self, store):
        with pytest.raises(MailboxNotFound):
            store.take("nope")

    def test_message_quota(self):
        store = MailboxStore(max_messages_per_box=2)
        box = store.create()
        store.deposit(box, b"1")
        store.deposit(box, b"2")
        with pytest.raises(MailboxQuotaExceeded):
            store.deposit(box, b"3")

    def test_byte_quota(self):
        store = MailboxStore(max_bytes_per_box=10)
        box = store.create()
        store.deposit(box, b"x" * 10)
        with pytest.raises(MailboxQuotaExceeded):
            store.deposit(box, b"y")

    def test_take_frees_byte_quota(self):
        store = MailboxStore(max_bytes_per_box=10)
        box = store.create()
        store.deposit(box, b"x" * 10)
        store.take(box)
        store.deposit(box, b"y" * 10)  # fits again

    def test_total_bytes(self, store):
        a = store.create()
        b = store.create()
        store.deposit(a, b"12345")
        store.deposit(b, b"123")
        assert store.total_bytes() == 8


class TestExpiry:
    def test_expired_messages_dropped(self):
        clock = ManualClock()
        store = MailboxStore(message_ttl=10.0, clock=clock)
        box = store.create()
        store.deposit(box, b"old")
        clock.advance(11.0)
        store.deposit(box, b"new")
        assert store.take(box) == [b"new"]

    def test_peek_count_applies_expiry(self):
        clock = ManualClock()
        store = MailboxStore(message_ttl=5.0, clock=clock)
        box = store.create()
        store.deposit(box, b"x")
        assert store.peek_count(box) == 1
        clock.advance(6.0)
        assert store.peek_count(box) == 0

    def test_no_ttl_means_no_expiry(self):
        clock = ManualClock()
        store = MailboxStore(clock=clock)
        box = store.create()
        store.deposit(box, b"x")
        clock.advance(1e9)
        assert store.peek_count(box) == 1


class TestStats:
    def test_per_box_stats(self, store):
        box = store.create()
        store.deposit(box, b"abc")
        store.take(box)
        stats = store.stats(box)
        assert stats == {"pending": 0, "bytes": 0, "deposits": 1, "takes": 1}

    def test_stats_missing_box(self, store):
        with pytest.raises(MailboxNotFound):
            store.stats("nope")

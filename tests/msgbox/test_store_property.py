"""Property-based tests of mailbox-store invariants."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

import pytest

from repro.errors import MailboxNotFound, MailboxQuotaExceeded
from repro.msgbox.store import MailboxStore
from repro.util.ids import IdGenerator

_payload = st.binary(min_size=1, max_size=64)


@given(st.lists(_payload, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_deposit_take_preserves_order_and_content(payloads):
    store = MailboxStore(
        max_messages_per_box=1000, ids=IdGenerator("prop", seed=1)
    )
    box = store.create()
    for payload in payloads:
        store.deposit(box, payload)
    taken: list[bytes] = []
    while True:
        batch = store.take(box, max_messages=7)
        if not batch:
            break
        taken.extend(batch)
    assert taken == payloads


@given(st.lists(_payload, min_size=1, max_size=30), st.integers(1, 10))
@settings(max_examples=100, deadline=None)
def test_byte_accounting_is_exact(payloads, take_size):
    store = MailboxStore(ids=IdGenerator("prop", seed=2))
    box = store.create()
    expected = 0
    for payload in payloads:
        store.deposit(box, payload)
        expected += len(payload)
        assert store.total_bytes() == expected
    while store.peek_count(box):
        for taken in store.take(box, max_messages=take_size):
            expected -= len(taken)
        assert store.total_bytes() == expected
    assert store.total_bytes() == 0


class MailboxMachine(RuleBasedStateMachine):
    """Stateful test: the store mirrors a model dict of deques exactly."""

    def __init__(self):
        super().__init__()
        self.store = MailboxStore(
            max_mailboxes=10,
            max_messages_per_box=20,
            max_bytes_per_box=1024,
            ids=IdGenerator("machine", seed=3),
        )
        self.model: dict[str, list[bytes]] = {}

    @rule()
    def create(self):
        if len(self.model) >= 10:
            with pytest.raises(MailboxQuotaExceeded):
                self.store.create()
        else:
            box = self.store.create()
            assert box not in self.model
            self.model[box] = []

    @precondition(lambda self: self.model)
    @rule(payload=_payload, box_idx=st.integers(0, 9))
    def deposit(self, payload, box_idx):
        box = sorted(self.model)[box_idx % len(self.model)]
        messages = self.model[box]
        over_count = len(messages) >= 20
        over_bytes = sum(map(len, messages)) + len(payload) > 1024
        if over_count or over_bytes:
            with pytest.raises(MailboxQuotaExceeded):
                self.store.deposit(box, payload)
        else:
            self.store.deposit(box, payload)
            messages.append(payload)

    @precondition(lambda self: self.model)
    @rule(box_idx=st.integers(0, 9), count=st.integers(1, 5))
    def take(self, box_idx, count):
        box = sorted(self.model)[box_idx % len(self.model)]
        taken = self.store.take(box, max_messages=count)
        expected, self.model[box] = (
            self.model[box][:count],
            self.model[box][count:],
        )
        assert taken == expected

    @precondition(lambda self: self.model)
    @rule(box_idx=st.integers(0, 9))
    def destroy(self, box_idx):
        box = sorted(self.model)[box_idx % len(self.model)]
        self.store.destroy(box)
        del self.model[box]
        with pytest.raises(MailboxNotFound):
            self.store.peek_count(box)

    @invariant()
    def counts_match_model(self):
        assert self.store.mailbox_count() == len(self.model)
        for box, messages in self.model.items():
            assert self.store.peek_count(box) == len(messages)
        assert self.store.total_bytes() == sum(
            len(p) for msgs in self.model.values() for p in msgs
        )


TestMailboxMachine = MailboxMachine.TestCase
TestMailboxMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)

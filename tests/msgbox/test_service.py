"""Tests for the WS-MsgBox SOAP service (including the paper's bug)."""

import base64
import time

import pytest

from repro.errors import MailboxAuthError, MailboxError, MailboxNotFound
from repro.msgbox.security import MailboxSecurity
from repro.msgbox.service import (
    MSGBOX_NS,
    MsgBoxService,
    Q_MAILBOX_ID,
    SimulatedOutOfMemory,
    make_mailbox_epr,
)
from repro.msgbox.store import MailboxStore
from repro.rt.service import RequestContext
from repro.soap import Envelope, RpcRequest, build_rpc_request, parse_rpc_response
from repro.workload.echo import make_echo_message
from repro.xmlmini import Element


def rpc(service, op, params):
    env = build_rpc_request(RpcRequest(MSGBOX_NS, op, params))
    reply = service.handle(env, RequestContext(path="/mailbox"))
    return parse_rpc_response(reply)


def deposit_via_header(service, mailbox_id, tag="x"):
    env = make_echo_message(to="urn:wsd:echo", message_id=f"uuid:{tag}")
    env.headers.append(Element(Q_MAILBOX_ID, text=mailbox_id))
    return service.handle(env, RequestContext(path="/mailbox"))


class TestRpcOperations:
    def test_create_take_destroy_cycle(self):
        svc = MsgBoxService(MailboxStore())
        created = rpc(svc, "create", [])
        box = created.result("mailboxId")
        assert box

        deposit_via_header(svc, box)
        took = rpc(svc, "take", [("mailboxId", box)])
        messages = [v for k, v in took.results if k == "message"]
        assert len(messages) == 1
        inner = Envelope.from_bytes(base64.b64decode(messages[0]))
        assert inner.body is not None
        assert took.result("remaining") == "0"

        rpc(svc, "destroy", [("mailboxId", box)])
        with pytest.raises(MailboxNotFound):
            rpc(svc, "peek", [("mailboxId", box)])

    def test_peek(self):
        svc = MsgBoxService(MailboxStore())
        box = rpc(svc, "create", []).result("mailboxId")
        deposit_via_header(svc, box, "a")
        deposit_via_header(svc, box, "b")
        assert rpc(svc, "peek", [("mailboxId", box)]).result("count") == "2"

    def test_take_max_messages(self):
        svc = MsgBoxService(MailboxStore())
        box = rpc(svc, "create", []).result("mailboxId")
        for i in range(5):
            deposit_via_header(svc, box, str(i))
        took = rpc(svc, "take", [("mailboxId", box), ("maxMessages", "2")])
        assert len([1 for k, _ in took.results if k == "message"]) == 2
        assert took.result("remaining") == "3"

    def test_unknown_operation(self):
        svc = MsgBoxService(MailboxStore())
        from repro.errors import SoapError

        with pytest.raises(SoapError):
            rpc(svc, "explode", [])

    def test_create_returns_deposit_address(self):
        svc = MsgBoxService(MailboxStore(), base_url="http://mb:8500/mailbox")
        created = rpc(svc, "create", [])
        addr = created.result("depositAddress")
        assert addr.startswith("http://mb:8500/mailbox/deposit/")


class TestSecurity:
    def make(self):
        return MsgBoxService(MailboxStore(), security=MailboxSecurity(b"k"))

    def test_create_returns_owner_token(self):
        svc = self.make()
        created = rpc(svc, "create", [])
        assert created.result("ownerToken")

    def test_take_requires_token(self):
        svc = self.make()
        created = rpc(svc, "create", [])
        box = created.result("mailboxId")
        with pytest.raises(MailboxAuthError):
            rpc(svc, "take", [("mailboxId", box)])

    def test_take_with_token(self):
        svc = self.make()
        created = rpc(svc, "create", [])
        box = created.result("mailboxId")
        token = created.result("ownerToken")
        took = rpc(svc, "take", [("mailboxId", box), ("ownerToken", token)])
        assert took.result("remaining") == "0"

    def test_wrong_token_rejected(self):
        svc = self.make()
        created = rpc(svc, "create", [])
        box = created.result("mailboxId")
        with pytest.raises(MailboxAuthError):
            rpc(svc, "destroy", [("mailboxId", box), ("ownerToken", "ff" * 32)])

    def test_deposit_needs_no_token(self):
        svc = self.make()
        box = rpc(svc, "create", []).result("mailboxId")
        deposit_via_header(svc, box)  # no error

    def test_disabled_security_skips_checks(self):
        svc = MsgBoxService(
            MailboxStore(), security=MailboxSecurity(b"k", enabled=False)
        )
        box = rpc(svc, "create", []).result("mailboxId")
        rpc(svc, "take", [("mailboxId", box)])  # no token, no error


class TestDeposits:
    def test_deposit_via_path(self):
        store = MailboxStore()
        svc = MsgBoxService(store)
        box = store.create()
        env = make_echo_message(to="urn:wsd:echo", message_id="uuid:1")
        ctx = RequestContext(path=f"/mailbox/deposit/{box}")
        assert svc.handle(env, ctx) is None
        assert store.peek_count(box) == 1

    def test_deposit_header_takes_precedence(self):
        store = MailboxStore()
        svc = MsgBoxService(store)
        box_a, box_b = store.create(), store.create()
        env = make_echo_message(to="urn:wsd:echo", message_id="uuid:1")
        env.headers.append(Element(Q_MAILBOX_ID, text=box_a))
        svc.handle(env, RequestContext(path=f"/mailbox/deposit/{box_b}"))
        assert store.peek_count(box_a) == 1
        assert store.peek_count(box_b) == 0

    def test_deposit_without_id_rejected(self):
        svc = MsgBoxService(MailboxStore())
        env = make_echo_message(to="urn:wsd:echo", message_id="uuid:1")
        with pytest.raises(MailboxNotFound):
            svc.handle(env, RequestContext(path="/mailbox"))

    def test_deposit_stored_verbatim(self):
        store = MailboxStore()
        svc = MsgBoxService(store)
        box = store.create()
        env = make_echo_message(to="urn:wsd:echo", message_id="uuid:42")
        env.headers.append(Element(Q_MAILBOX_ID, text=box))
        svc.handle(env, RequestContext(path="/mailbox"))
        stored = store.take(box)[0]
        assert Envelope.from_bytes(stored).body == env.body


class TestMakeMailboxEpr:
    def test_epr_shape(self):
        epr = make_mailbox_epr("http://mb:8500/mailbox", "abc")
        assert epr.address == "http://mb:8500/mailbox/deposit/abc"
        assert epr.reference_properties[0].name == Q_MAILBOX_ID
        assert epr.reference_properties[0].text == "abc"


class TestThreadExplosionBug:
    """Paper §4.3.2: thread-per-message delivery dies with OOM."""

    def make_buggy(self, heap_threads=4):
        return MsgBoxService(
            MailboxStore(),
            delivery_mode="thread-per-message",
            ack_sender=lambda data: time.sleep(0.3),
            heap_limit_bytes=heap_threads * 512 * 1024,
            thread_stack_bytes=512 * 1024,
        )

    def test_oom_under_burst(self):
        svc = self.make_buggy(heap_threads=4)
        box = svc.store.create()
        with pytest.raises(SimulatedOutOfMemory):
            for i in range(20):
                deposit_via_header(svc, box, str(i))
        assert svc.dead

    def test_dead_service_rejects_everything(self):
        svc = self.make_buggy(heap_threads=1)
        box = svc.store.create()
        with pytest.raises(SimulatedOutOfMemory):
            for i in range(5):
                deposit_via_header(svc, box, str(i))
        with pytest.raises(MailboxError):
            rpc(svc, "create", [])

    def test_pooled_mode_survives_same_burst(self):
        svc = MsgBoxService(
            MailboxStore(),
            delivery_mode="pooled",
            ack_sender=lambda data: time.sleep(0.05),
            ack_workers=2,
            heap_limit_bytes=2 * 512 * 1024,
        )
        box = svc.store.create()
        for i in range(30):
            deposit_via_header(svc, box, str(i))
        assert not svc.dead
        assert svc.stats["deposits"] == 30
        # shed acks are counted, not fatal
        assert svc.stats.get("acks_shed", 0) + svc.stats.get("acks_sent", 0) > 0

    def test_invalid_delivery_mode(self):
        with pytest.raises(ValueError):
            MsgBoxService(MailboxStore(), delivery_mode="wat")

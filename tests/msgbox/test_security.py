"""Tests for mailbox owner tokens."""

import pytest

from repro.errors import MailboxAuthError
from repro.msgbox.security import MailboxSecurity


def test_mint_is_deterministic_per_box():
    sec = MailboxSecurity(b"secret")
    assert sec.mint("box1") == sec.mint("box1")
    assert sec.mint("box1") != sec.mint("box2")


def test_check_accepts_valid_token():
    sec = MailboxSecurity(b"secret")
    sec.check("box1", sec.mint("box1"))


def test_check_rejects_missing_token():
    sec = MailboxSecurity(b"secret")
    with pytest.raises(MailboxAuthError):
        sec.check("box1", None)
    with pytest.raises(MailboxAuthError):
        sec.check("box1", "")


def test_check_rejects_wrong_token():
    sec = MailboxSecurity(b"secret")
    with pytest.raises(MailboxAuthError):
        sec.check("box1", sec.mint("box2"))


def test_different_secrets_incompatible():
    a = MailboxSecurity(b"one")
    b = MailboxSecurity(b"two")
    with pytest.raises(MailboxAuthError):
        b.check("box", a.mint("box"))


def test_disabled_allows_anything():
    sec = MailboxSecurity(b"secret", enabled=False)
    sec.check("box1", None)
    sec.check("box1", "rubbish")


def test_empty_secret_rejected():
    with pytest.raises(ValueError):
        MailboxSecurity(b"")

"""Tests for the dispatcher's WS-Addressing rewrite rules."""

import pytest

from repro.errors import AddressingError
from repro.soap import Envelope
from repro.wsa import (
    AddressingHeaders,
    EndpointReference,
    make_reply_headers,
    relates_to_of,
    rewrite_for_forwarding,
)
from repro.xmlmini import Element, QName

DISPATCHER = "http://wsd:8000/msg"
PHYSICAL = "http://inside:9000/echo"


def make_message(reply_to=None, fault_to=None, message_id="uuid:m1"):
    hdr = AddressingHeaders(
        to="urn:wsd:echo",
        action="urn:echo/echo",
        message_id=message_id,
        reply_to=reply_to,
        fault_to=fault_to,
    )
    return Envelope(Element(QName("urn:echo", "echo"), text="hi"),
                    headers=hdr.to_header_elements())


class TestRewriteForForwarding:
    def test_to_is_retargeted(self):
        result = rewrite_for_forwarding(make_message(), PHYSICAL, DISPATCHER)
        out = AddressingHeaders.from_envelope(result.envelope)
        assert out.to == PHYSICAL
        assert result.physical_to == PHYSICAL

    def test_reply_to_points_at_dispatcher(self):
        original = EndpointReference("http://client:7/reply")
        result = rewrite_for_forwarding(make_message(original), PHYSICAL, DISPATCHER)
        out = AddressingHeaders.from_envelope(result.envelope)
        assert out.reply_to.address == DISPATCHER
        assert result.original_reply_to.address == "http://client:7/reply"

    def test_absent_reply_to_still_rewritten_for_service(self):
        result = rewrite_for_forwarding(make_message(), PHYSICAL, DISPATCHER)
        out = AddressingHeaders.from_envelope(result.envelope)
        assert out.reply_to.address == DISPATCHER
        assert result.original_reply_to is None

    def test_fault_to_rewritten_only_when_present(self):
        result = rewrite_for_forwarding(make_message(), PHYSICAL, DISPATCHER)
        assert AddressingHeaders.from_envelope(result.envelope).fault_to is None
        with_fault = make_message(fault_to=EndpointReference("http://client/faults"))
        result = rewrite_for_forwarding(with_fault, PHYSICAL, DISPATCHER)
        out = AddressingHeaders.from_envelope(result.envelope)
        assert out.fault_to.address == DISPATCHER
        assert result.original_fault_to.address == "http://client/faults"

    def test_message_id_preserved(self):
        result = rewrite_for_forwarding(make_message(), PHYSICAL, DISPATCHER)
        out = AddressingHeaders.from_envelope(result.envelope)
        assert out.message_id == "uuid:m1"
        assert result.message_id == "uuid:m1"

    def test_input_envelope_not_mutated(self):
        env = make_message(EndpointReference("http://client/r"))
        before = env.to_bytes()
        rewrite_for_forwarding(env, PHYSICAL, DISPATCHER)
        assert env.to_bytes() == before

    def test_body_untouched(self):
        env = make_message()
        result = rewrite_for_forwarding(env, PHYSICAL, DISPATCHER)
        assert result.envelope.body == env.body

    def test_requires_message_id(self):
        env = make_message(message_id="uuid:x")
        hdr = AddressingHeaders.from_envelope(env)
        hdr.message_id = None
        hdr.attach(env)
        with pytest.raises(AddressingError):
            rewrite_for_forwarding(env, PHYSICAL, DISPATCHER)

    def test_requires_to(self):
        env = Envelope(Element(QName("urn:echo", "echo")))
        AddressingHeaders(message_id="uuid:1").attach(env)
        with pytest.raises(AddressingError):
            rewrite_for_forwarding(env, PHYSICAL, DISPATCHER)

    def test_passthrough_prefix_keeps_reply_to(self):
        mailbox = EndpointReference("http://wsd:8500/mailbox/deposit/abc")
        env = make_message(mailbox)
        result = rewrite_for_forwarding(
            env, PHYSICAL, DISPATCHER,
            passthrough_reply_prefixes=("http://wsd:8500/mailbox",),
        )
        out = AddressingHeaders.from_envelope(result.envelope)
        assert out.reply_to.address == mailbox.address
        # correlation info is still returned for in-band translation
        assert result.original_reply_to.address == mailbox.address

    def test_non_matching_prefix_still_rewritten(self):
        env = make_message(EndpointReference("http://elsewhere/reply"))
        result = rewrite_for_forwarding(
            env, PHYSICAL, DISPATCHER,
            passthrough_reply_prefixes=("http://wsd:8500/mailbox",),
        )
        out = AddressingHeaders.from_envelope(result.envelope)
        assert out.reply_to.address == DISPATCHER


class TestMakeReplyHeaders:
    def request_headers(self, reply_to=None):
        return AddressingHeaders(
            to="http://svc/",
            action="urn:echo/echo",
            message_id="uuid:req",
            reply_to=reply_to,
        )

    def test_reply_targets_reply_to(self):
        req = self.request_headers(EndpointReference("http://client/r"))
        reply = make_reply_headers(req, "uuid:resp")
        assert reply.to == "http://client/r"
        assert reply.relates_to == ["uuid:req"]
        assert reply.message_id == "uuid:resp"
        assert reply.action == "urn:echo/echoResponse"

    def test_defaults_to_anonymous(self):
        reply = make_reply_headers(self.request_headers(), "uuid:resp")
        assert reply.to == EndpointReference.anonymous().address

    def test_reference_properties_echoed_as_headers(self):
        prop = Element(QName("urn:mb", "MailboxId"), text="b1")
        req = self.request_headers(EndpointReference("http://mb/", [prop]))
        reply = make_reply_headers(req, "uuid:resp")
        assert reply.reference_headers == [prop]

    def test_requires_request_message_id(self):
        req = self.request_headers()
        req.message_id = None
        with pytest.raises(AddressingError):
            make_reply_headers(req, "uuid:resp")


def test_relates_to_of():
    env = make_message()
    hdr = AddressingHeaders.from_envelope(env)
    hdr.relates_to = ["uuid:a", "uuid:b"]
    hdr.attach(env)
    assert relates_to_of(env) == ["uuid:a", "uuid:b"]

"""Tests for endpoint references."""

import pytest

from repro.errors import AddressingError
from repro.wsa import WSA_ANONYMOUS, WSA_NS, EndpointReference
from repro.xmlmini import Element, QName, parse, serialize


def test_address_required():
    with pytest.raises(AddressingError):
        EndpointReference("")


def test_anonymous():
    epr = EndpointReference.anonymous()
    assert epr.is_anonymous
    assert epr.address == WSA_ANONYMOUS
    assert not EndpointReference("http://x/").is_anonymous


def test_to_element_shape():
    epr = EndpointReference("http://host/svc")
    el = epr.to_element(QName(WSA_NS, "ReplyTo"))
    assert el.name == QName(WSA_NS, "ReplyTo")
    assert el.require(QName(WSA_NS, "Address")).text == "http://host/svc"
    assert el.find(QName(WSA_NS, "ReferenceProperties")) is None


def test_reference_properties_roundtrip():
    prop = Element(QName("urn:mb", "MailboxId"), text="abc123")
    epr = EndpointReference("http://host/mb", reference_properties=[prop])
    el = epr.to_element(QName(WSA_NS, "ReplyTo"))
    parsed = EndpointReference.from_element(parse(serialize(el)))
    assert parsed.address == "http://host/mb"
    assert parsed.reference_properties == [prop]


def test_from_element_requires_address():
    el = Element(QName(WSA_NS, "ReplyTo"))
    with pytest.raises(AddressingError):
        EndpointReference.from_element(el)


def test_from_element_rejects_empty_address():
    el = Element(QName(WSA_NS, "ReplyTo"))
    el.add(Element(QName(WSA_NS, "Address"), text="   "))
    with pytest.raises(AddressingError):
        EndpointReference.from_element(el)


def test_address_whitespace_trimmed():
    el = Element(QName(WSA_NS, "ReplyTo"))
    el.add(Element(QName(WSA_NS, "Address"), text="  http://x/  "))
    assert EndpointReference.from_element(el).address == "http://x/"


def test_copy_is_deep():
    prop = Element(QName("urn:mb", "MailboxId"), text="abc")
    epr = EndpointReference("http://x/", [prop])
    dup = epr.copy()
    dup.reference_properties[0].children[0] = "changed"
    assert epr.reference_properties[0].text == "abc"

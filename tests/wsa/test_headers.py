"""Tests for the WS-Addressing header block."""

import pytest

from repro.errors import AddressingError
from repro.soap import Envelope
from repro.wsa import WSA_NS, AddressingHeaders, EndpointReference
from repro.xmlmini import Element, QName


def body():
    return Element(QName("urn:t", "op"))


def full_headers() -> AddressingHeaders:
    return AddressingHeaders(
        to="http://dest/svc",
        action="urn:t/op",
        message_id="uuid:m1",
        relates_to=["uuid:m0"],
        from_=EndpointReference("http://src/"),
        reply_to=EndpointReference("http://reply/"),
        fault_to=EndpointReference("http://fault/"),
    )


def test_roundtrip_through_envelope():
    hdr = full_headers()
    env = Envelope(body(), headers=hdr.to_header_elements())
    parsed = AddressingHeaders.from_envelope(
        Envelope.from_bytes(env.to_bytes())
    )
    assert parsed.to == hdr.to
    assert parsed.action == hdr.action
    assert parsed.message_id == hdr.message_id
    assert parsed.relates_to == hdr.relates_to
    assert parsed.from_.address == "http://src/"
    assert parsed.reply_to.address == "http://reply/"
    assert parsed.fault_to.address == "http://fault/"


def test_empty_envelope_gives_empty_headers():
    hdr = AddressingHeaders.from_envelope(Envelope(body()))
    assert hdr.to is None and hdr.message_id is None
    assert hdr.relates_to == []


def test_attach_replaces_existing_wsa_headers():
    env = Envelope(body())
    AddressingHeaders(to="http://first/", message_id="uuid:1").attach(env)
    AddressingHeaders(to="http://second/", message_id="uuid:2").attach(env)
    parsed = AddressingHeaders.from_envelope(env)
    assert parsed.to == "http://second/"
    assert parsed.message_id == "uuid:2"


def test_attach_preserves_foreign_headers():
    env = Envelope(body(), headers=[Element(QName("urn:other", "Keep"))])
    AddressingHeaders(to="http://x/").attach(env)
    assert env.find_header(QName("urn:other", "Keep")) is not None


def test_duplicate_to_rejected():
    env = Envelope(
        body(),
        headers=[
            Element(QName(WSA_NS, "To"), text="a"),
            Element(QName(WSA_NS, "To"), text="b"),
        ],
    )
    with pytest.raises(AddressingError):
        AddressingHeaders.from_envelope(env)


def test_duplicate_reply_to_rejected():
    epr = EndpointReference("http://r/")
    env = Envelope(
        body(),
        headers=[
            epr.to_element(QName(WSA_NS, "ReplyTo")),
            epr.to_element(QName(WSA_NS, "ReplyTo")),
        ],
    )
    with pytest.raises(AddressingError):
        AddressingHeaders.from_envelope(env)


def test_multiple_relates_to_allowed():
    env = Envelope(
        body(),
        headers=[
            Element(QName(WSA_NS, "RelatesTo"), text="uuid:1"),
            Element(QName(WSA_NS, "RelatesTo"), text="uuid:2"),
        ],
    )
    assert AddressingHeaders.from_envelope(env).relates_to == ["uuid:1", "uuid:2"]


def test_unknown_wsa_header_rejected():
    env = Envelope(body(), headers=[Element(QName(WSA_NS, "Bogus"))])
    with pytest.raises(AddressingError):
        AddressingHeaders.from_envelope(env)


def test_require_helpers():
    hdr = AddressingHeaders()
    with pytest.raises(AddressingError):
        hdr.require_to()
    with pytest.raises(AddressingError):
        hdr.require_message_id()
    hdr.to = "http://x/"
    hdr.message_id = "uuid:1"
    assert hdr.require_to() == "http://x/"
    assert hdr.require_message_id() == "uuid:1"


def test_reference_headers_attached_verbatim():
    ref = Element(QName("urn:mb", "MailboxId"), text="box-1")
    hdr = AddressingHeaders(to="http://mb/", reference_headers=[ref])
    env = Envelope(body())
    hdr.attach(env)
    assert env.find_header(QName("urn:mb", "MailboxId")).text == "box-1"


def test_copy_is_deep():
    hdr = full_headers()
    dup = hdr.copy()
    dup.relates_to.append("uuid:extra")
    dup.reply_to.address = "http://other/"
    assert hdr.relates_to == ["uuid:m0"]
    assert hdr.reply_to.address == "http://reply/"

"""The client's Retry-After handling on 503 overload responses."""

import threading

import pytest

from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.metrics import MetricsRegistry
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer


class _Overloaded:
    """Answers 503 + Retry-After for the first ``reject`` requests."""

    def __init__(self, reject: int, retry_after: str = "0.05"):
        self.reject = reject
        self.retry_after = retry_after
        self.requests = 0
        self.lock = threading.Lock()

    def handler(self, request: HttpRequest, peer=None) -> HttpResponse:
        with self.lock:
            self.requests += 1
            n = self.requests
        if n <= self.reject:
            headers = Headers()
            if self.retry_after is not None:
                headers.set("Retry-After", self.retry_after)
            return HttpResponse(status=503, headers=headers, body=b"busy")
        return HttpResponse(status=202)


@pytest.fixture
def serve(inproc):
    servers = []

    def _serve(service: _Overloaded) -> str:
        srv = HttpServer(
            inproc.listen(f"busy{len(servers)}:80"), service.handler, workers=2
        ).start()
        servers.append(srv)
        return f"http://busy{len(servers) - 1}:80/msg"

    yield _serve
    for srv in servers:
        srv.stop()


def test_503_with_retry_after_is_slept_out_and_resent(inproc, serve):
    service = _Overloaded(reject=2)
    url = serve(service)
    metrics = MetricsRegistry()
    client = HttpClient(inproc, metrics=metrics, overload_retries=3)
    resp = client.request(url, HttpRequest("POST", "/", body=b"x"))
    assert resp.status == 202
    assert service.requests == 3
    sample = metrics.snapshot()["rt_client_overload_waits_total"]["samples"]
    assert sample[0]["value"] == 2
    client.close()


def test_default_client_returns_503_untouched(inproc, serve):
    url = serve(_Overloaded(reject=1))
    client = HttpClient(inproc)  # overload_retries defaults to 0
    resp = client.request(url, HttpRequest("POST", "/", body=b"x"))
    assert resp.status == 503
    client.close()


def test_503_without_retry_after_is_not_retried(inproc, serve):
    service = _Overloaded(reject=5, retry_after=None)
    url = serve(service)
    client = HttpClient(inproc, overload_retries=3)
    resp = client.request(url, HttpRequest("POST", "/", body=b"x"))
    assert resp.status == 503
    assert service.requests == 1  # no header, no license to resend
    client.close()


def test_retries_exhausted_returns_final_503(inproc, serve):
    service = _Overloaded(reject=10)
    url = serve(service)
    client = HttpClient(inproc, overload_retries=2)
    resp = client.request(url, HttpRequest("POST", "/", body=b"x"))
    assert resp.status == 503
    assert service.requests == 3  # initial + 2 retries
    client.close()


@pytest.mark.parametrize(
    "raw,expected",
    [("2", 2.0), ("0.5", 0.5), (" 3 ", 3.0), ("-1", None),
     ("soon", None), (None, None)],
)
def test_retry_after_parsing(raw, expected):
    headers = Headers()
    if raw is not None:
        headers.set("Retry-After", raw)
    response = HttpResponse(status=503, headers=headers)
    assert HttpClient._retry_after_of(response) == expected

"""Tests for the threaded HTTP server and pooling client."""

import threading
import time

import pytest

from repro.errors import ConnectionRefused, TransportError
from repro.http import Headers, HttpRequest, HttpResponse
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer


@pytest.fixture
def echo_server(inproc):
    def handler(request: HttpRequest, peer=None) -> HttpResponse:
        if request.target == "/slow":
            time.sleep(0.2)
        if request.target == "/close":
            resp = HttpResponse(200, body=request.body)
            resp.headers.set("Connection", "close")
            return resp
        return HttpResponse(200, body=request.body or request.target.encode())

    # workers >= max parallel connections in these tests: one worker stays
    # bound to each keep-alive connection (the 2005 servlet-container model)
    server = HttpServer(inproc.listen("srv:80"), handler, workers=16)
    server.start()
    yield server
    server.stop()


def test_get_roundtrip(inproc, echo_server):
    client = HttpClient(inproc)
    resp = client.request("http://srv:80/hello", HttpRequest("GET", "/"))
    assert resp.status == 200
    assert resp.body == b"/hello"
    client.close()


def test_post_body_echoed(inproc, echo_server):
    client = HttpClient(inproc)
    resp = client.request(
        "http://srv:80/echo", HttpRequest("POST", "/", body=b"data")
    )
    assert resp.body == b"data"
    client.close()


def test_connection_reused_for_keep_alive(inproc, echo_server):
    client = HttpClient(inproc)
    for _ in range(3):
        client.request("http://srv:80/a", HttpRequest("GET", "/"))
    # 3 requests, 1 connection
    assert echo_server.requests_served == 3
    assert echo_server.connections_served == 1
    client.close()


def test_connection_close_honoured(inproc, echo_server):
    client = HttpClient(inproc)
    client.request("http://srv:80/close", HttpRequest("POST", "/", body=b"x"))
    client.request("http://srv:80/close", HttpRequest("POST", "/", body=b"y"))
    assert echo_server.connections_served == 2
    client.close()


def test_client_connection_close_request(inproc, echo_server):
    client = HttpClient(inproc)
    req = HttpRequest("GET", "/")
    req.headers.set("Connection", "close")
    resp = client.request("http://srv:80/x", req)
    assert resp.status == 200
    client.close()


def test_parallel_requests(inproc, echo_server):
    client = HttpClient(inproc, pool_per_endpoint=8)
    results = []
    lock = threading.Lock()

    def call(i):
        resp = client.request(f"http://srv:80/r{i}", HttpRequest("GET", "/"))
        with lock:
            results.append(resp.body)

    threads = [threading.Thread(target=call, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(5)
    assert sorted(results) == sorted(f"/r{i}".encode() for i in range(8))
    client.close()


def test_connect_to_missing_server(inproc):
    client = HttpClient(inproc)
    with pytest.raises(ConnectionRefused):
        client.request("http://ghost:80/", HttpRequest("GET", "/"))
    client.close()


def test_stale_pooled_connection_retried(inproc):
    """A pooled connection the server closed must be retried transparently."""
    accepted = []

    def handler(request, peer=None):
        return HttpResponse(200, body=b"ok")

    listener = inproc.listen("srv2:80")
    server = HttpServer(listener, handler, workers=2, keep_alive_timeout=0.1)
    server.start()
    client = HttpClient(inproc)
    assert client.request("http://srv2:80/", HttpRequest("GET", "/")).ok
    time.sleep(0.3)  # server dropped the idle connection
    assert client.request("http://srv2:80/", HttpRequest("GET", "/")).ok
    server.stop()
    client.close()


def test_server_context_manager(inproc):
    with HttpServer(
        inproc.listen("ctx:80"), lambda r, p=None: HttpResponse(204)
    ) as server:
        client = HttpClient(inproc)
        assert client.request("http://ctx:80/", HttpRequest("GET", "/")).status == 204
        client.close()


def test_server_url_property(inproc):
    server = HttpServer(inproc.listen("u:8080"), lambda r, p=None: HttpResponse(200))
    assert server.url == "http://u:8080"
    server.stop()

"""Wire-behaviour tests for connection leases and HTTP/1.1 pipelining.

Scripted raw servers (accepting in-process streams directly) exercise the
cases a well-behaved :class:`~repro.rt.server.HttpServer` never produces:
responses split at awkward byte boundaries, a close in the middle of a
burst, and ``Connection: close`` demotion.
"""

import threading

import pytest

from repro.errors import ConnectionTimeout, ReproError
from repro.http import Headers, HttpRequest, HttpResponse
from repro.http.wire import RequestParser, serialize_response
from repro.obs.metrics import MetricsRegistry
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer


def _post(body: bytes) -> HttpRequest:
    headers = Headers()
    headers.set("Content-Type", "text/plain")
    return HttpRequest("POST", "/", headers=headers, body=body)


def _response_bytes(body: bytes, close: bool = False) -> bytes:
    resp = HttpResponse(200, body=body)
    if close:
        resp.headers.set("Connection", "close")
    return serialize_response(resp)


class ScriptedServer:
    """Accepts raw in-process streams and runs a per-connection script.

    ``script(stream, requests_seen)`` drives one connection; every parsed
    request body is appended to ``self.processed`` so tests can assert
    exactly-once handling across connections.
    """

    def __init__(self, inproc, address: str, script) -> None:
        self.listener = inproc.listen(address)
        self.script = script
        self.processed: list[bytes] = []
        self.connections = 0
        self._threads: list[threading.Thread] = []
        accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        accept_thread.start()
        self._threads.append(accept_thread)

    def _accept_loop(self) -> None:
        while True:
            try:
                stream = self.listener.accept(timeout=5.0)
            except Exception:
                return
            self.connections += 1
            t = threading.Thread(
                target=self.script, args=(self, stream), daemon=True
            )
            t.start()
            self._threads.append(t)

    def read_requests(self, stream, count: int) -> list[HttpRequest]:
        """Parse ``count`` requests off the stream, recording their bodies."""
        parser = RequestParser()
        out: list[HttpRequest] = []
        while len(out) < count:
            message = parser.next_message()
            if message is not None:
                out.append(message)
                continue
            data = stream.recv(65536, timeout=5.0)
            if not data:
                break
            parser.feed(data)
        return out

    def stop(self) -> None:
        self.listener.close()


def test_pipeline_happy_path_real_server(inproc):
    served = []

    def handler(request, peer=None):
        served.append(request.body)
        return HttpResponse(202)

    srv = HttpServer(inproc.listen("pipe:80"), handler, workers=2).start()
    client = HttpClient(inproc, metrics=MetricsRegistry())
    requests = [_post(b"msg-%d" % i) for i in range(4)]
    results = client.pipeline("http://pipe:80/sink", requests)
    assert [r.status for r in results] == [202, 202, 202, 202]
    assert served == [b"msg-0", b"msg-1", b"msg-2", b"msg-3"]
    assert client._m_pipeline_bursts.labels().get() == 1
    assert client._m_pipeline_replayed.labels().get() == 0
    # clean burst: the leased connection went back to the pool
    with client._lock:
        assert sum(len(p) for p in client._pools.values()) == 1
    srv.stop()
    client.close()


def test_partial_reads_across_response_boundaries(inproc):
    """Responses split at arbitrary byte offsets still parse in order."""

    def script(server, stream):
        reqs = server.read_requests(stream, 3)
        server.processed.extend(r.body for r in reqs)
        wire = b"".join(_response_bytes(b"reply-%d" % i) for i in range(3))
        # drip-feed in 7-byte chunks: every response spans several reads
        # and most chunks straddle a message boundary at some point
        for i in range(0, len(wire), 7):
            stream.send(wire[i : i + 7])
        # leave the connection open: the client must finish on framing,
        # not on EOF

    server = ScriptedServer(inproc, "chunky:80", script)
    client = HttpClient(inproc, metrics=MetricsRegistry())
    results = client.pipeline(
        "http://chunky:80/x", [_post(b"m%d" % i) for i in range(3)]
    )
    assert [r.body for r in results] == [b"reply-0", b"reply-1", b"reply-2"]
    assert client._m_pipeline_replayed.labels().get() == 0
    server.stop()
    client.close()


def test_server_close_mid_burst_replays_tail_exactly_once(inproc):
    """A close after K responses replays exactly the N-K tail, once each."""

    def first_conn(server, stream):
        reqs = server.read_requests(stream, 4)
        assert len(reqs) == 4  # whole burst arrived
        # process and answer only the first two, then die mid-burst
        server.processed.extend(r.body for r in reqs[:2])
        stream.send(_response_bytes(b"ok-0") + _response_bytes(b"ok-1"))
        stream.close()

    def replay_conn(server, stream):
        while True:
            reqs = server.read_requests(stream, 1)
            if not reqs:
                return
            server.processed.append(reqs[0].body)
            stream.send(_response_bytes(b"replayed"))

    def script(server, stream):
        if server.connections == 1:
            first_conn(server, stream)
        else:
            replay_conn(server, stream)

    server = ScriptedServer(inproc, "midburst:80", script)
    client = HttpClient(inproc, metrics=MetricsRegistry())
    results = client.pipeline(
        "http://midburst:80/x", [_post(b"m%d" % i) for i in range(4)]
    )
    assert [r.body for r in results] == [b"ok-0", b"ok-1", b"replayed", b"replayed"]
    # the tail was processed exactly once each, never the delivered head
    assert server.processed == [b"m0", b"m1", b"m2", b"m3"]
    assert client._m_pipeline_replayed.labels().get() == 2
    server.stop()
    client.close()


def test_non_keep_alive_response_demotes_to_serial(inproc):
    """``Connection: close`` on response K demotes the rest of the burst."""

    def script(server, stream):
        if server.connections == 1:
            reqs = server.read_requests(stream, 3)
            server.processed.append(reqs[0].body)
            stream.send(_response_bytes(b"closing", close=True))
            stream.close()
        else:
            while True:
                reqs = server.read_requests(stream, 1)
                if not reqs:
                    return
                server.processed.append(reqs[0].body)
                stream.send(_response_bytes(b"serial"))

    server = ScriptedServer(inproc, "demote:80", script)
    client = HttpClient(inproc, metrics=MetricsRegistry())
    results = client.pipeline(
        "http://demote:80/x", [_post(b"m%d" % i) for i in range(3)]
    )
    assert [r.body for r in results] == [b"closing", b"serial", b"serial"]
    assert server.processed == [b"m0", b"m1", b"m2"]
    assert client._m_pipeline_replayed.labels().get() == 2
    # the demoted lease must not return its stream to the pool
    with client._lock:
        pooled = [s for p in client._pools.values() for s in p]
    for s in pooled:
        assert s is not None  # replay connections may pool; lease's did not
    server.stop()
    client.close()


def test_response_timeout_poisons_tail_without_replay(inproc):
    """A silent server poisons the tail: replaying could double-deliver."""

    def script(server, stream):
        reqs = server.read_requests(stream, 3)
        server.processed.extend(r.body for r in reqs)
        stream.send(_response_bytes(b"only-one"))
        # then say nothing: the client must time out, not replay

    server = ScriptedServer(inproc, "silent:80", script)
    client = HttpClient(inproc, response_timeout=0.2, metrics=MetricsRegistry())
    results = client.pipeline(
        "http://silent:80/x", [_post(b"m%d" % i) for i in range(3)]
    )
    assert results[0].body == b"only-one"
    assert isinstance(results[1], ConnectionTimeout)
    assert isinstance(results[2], ConnectionTimeout)
    assert client._m_pipeline_replayed.labels().get() == 0
    assert server.connections == 1  # no replay connection was opened
    server.stop()
    client.close()


def test_lease_is_exclusive_and_returns_to_pool(inproc):
    def handler(request, peer=None):
        return HttpResponse(202)

    srv = HttpServer(inproc.listen("lease:80"), handler, workers=2).start()
    client = HttpClient(inproc, metrics=MetricsRegistry())
    # seed the pool with one warm connection
    client.request("http://lease:80/x", HttpRequest("GET", "/"))
    with client._lock:
        assert sum(len(p) for p in client._pools.values()) == 1
    lease = client.lease("http://lease:80/x")
    assert lease.reused
    with client._lock:
        assert sum(len(p) for p in client._pools.values()) == 0  # checked out
    req = _post(b"payload")
    client.prepare("http://lease:80/x", req)
    results = lease.pipeline([req])
    assert results[0].status == 202
    lease.release()
    with client._lock:
        assert sum(len(p) for p in client._pools.values()) == 1  # returned
    with pytest.raises(ReproError):
        lease.pipeline([req])  # released lease refuses further bursts
    srv.stop()
    client.close()


def test_empty_pipeline_is_a_noop(inproc):
    def handler(request, peer=None):
        return HttpResponse(202)

    srv = HttpServer(inproc.listen("empty:80"), handler).start()
    client = HttpClient(inproc, metrics=MetricsRegistry())
    with client.lease("http://empty:80/x") as lease:
        assert lease.pipeline([]) == []
    srv.stop()
    client.close()

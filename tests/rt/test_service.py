"""Tests for SOAP service hosting (SoapHttpApp)."""

import pytest

from repro.errors import MailboxNotFound
from repro.http import Headers, HttpRequest, HttpResponse
from repro.rt.service import (
    FunctionService,
    RequestContext,
    SoapHttpApp,
    soap_fault_response,
    soap_response,
)
from repro.soap import (
    Envelope,
    Fault,
    RpcRequest,
    SoapVersion,
    build_rpc_request,
)
from repro.xmlmini import Element, QName


def soap_post(path: str, envelope: Envelope | None = None, body: bytes | None = None):
    headers = Headers()
    headers.set("Content-Type", "text/xml; charset=utf-8")
    payload = body if body is not None else envelope.to_bytes()
    return HttpRequest("POST", path, headers=headers, body=payload)


def echo_request():
    return build_rpc_request(RpcRequest("urn:t", "op", [("x", "1")]))


class TestMounting:
    def test_mount_requires_absolute_prefix(self):
        with pytest.raises(ValueError):
            SoapHttpApp().mount("relative", FunctionService(lambda e, c: None))

    def test_longest_prefix_wins(self):
        app = SoapHttpApp()
        hits = []
        app.mount("/svc", FunctionService(lambda e, c: hits.append("short") or None))
        app.mount(
            "/svc/special",
            FunctionService(lambda e, c: hits.append("long") or None),
        )
        app.handle_request(soap_post("/svc/special/x", echo_request()))
        assert hits == ["long"]

    def test_exact_prefix_match(self):
        app = SoapHttpApp()
        hits = []
        app.mount("/svc", FunctionService(lambda e, c: hits.append(c.path) or None))
        app.handle_request(soap_post("/svc", echo_request()))
        assert hits == ["/svc"]

    def test_prefix_must_match_segment_boundary(self):
        app = SoapHttpApp()
        app.mount("/svc", FunctionService(lambda e, c: None))
        resp = app.handle_request(soap_post("/svcother", echo_request()))
        assert resp.status == 404


class TestDispatch:
    def test_one_way_gets_202(self):
        app = SoapHttpApp()
        app.mount("/a", FunctionService(lambda e, c: None))
        resp = app.handle_request(soap_post("/a", echo_request()))
        assert resp.status == 202

    def test_reply_envelope_gets_200(self):
        app = SoapHttpApp()
        app.mount("/a", FunctionService(lambda e, c: e))
        resp = app.handle_request(soap_post("/a", echo_request()))
        assert resp.status == 200
        assert Envelope.from_bytes(resp.body).body is not None

    def test_fault_reply_gets_500(self):
        fault_env = Envelope(Fault("Server", "x").to_element(SoapVersion.V11))
        app = SoapHttpApp()
        app.mount("/a", FunctionService(lambda e, c: fault_env))
        assert app.handle_request(soap_post("/a", echo_request())).status == 500

    def test_malformed_soap_gets_400(self):
        app = SoapHttpApp()
        app.mount("/a", FunctionService(lambda e, c: None))
        resp = app.handle_request(soap_post("/a", body=b"this is not xml"))
        assert resp.status == 400

    def test_unmounted_path_404(self):
        resp = SoapHttpApp().handle_request(soap_post("/nowhere", echo_request()))
        assert resp.status == 404

    def test_non_post_rejected(self):
        app = SoapHttpApp()
        app.mount("/a", FunctionService(lambda e, c: None))
        resp = app.handle_request(HttpRequest("PUT", "/a"))
        assert resp.status == 405

    def test_repro_error_maps_to_fault_500(self):
        def boom(envelope, ctx):
            raise MailboxNotFound("gone")

        app = SoapHttpApp()
        app.mount("/a", FunctionService(boom))
        resp = app.handle_request(soap_post("/a", echo_request()))
        assert resp.status == 500
        fault = Fault.from_element(Envelope.from_bytes(resp.body).body)
        assert "gone" in fault.reason

    def test_unexpected_exception_contained(self):
        def boom(envelope, ctx):
            raise RuntimeError("surprise")

        app = SoapHttpApp()
        app.mount("/a", FunctionService(boom))
        resp = app.handle_request(soap_post("/a", echo_request()))
        assert resp.status == 500
        assert b"surprise" in resp.body

    def test_context_carries_path_and_request(self):
        seen = {}

        def svc(envelope, ctx: RequestContext):
            seen["path"] = ctx.path
            seen["has_req"] = ctx.http_request is not None
            return None

        app = SoapHttpApp()
        app.mount("/a", FunctionService(svc))
        app.handle_request(soap_post("/a/sub?q=1", echo_request()))
        assert seen == {"path": "/a/sub", "has_req": True}


class TestPages:
    def test_get_page_served(self):
        app = SoapHttpApp()
        app.mount_page("/registry", lambda req: HttpResponse(200, body=b"<html/>"))
        resp = app.handle_request(HttpRequest("GET", "/registry/list"))
        assert resp.status == 200 and resp.body == b"<html/>"

    def test_get_unmounted_404(self):
        assert SoapHttpApp().handle_request(HttpRequest("GET", "/x")).status == 404


class TestResponseHelpers:
    def test_soap_response_sets_content_type(self):
        resp = soap_response(echo_request())
        assert "text/xml" in resp.headers.get("Content-Type")

    def test_soap_fault_response(self):
        resp = soap_fault_response(Fault("Client", "bad"), status=400)
        assert resp.status == 400
        env = Envelope.from_bytes(resp.body)
        assert env.is_fault()

"""Edge-case tests for the pooling HTTP client."""

import pytest

from repro.errors import SoapError
from repro.http import Headers, HttpRequest, HttpResponse
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.soap import Envelope
from repro.workload.echo import make_echo_request


@pytest.fixture
def server(inproc):
    def handler(request: HttpRequest, peer=None) -> HttpResponse:
        if request.target == "/head":
            resp = HttpResponse(200)
            resp.headers.set("Content-Length", "100")  # body never sent
            resp.body = b""
            return resp
        if request.target == "/notsoap":
            return HttpResponse(200, body=b"<html>not soap</html>")
        if request.target == "/accepted":
            return HttpResponse(202)
        if request.target == "/nocontent":
            return HttpResponse(204)
        return HttpResponse(200, body=request.body)

    srv = HttpServer(inproc.listen("edge:80"), handler, workers=4).start()
    yield srv
    srv.stop()


def test_head_request_no_body_expected(inproc, server):
    client = HttpClient(inproc)
    resp = client.request("http://edge:80/head", HttpRequest("HEAD", "/"))
    assert resp.status == 200
    assert resp.body == b""
    client.close()


def test_call_soap_returns_none_for_202_and_204(inproc, server):
    client = HttpClient(inproc)
    assert client.call_soap("http://edge:80/accepted", make_echo_request()) is None
    assert client.call_soap("http://edge:80/nocontent", make_echo_request()) is None
    client.close()


def test_call_soap_rejects_non_soap_response(inproc, server):
    client = HttpClient(inproc)
    with pytest.raises(SoapError):
        client.call_soap("http://edge:80/notsoap", make_echo_request())
    client.close()


def test_post_envelope_sets_content_type(inproc, server):
    client = HttpClient(inproc)
    resp = client.post_envelope("http://edge:80/echo", make_echo_request())
    # the echo handler returned our body; parse to prove integrity
    env = Envelope.from_bytes(resp.body)
    assert env.body is not None
    client.close()


def test_pool_cap_discards_excess_connections(inproc, server):
    import threading

    client = HttpClient(inproc, pool_per_endpoint=1)
    barrier = threading.Barrier(3)
    def call():
        barrier.wait(2)
        client.request("http://edge:80/x", HttpRequest("GET", "/"))

    threads = [threading.Thread(target=call) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(5)
    with client._lock:
        pooled = sum(len(p) for p in client._pools.values())
    assert pooled <= 1
    client.close()


def test_close_prevents_pooling(inproc, server):
    client = HttpClient(inproc)
    client.request("http://edge:80/x", HttpRequest("GET", "/"))
    client.close()
    with client._lock:
        assert not client._pools


def test_context_manager(inproc, server):
    with HttpClient(inproc) as client:
        assert client.request(
            "http://edge:80/x", HttpRequest("GET", "/")
        ).status == 200


def test_target_overwritten_with_url_path(inproc, server):
    client = HttpClient(inproc)
    req = HttpRequest("POST", "/ignored", body=b"payload")
    resp = client.request("http://edge:80/echo", req)
    assert req.target == "/echo"
    assert resp.body == b"payload"
    client.close()


def test_host_header_set(inproc):
    seen = {}

    def handler(request, peer=None):
        seen["host"] = request.headers.get("Host")
        return HttpResponse(200)

    srv = HttpServer(inproc.listen("hosty:8123"), handler).start()
    client = HttpClient(inproc)
    client.request("http://hosty:8123/", HttpRequest("GET", "/"))
    assert seen["host"] == "hosty:8123"
    srv.stop()
    client.close()

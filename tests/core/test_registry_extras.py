"""Tests for registry extensions: SQLite backend, WSDL browsing, ping."""

import pytest

from repro.core.registry import REGISTRY_NS, RegistryService, ServiceRegistry
from repro.errors import RegistryError
from repro.http import HttpRequest
from repro.rt.service import RequestContext
from repro.soap import RpcRequest, build_rpc_request, parse_rpc_response
from repro.util.sqldb import SqliteMap
from repro.xmlmini import parse


def call(svc, op, params):
    env = build_rpc_request(RpcRequest(REGISTRY_NS, op, params))
    return parse_rpc_response(svc.handle(env, RequestContext(path="/registry")))


class TestSqliteBackend:
    def test_put_get_roundtrip(self):
        db = SqliteMap()
        db.put("echo", "http://a/", {"owner": "x"})
        assert db.get("echo") == ("http://a/", {"owner": "x"})
        assert db.get("missing") is None

    def test_update_replaces_attrs(self):
        db = SqliteMap()
        db.put("echo", "http://a/", {"k1": "v1"})
        db.put("echo", "http://b/", {"k2": "v2"})
        assert db.get("echo") == ("http://b/", {"k2": "v2"})

    def test_remove_cascades(self):
        db = SqliteMap()
        db.put("echo", "http://a/", {"k": "v"})
        assert db.remove("echo") is True
        assert db.remove("echo") is False
        assert len(db) == 0

    def test_keys_items_sorted(self):
        db = SqliteMap()
        db.put("z", "1")
        db.put("a", "2")
        assert db.keys() == ["a", "z"]
        assert [k for k, _, _ in db.items()] == ["a", "z"]

    def test_contains(self):
        db = SqliteMap()
        db.put("echo", "http://a/")
        assert "echo" in db and "nope" not in db

    def test_durable_on_disk(self, tmp_path):
        path = str(tmp_path / "registry.sqlite")
        SqliteMap(path).put("echo", "http://a/", {"k": "v"})
        assert SqliteMap(path).get("echo") == ("http://a/", {"k": "v"})

    def test_registry_uses_sqlite_backend(self, tmp_path):
        path = str(tmp_path / "reg.sqlite")
        reg = ServiceRegistry(backend=SqliteMap(path))
        reg.register("echo", ["http://a/", "http://b/"], metadata={"o": "me"})
        reloaded = ServiceRegistry(backend=SqliteMap(path))
        assert reloaded.lookup("echo").physical == ["http://a/", "http://b/"]
        assert reloaded.lookup("echo").metadata == {"o": "me"}


class TestWsdlBrowsing:
    @pytest.fixture
    def svc(self):
        registry = ServiceRegistry()
        registry.register(
            "echo", ["http://inside:9000/echo"], metadata={"desc": "test echo"}
        )
        return RegistryService(registry)

    def test_wsdl_is_valid_xml(self, svc):
        doc = parse(svc.render_wsdl("echo"))
        assert doc.name.local == "definitions"
        assert doc.get("name") == "echo"
        assert doc.get("targetNamespace") == "urn:wsd:echo"

    def test_wsdl_advertises_logical_location(self, svc):
        text = svc.render_wsdl("echo").decode()
        assert "urn:wsd:echo" in text
        # the physical address only appears as documentation
        assert "inside:9000" in text

    def test_wsdl_unknown_service(self, svc):
        from repro.errors import UnknownServiceError

        with pytest.raises(UnknownServiceError):
            svc.render_wsdl("ghost")

    def test_page_handler_listing(self, svc):
        resp = svc.page_handler(HttpRequest("GET", "/registry"))
        assert resp.status == 200
        assert b"echo" in resp.body
        assert "html" in resp.headers.get("Content-Type")

    def test_page_handler_wsdl(self, svc):
        resp = svc.page_handler(HttpRequest("GET", "/registry/wsdl/echo"))
        assert resp.status == 200
        assert "xml" in resp.headers.get("Content-Type")
        assert parse(resp.body).name.local == "definitions"

    def test_page_handler_wsdl_404(self, svc):
        resp = svc.page_handler(HttpRequest("GET", "/registry/wsdl/ghost"))
        assert resp.status == 404


class TestPingOperation:
    def test_ping_alive(self):
        registry = ServiceRegistry()
        registry.register("echo", "http://a/")
        svc = RegistryService(registry, prober=lambda addr: True)
        assert call(svc, "ping", [("logical", "echo")]).result("alive") == "true"
        assert registry.lookup("echo").last_health[1] is True

    def test_ping_down(self):
        registry = ServiceRegistry()
        registry.register("echo", "http://a/")
        svc = RegistryService(registry, prober=lambda addr: False)
        assert call(svc, "ping", [("logical", "echo")]).result("alive") == "false"

    def test_ping_without_prober(self):
        registry = ServiceRegistry()
        registry.register("echo", "http://a/")
        svc = RegistryService(registry)
        with pytest.raises(RegistryError):
            call(svc, "ping", [("logical", "echo")])

"""Tests for the simulated dispatchers."""

import pytest

from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import (
    SimMsgDispatcher,
    SimMsgDispatcherConfig,
    SimRpcDispatcher,
)
from repro.http import Headers, HttpRequest
from repro.msgbox import MailboxStore, MsgBoxService
from repro.msgbox.service import make_mailbox_epr
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer, sim_http_request
from repro.simnet.kernel import Simulator
from repro.simnet.services import SimAsyncEchoService
from repro.simnet.topology import AccessLink, Network
from repro.soap import Envelope, parse_rpc_response
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import EchoService, make_echo_message, make_echo_request


@pytest.fixture
def world(sim):
    net = Network(sim)
    link = AccessLink(5000, 5000, 0.005)
    client = net.add_host("client", link)
    ws_host = net.add_host("ws", link)
    wsd_host = net.add_host("wsd", link)
    registry = ServiceRegistry()
    return net, client, ws_host, wsd_host, registry


def soap_post(path: str, body: bytes) -> HttpRequest:
    headers = Headers()
    headers.set("Content-Type", SOAP11_CONTENT_TYPE)
    return HttpRequest("POST", path, headers=headers, body=body)


class TestSimRpcDispatcher:
    def test_forwards_and_returns_response(self, world):
        net, client, ws_host, wsd_host, registry = world
        sim = net.sim
        app = SoapHttpApp()
        app.mount("/echo", EchoService())
        SimHttpServer(net, ws_host, 9000, lambda r: app.handle_request(r, None))
        registry.register("echo", "http://ws:9000/echo")
        disp = SimRpcDispatcher(net, wsd_host, registry)
        SimHttpServer(net, wsd_host, 8000, disp.handler)

        def call():
            resp = yield from sim_http_request(
                net, client, "wsd", 8000,
                soap_post("/rpc/echo", make_echo_request().to_bytes()),
            )
            return resp

        resp = sim.run(sim.process(call()))
        assert resp.status == 200
        parsed = parse_rpc_response(Envelope.from_bytes(resp.body))
        assert parsed.result("return") is not None
        assert disp.stats["forwarded"] == 1

    def test_unknown_service_404(self, world):
        net, client, ws_host, wsd_host, registry = world
        sim = net.sim
        disp = SimRpcDispatcher(net, wsd_host, registry)
        SimHttpServer(net, wsd_host, 8000, disp.handler)

        def call():
            resp = yield from sim_http_request(
                net, client, "wsd", 8000,
                soap_post("/rpc/ghost", make_echo_request().to_bytes()),
            )
            return resp.status

        assert sim.run(sim.process(call())) == 404

    def test_unreachable_backend_502(self, world):
        net, client, ws_host, wsd_host, registry = world
        sim = net.sim
        registry.register("dead", "http://ws:9999/dead")
        disp = SimRpcDispatcher(net, wsd_host, registry, connect_timeout=1.0)
        SimHttpServer(net, wsd_host, 8000, disp.handler)

        def call():
            resp = yield from sim_http_request(
                net, client, "wsd", 8000,
                soap_post("/rpc/dead", make_echo_request().to_bytes()),
                response_timeout=30.0,
            )
            return resp.status

        assert sim.run(sim.process(call())) == 502


@pytest.fixture
def msg_world(world):
    net, client, ws_host, wsd_host, registry = world
    sim = net.sim
    echo = SimAsyncEchoService(net, ws_host, reply_senders=8)
    SimHttpServer(net, ws_host, 9000, echo.handler)
    registry.register("echo", "http://ws:9000/echo")
    config = SimMsgDispatcherConfig(
        cx_workers=2, ws_workers=4, destination_idle_ttl=0.5,
        shed_on_full=True,
        passthrough_reply_prefixes=("http://wsd:8500/mailbox",),
    )
    disp = SimMsgDispatcher(
        net, wsd_host, registry, own_address="http://wsd:8000/msg", config=config
    )
    SimHttpServer(net, wsd_host, 8000, disp.handler)
    store = MailboxStore(clock=sim.clock)
    msgbox = MsgBoxService(store, base_url="http://wsd:8500/mailbox")
    app = SoapHttpApp()
    app.mount("/mailbox", msgbox)
    SimHttpServer(net, wsd_host, 8500, lambda r: app.handle_request(r, None))
    return net, client, registry, disp, store, echo


class TestSimMsgDispatcher:
    def test_one_way_forwarded(self, msg_world):
        net, client, registry, disp, store, echo = msg_world
        sim = net.sim
        ids = IdGenerator("t", seed=1)

        def send():
            msg = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
            resp = yield from sim_http_request(
                net, client, "wsd", 8000, soap_post("/msg/echo", msg.to_bytes())
            )
            return resp.status

        assert sim.run(sim.process(send())) == 202
        sim.run(until=sim.now + 5.0)
        assert echo.stats["received"] == 1
        assert disp.stats["delivered"] == 1

    def test_response_deposited_directly_to_mailbox(self, msg_world):
        """Passthrough: the WS replies straight to the co-located mailbox."""
        net, client, registry, disp, store, echo = msg_world
        sim = net.sim
        ids = IdGenerator("t", seed=2)
        mailbox_id = store.create()
        epr = make_mailbox_epr("http://wsd:8500/mailbox", mailbox_id)

        def send():
            msg = make_echo_message(
                to="urn:wsd:echo", message_id=ids.next(), reply_to=epr
            )
            yield from sim_http_request(
                net, client, "wsd", 8000, soap_post("/msg/echo", msg.to_bytes())
            )

        sim.run(sim.process(send()))
        sim.run(until=sim.now + 5.0)
        assert store.peek_count(mailbox_id) == 1
        # no relay hop: dispatcher routed zero responses
        assert disp.stats.get("routed_responses", 0) == 0
        assert echo.stats["replies_sent"] == 1

    def test_response_relayed_without_passthrough(self, msg_world):
        net, client, registry, disp, store, echo = msg_world
        sim = net.sim
        disp.config.passthrough_reply_prefixes = ()
        ids = IdGenerator("t", seed=3)
        mailbox_id = store.create()
        epr = make_mailbox_epr("http://wsd:8500/mailbox", mailbox_id)

        def send():
            msg = make_echo_message(
                to="urn:wsd:echo", message_id=ids.next(), reply_to=epr
            )
            yield from sim_http_request(
                net, client, "wsd", 8000, soap_post("/msg/echo", msg.to_bytes())
            )

        sim.run(sim.process(send()))
        sim.run(until=sim.now + 5.0)
        assert store.peek_count(mailbox_id) == 1
        assert disp.stats.get("routed_responses") == 1

    def test_shed_on_full_returns_503(self, msg_world):
        net, client, registry, disp, store, echo = msg_world
        sim = net.sim
        disp.config.shed_on_full = True
        # replace accept store with a zero-capacity... smallest is 1
        from repro.simnet.resources import Store

        disp._accept = Store(sim, capacity=1)
        disp._accept.try_put(("blocker", "/msg/echo"))
        ids = IdGenerator("t", seed=4)

        def send():
            msg = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
            resp = yield from sim_http_request(
                net, client, "wsd", 8000, soap_post("/msg/echo", msg.to_bytes())
            )
            return resp.status

        # cx workers may consume the blocker tuple; stop them first
        disp._running = False
        assert sim.run(sim.process(send())) in (503, 202)

    def test_registry_outage_parks_and_redelivers_after_recovery(self, world):
        """Deterministic twin of the threaded/aio regression: messages
        arriving during a registry outage park in the hold store under
        the resolve-later sentinel and deliver once the registry is back."""
        from repro.reliable import FixedDelay, HoldRetryStore

        net, client, ws_host, wsd_host, registry = world
        sim = net.sim
        echo = SimAsyncEchoService(net, ws_host, reply_senders=8)
        SimHttpServer(net, ws_host, 9000, echo.handler)
        registry.register("echo", "http://ws:9000/echo")
        registry.set_available(False)
        hold_store = HoldRetryStore(
            policy=FixedDelay(max_attempts=1000, delay=0.5),
            default_ttl=600.0, clock=sim.clock,
        )
        disp = SimMsgDispatcher(
            net, wsd_host, registry, own_address="http://wsd:8000/msg",
            config=SimMsgDispatcherConfig(
                cx_workers=2, ws_workers=4, dedupe_window=600.0,
                hold_pump_interval=0.5,
            ),
            hold_store=hold_store,
        )
        SimHttpServer(net, wsd_host, 8000, disp.handler)
        ids = IdGenerator("t", seed=9)

        def send():
            for _ in range(3):
                msg = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
                resp = yield from sim_http_request(
                    net, client, "wsd", 8000,
                    soap_post("/msg/echo", msg.to_bytes()),
                )
                assert resp.status == 202

        def recover():
            yield sim.timeout(3.0)
            registry.set_available(True)

        sim.process(send())
        sim.process(recover())
        sim.run(until=2.5)
        assert disp.stats.get("hold_registry_unavailable") == 3
        assert disp.stats.get("dropped_unroutable", 0) == 0
        assert hold_store.pending() == 3
        assert echo.stats.get("received", 0) == 0
        sim.run(until=10.0)
        assert hold_store.pending() == 0
        assert disp.stats.get("delivered") == 3
        assert echo.stats["received"] == 3
        # redelivered MessageIDs were recorded when they parked; the
        # from-hold pass must bypass the duplicate filter
        assert disp.stats.get("duplicates_suppressed", 0) == 0

    def test_bridge_returns_response_inband(self, msg_world):
        net, client, registry, disp, store, echo = msg_world
        sim = net.sim
        SimHttpServer(
            net, net.host("wsd"), 8100,
            lambda req: disp.bridge_handler(req, bridge_timeout=10.0),
        )

        def call():
            resp = yield from sim_http_request(
                net, client, "wsd", 8100,
                soap_post("/bridge/echo", make_echo_request().to_bytes()),
                response_timeout=20.0,
            )
            return resp

        resp = sim.run(sim.process(call()))
        assert resp.status == 200
        parsed = parse_rpc_response(Envelope.from_bytes(resp.body))
        assert parsed.result("return") is not None
        assert disp.stats.get("bridged_responses") == 1

    def test_bridge_timeout_504(self, msg_world):
        net, client, registry, disp, store, echo = msg_world
        sim = net.sim
        registry.register("void", "http://ws:9998/void")  # nothing listening
        SimHttpServer(
            net, net.host("wsd"), 8100,
            lambda req: disp.bridge_handler(req, bridge_timeout=2.0),
        )

        def call():
            resp = yield from sim_http_request(
                net, client, "wsd", 8100,
                soap_post("/bridge/void", make_echo_request().to_bytes()),
                response_timeout=30.0,
            )
            return resp.status

        assert sim.run(sim.process(call())) == 504
        assert disp.stats.get("bridge_timeouts") == 1


class TestSimPipelinedDrain:
    """The simulated WsThread drain mirrors the threaded pipelined burst."""

    def _pipeline_world(self, sim, pipelined: bool):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import TraceStore
        from repro.simnet.topology import AccessLink, Network

        net = Network(sim)
        link = AccessLink(5000, 5000, 0.005)
        ws_host = net.add_host("ws", link)
        wsd_host = net.add_host("wsd", link)
        echo = SimAsyncEchoService(net, ws_host, reply_senders=8)
        SimHttpServer(net, ws_host, 9000, echo.handler)
        registry = ServiceRegistry(metrics=MetricsRegistry())
        registry.register("echo", "http://ws:9000/echo")
        disp = SimMsgDispatcher(
            net, wsd_host, registry, own_address="http://wsd:8000/msg",
            config=SimMsgDispatcherConfig(
                cx_workers=2, ws_workers=2, batch_size=8,
                pipeline_batches=pipelined,
            ),
            metrics=MetricsRegistry(), traces=TraceStore(),
        )
        return net, disp, echo

    def _feed(self, disp, count, traced=False):
        from repro.obs.trace import TraceContext

        ids = IdGenerator("pipe", seed=7)
        traces = []
        for i in range(count):
            msg = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
            trace = TraceContext(f"sim-pipe-{i}") if traced else None
            traces.append(trace)
            assert disp._accept.try_put((msg, "/msg/echo", trace, 0.0, None))
        return traces

    def test_backlog_drains_as_pipelined_bursts(self, sim):
        net, disp, echo = self._pipeline_world(sim, pipelined=True)
        self._feed(disp, 8)
        sim.run(until=10.0)
        assert disp.stats["delivered"] == 8
        assert echo.stats["received"] == 8
        assert disp.pool.pipelined_bursts >= 1
        assert disp.pool.pipeline_replays == 0

    def test_serial_drain_still_works_with_knob_off(self, sim):
        net, disp, echo = self._pipeline_world(sim, pipelined=False)
        self._feed(disp, 8)
        sim.run(until=10.0)
        assert disp.stats["delivered"] == 8
        assert disp.pool.pipelined_bursts == 0

    def test_burst_span_recorded_per_trace_with_shared_id(self, sim):
        net, disp, echo = self._pipeline_world(sim, pipelined=True)
        traces = self._feed(disp, 6, traced=True)
        sim.run(until=10.0)
        assert disp.stats["delivered"] == 6
        burst_sids = set()
        for ctx in traces:
            spans = disp.traces.get(ctx.trace_id)
            burst = [s for s in spans if s.name == "pipeline-burst"]
            deliver = [s for s in spans if s.name == "deliver"]
            assert len(burst) == 1
            assert len(deliver) == 1
            assert deliver[0].parent_id == burst[0].span_id
            burst_sids.add(burst[0].span_id)
        # items that rode the same burst share that burst's span id, so
        # the number of distinct burst span ids equals the burst count
        assert len(burst_sids) == disp.pool.pipelined_bursts

"""Tests for the single sign-on gate."""

import pytest

from repro.core.sso import SsoGate, TokenIssuer, attach_token
from repro.errors import AuthError
from repro.util.clock import ManualClock
from repro.workload.echo import make_echo_request


@pytest.fixture
def issuer():
    iss = TokenIssuer(b"test-secret", token_ttl=60.0, clock=ManualClock())
    iss.add_principal("alice", "wonderland")
    iss.add_principal("bob", "builder")
    return iss


class TestTokenIssuer:
    def test_login_and_verify(self, issuer):
        token = issuer.login("alice", "wonderland")
        assert issuer.verify(token) == "alice"

    def test_bad_password(self, issuer):
        with pytest.raises(AuthError):
            issuer.login("alice", "wrong")

    def test_unknown_principal(self, issuer):
        with pytest.raises(AuthError):
            issuer.login("mallory", "x")

    def test_tampered_token_rejected(self, issuer):
        token = issuer.login("alice", "wonderland")
        tampered = token.replace("alice", "admin")
        with pytest.raises(AuthError):
            issuer.verify(tampered)

    def test_malformed_token_rejected(self, issuer):
        for bad in ("", "a|b", "a|b|c|d", "x|notafloat|deadbeef"):
            with pytest.raises(AuthError):
                issuer.verify(bad)

    def test_token_expiry(self):
        clock = ManualClock()
        issuer = TokenIssuer(b"s", token_ttl=10.0, clock=clock)
        issuer.add_principal("a", "p")
        token = issuer.login("a", "p")
        clock.advance(11.0)
        with pytest.raises(AuthError):
            issuer.verify(token)

    def test_foreign_issuer_rejected(self, issuer):
        other = TokenIssuer(b"different-secret")
        other.add_principal("alice", "wonderland")
        token = other.login("alice", "wonderland")
        with pytest.raises(AuthError):
            issuer.verify(token)

    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            TokenIssuer(b"")


class TestSsoGate:
    def test_open_service_anonymous_ok(self, issuer):
        gate = SsoGate(issuer)
        assert gate.check(make_echo_request(), "echo") is None

    def test_restricted_service_requires_token(self, issuer):
        gate = SsoGate(issuer)
        gate.restrict("echo", ["alice"])
        with pytest.raises(AuthError):
            gate.check(make_echo_request(), "echo")

    def test_authorized_principal_passes(self, issuer):
        gate = SsoGate(issuer)
        gate.restrict("echo", ["alice"])
        env = attach_token(make_echo_request(), issuer.login("alice", "wonderland"))
        assert gate.check(env, "echo") == "alice"

    def test_unauthorized_principal_rejected(self, issuer):
        gate = SsoGate(issuer)
        gate.restrict("echo", ["alice"])
        env = attach_token(make_echo_request(), issuer.login("bob", "builder"))
        with pytest.raises(AuthError):
            gate.check(env, "echo")

    def test_token_on_open_service_still_verified(self, issuer):
        gate = SsoGate(issuer)
        env = attach_token(make_echo_request(), "garbage-token")
        with pytest.raises(AuthError):
            gate.check(env, "unrestricted")

    def test_gate_is_callable_inspector(self, issuer):
        gate = SsoGate(issuer)
        gate.restrict("echo", ["alice"])
        env = attach_token(make_echo_request(), issuer.login("alice", "wonderland"))
        gate(env, "echo")  # __call__ signature used by RpcDispatcher

"""Breakers, hold-store parking, and overload shedding — the same
semantic matrix asserted against the threaded and asyncio dispatchers
via the ``dispatcher_backend`` fixture."""

import time

from repro.core.msg_dispatcher import MsgDispatcherConfig
from repro.core.registry import ServiceRegistry
from repro.core.rpc_dispatcher import RpcDispatcher
from repro.errors import TransportError
from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceStore
from repro.reliable import BreakerConfig, FixedDelay, HoldRetryStore
from repro.rt.service import RequestContext, SoapHttpApp
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message


class FakeClient:
    """Counts requests; fails while ``failing`` is set."""

    def __init__(self, failing=True):
        self.failing = failing
        self.calls = 0

    def request(self, url, request):
        self.calls += 1
        if self.failing:
            raise TransportError(f"injected failure for {url}")
        return HttpResponse(status=202)

    def prepare(self, url, request):
        return request

    def close(self):
        pass


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def make_dispatcher(
    backend, client, metrics, hold_store=None, breaker=None, registry=None,
    **kwargs
):
    if registry is None:
        registry = ServiceRegistry()
        registry.register("echo", "http://dead:9000/echo")
    config_kw = {
        k: kwargs.pop(k)
        for k in ("max_inflight", "dedupe_window") if k in kwargs
    }
    config = MsgDispatcherConfig(
        cx_threads=1, ws_threads=2, pipeline_batches=False,
        breaker=breaker
        or BreakerConfig(consecutive_failures=2, open_for=60.0),
        **config_kw,
    )
    return backend.make_dispatcher(
        registry, client, own_address="http://wsd:8000/msg", config=config,
        metrics=metrics, traces=TraceStore(enabled=False),
        hold_store=hold_store, **kwargs,
    )


def feed(dispatcher, n, seed=1):
    ids = IdGenerator("rob", seed=seed)
    for _ in range(n):
        env = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
        dispatcher.handle(env, RequestContext(path="/msg/echo"))


def test_breaker_opens_and_stops_network_attempts(dispatcher_backend):
    metrics = MetricsRegistry()
    client = FakeClient(failing=True)
    dispatcher = make_dispatcher(dispatcher_backend, client, metrics)
    try:
        feed(dispatcher, 10)
        # two consecutive failures trip the breaker; the other eight are
        # refused locally without touching the (dead) network
        assert wait_for(
            lambda: dispatcher.stats.get("dropped_breaker_open", 0) == 8
        ), dispatcher.stats
        assert client.calls == 2
        snap = dispatcher.breakers.snapshot()
        assert snap["destinations"]["dead:9000"]["state"] == "open"
        rendered = metrics.render_prometheus()
        assert 'rt_breaker_state{dest="dead:9000"} 1' in rendered
        assert 'msgd_dropped_total{reason="breaker_open"} 8' in rendered
    finally:
        dispatcher.stop()


def test_open_breaker_parks_messages_in_hold_store(dispatcher_backend):
    metrics = MetricsRegistry()
    client = FakeClient(failing=True)
    hold_store = HoldRetryStore(
        policy=FixedDelay(max_attempts=1000, delay=30.0), default_ttl=600.0
    )
    dispatcher = make_dispatcher(
        dispatcher_backend, client, metrics, hold_store=hold_store
    )
    try:
        feed(dispatcher, 10)
        assert wait_for(
            lambda: dispatcher.stats.get("held_breaker_open", 0)
            + dispatcher.stats.get("held_for_retry", 0) == 10
        ), dispatcher.stats
        assert client.calls == 2
        assert hold_store.pending() == 10
        health = dispatcher.health_snapshot()
        assert health["breakers"]["states"]["open"] == 1
        assert health["hold_store"]["held"] == 10
    finally:
        dispatcher.stop()


def test_recovery_closes_breaker_and_redelivers_held(dispatcher_backend):
    metrics = MetricsRegistry()
    client = FakeClient(failing=True)
    hold_store = HoldRetryStore(
        policy=FixedDelay(max_attempts=1000, delay=0.05), default_ttl=600.0
    )
    dispatcher = make_dispatcher(
        dispatcher_backend, client, metrics, hold_store=hold_store,
        breaker=BreakerConfig(consecutive_failures=2, open_for=0.2),
        hold_pump_interval=0.05,
    )
    try:
        feed(dispatcher, 5)
        assert wait_for(lambda: hold_store.pending() == 5), dispatcher.stats
        client.failing = False  # the destination comes back
        # half-open probe succeeds, breaker closes, the pump drains the store
        assert wait_for(lambda: hold_store.pending() == 0, timeout=10.0), (
            dispatcher.stats, hold_store.stats,
        )
        assert hold_store.stats["delivered"] == 5
        assert hold_store.stats["expired"] == 0
        snap = dispatcher.breakers.snapshot()
        assert snap["destinations"]["dead:9000"]["state"] == "closed"
    finally:
        dispatcher.stop()


def test_registry_outage_parks_then_redelivers(dispatcher_backend):
    """RegistryUnavailable mid-drain parks the message pre-resolution;
    when the registry comes back the pump re-routes and delivers it —
    without the redelivery being absorbed as a duplicate."""
    metrics = MetricsRegistry()
    client = FakeClient(failing=False)
    registry = ServiceRegistry()
    registry.register("echo", "http://ws:9000/echo")
    registry.set_available(False)
    hold_store = HoldRetryStore(
        policy=FixedDelay(max_attempts=1000, delay=0.05), default_ttl=600.0
    )
    dispatcher = make_dispatcher(
        dispatcher_backend, client, metrics, hold_store=hold_store,
        registry=registry, hold_pump_interval=0.05, dedupe_window=600.0,
    )
    try:
        feed(dispatcher, 3)
        assert wait_for(
            lambda: dispatcher.stats.get("hold_registry_unavailable", 0) == 3
        ), dispatcher.stats
        # parked, not dead-lettered, and the dead registry was never a
        # reason to touch the network
        assert dispatcher.stats.get("dropped_unroutable", 0) == 0
        assert hold_store.pending() == 3
        assert client.calls == 0

        registry.set_available(True)
        assert wait_for(lambda: hold_store.pending() == 0, timeout=10.0), (
            dispatcher.stats, hold_store.stats,
        )
        assert wait_for(
            lambda: dispatcher.stats.get("delivered", 0) == 3
        ), dispatcher.stats
        assert client.calls == 3
        # the MessageIDs were recorded on the admission pass that parked
        # them; the from-hold routing pass must skip the duplicate filter
        assert dispatcher.stats.get("duplicates_suppressed", 0) == 0
        assert hold_store.stats["delivered"] == 3
    finally:
        dispatcher.stop()


def test_registry_outage_without_hold_store_dead_letters(dispatcher_backend):
    metrics = MetricsRegistry()
    client = FakeClient(failing=False)
    registry = ServiceRegistry()
    registry.register("echo", "http://ws:9000/echo")
    registry.set_available(False)
    dispatcher = make_dispatcher(
        dispatcher_backend, client, metrics, registry=registry
    )
    try:
        feed(dispatcher, 2)
        assert wait_for(
            lambda: dispatcher.stats.get("dropped_unroutable", 0) == 2
        ), dispatcher.stats
        assert client.calls == 0
    finally:
        dispatcher.stop()


def test_msg_dispatcher_shed_maps_to_503_with_retry_after(dispatcher_backend):
    metrics = MetricsRegistry()
    dispatcher = make_dispatcher(
        dispatcher_backend, FakeClient(), metrics, max_inflight=0
    )
    app = SoapHttpApp()
    app.mount("/msg", dispatcher)
    try:
        env = make_echo_message(to="urn:wsd:echo", message_id="uuid:shed-1")
        headers = Headers()
        headers.set("Content-Type", SOAP11_CONTENT_TYPE)
        request = HttpRequest("POST", "/msg/echo", headers=headers,
                              body=env.to_bytes())
        response = app.handle_request(request, None)
        assert response.status == 503
        assert response.headers.get("Retry-After") == "1"
        assert b"overloaded" in response.body
        assert dispatcher.stats.get("shed_overload") == 1
        assert (
            'dispatcher_shed_total{component="msgd"} 1'
            in metrics.render_prometheus()
        )
        assert dispatcher.health_snapshot()["shed"] == 1
    finally:
        dispatcher.stop()


def test_rpc_dispatcher_shed_maps_to_503_with_retry_after():
    metrics = MetricsRegistry()
    dispatcher = RpcDispatcher(
        ServiceRegistry(), FakeClient(), metrics=metrics,
        traces=TraceStore(enabled=False), max_inflight=0,
        shed_retry_after=2.5,
    )
    request = HttpRequest("POST", "/rpc/echo", body=b"<x/>")
    response = dispatcher.handle_request(request)
    assert response.status == 503
    assert response.headers.get("Retry-After") == "2.5"
    assert dispatcher.stats["shed"] == 1
    assert (
        'dispatcher_shed_total{component="rpcd"} 1'
        in metrics.render_prometheus()
    )

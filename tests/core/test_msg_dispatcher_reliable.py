"""Tests for the MSG-Dispatcher + HoldRetryStore integration (WS-RM mode)."""

import time

import pytest

from repro.core.msg_dispatcher import MsgDispatcher, MsgDispatcherConfig
from repro.core.registry import ServiceRegistry
from repro.errors import TransportError
from repro.http import HttpRequest
from repro.reliable import FixedDelay, HoldRetryStore
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.util.ids import IdGenerator
from repro.workload.echo import AsyncEchoService, make_echo_message


def wait_for(predicate, timeout=8.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def test_held_message_delivered_after_service_comes_up(inproc):
    registry = ServiceRegistry()
    registry.register("late", "http://late:9500/echo")

    disp_client = HttpClient(inproc, connect_timeout=0.2, response_timeout=1.0)

    def deliver(msg):
        response = disp_client.request(
            msg.target_url,
            HttpRequest("POST", "/", body=msg.envelope_bytes),
        )
        if response.status >= 400:
            raise TransportError(f"HTTP {response.status}")

    hold_store = HoldRetryStore(
        deliver, policy=FixedDelay(max_attempts=50, delay=0.1), default_ttl=30.0
    )
    dispatcher = MsgDispatcher(
        registry,
        disp_client,
        own_address="http://wsd:8000/msg",
        config=MsgDispatcherConfig(cx_threads=1, ws_threads=2),
        hold_store=hold_store,
        hold_pump_interval=0.05,
    )
    app = SoapHttpApp()
    app.mount("/msg", dispatcher)
    front = HttpServer(inproc.listen("wsd:8000"), app.handle_request).start()

    client = HttpClient(inproc)
    ids = IdGenerator("rel", seed=1)
    msg = make_echo_message(to="urn:wsd:late", message_id=ids.next())
    assert client.post_envelope("http://wsd:8000/msg/late", msg).status == 202

    # delivery fails (nothing listening); the message must be held
    assert wait_for(lambda: dispatcher.stats.get("held_for_retry", 0) == 1)
    assert hold_store.pending() == 1

    # now the service appears — the pump should deliver the held message
    ws_http = HttpClient(inproc)
    echo = AsyncEchoService(ws_http)
    ws_app = SoapHttpApp()
    ws_app.mount("/echo", echo)
    ws = HttpServer(inproc.listen("late:9500"), ws_app.handle_request).start()

    assert wait_for(lambda: echo.received == 1)
    assert hold_store.pending() == 0
    assert hold_store.stats["delivered"] == 1

    dispatcher.stop()
    front.stop()
    ws.stop()
    client.close()
    ws_http.close()
    disp_client.close()


def test_without_hold_store_failures_are_final(inproc):
    registry = ServiceRegistry()
    registry.register("void", "http://void:1/x")
    dispatcher = MsgDispatcher(
        registry,
        HttpClient(inproc, connect_timeout=0.1),
        own_address="http://wsd:8000/msg",
        config=MsgDispatcherConfig(cx_threads=1, ws_threads=1),
    )
    ids = IdGenerator("rel", seed=2)
    msg = make_echo_message(to="urn:wsd:void", message_id=ids.next())
    from repro.rt.service import RequestContext

    dispatcher.handle(msg, RequestContext(path="/msg/void"))
    assert wait_for(lambda: dispatcher.stats.get("delivery_failures", 0) == 1)
    assert dispatcher.stats.get("held_for_retry", 0) == 0
    dispatcher.stop()

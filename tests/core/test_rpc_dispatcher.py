"""Tests for the threaded RPC-Dispatcher."""

import pytest

from repro.core.registry import ServiceRegistry
from repro.core.rpc_dispatcher import RpcDispatcher
from repro.core.sso import SsoGate, TokenIssuer, attach_token
from repro.errors import AuthError
from repro.http import Headers, HttpRequest
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import FunctionService, SoapHttpApp
from repro.soap import (
    Envelope,
    Fault,
    RpcResponse,
    build_rpc_response,
    parse_rpc_request,
    parse_rpc_response,
)
from repro.workload.echo import EchoService, make_echo_request


@pytest.fixture
def world(inproc):
    """Echo WS + registry + dispatcher, all over inproc transport."""
    app = SoapHttpApp()
    app.mount("/echo", EchoService())
    ws = HttpServer(inproc.listen("ws:9000"), app.handle_request, workers=4).start()

    registry = ServiceRegistry()
    registry.register("echo", "http://ws:9000/echo")
    dispatcher = RpcDispatcher(registry, HttpClient(inproc))
    front = HttpServer(
        inproc.listen("wsd:8000"), dispatcher.handle_request, workers=4
    ).start()
    client = HttpClient(inproc)
    yield registry, dispatcher, client
    ws.stop()
    front.stop()
    client.close()


def soap_post(body: bytes) -> HttpRequest:
    headers = Headers()
    headers.set("Content-Type", "text/xml; charset=utf-8")
    return HttpRequest("POST", "/", headers=headers, body=body)


def test_forwards_rpc_call(world):
    registry, dispatcher, client = world
    reply = client.call_soap("http://wsd:8000/rpc/echo", make_echo_request())
    parsed = parse_rpc_response(reply)
    assert parsed.result("return")
    assert dispatcher.stats["forwarded"] == 1


def test_unknown_logical_404(world):
    registry, dispatcher, client = world
    resp = client.post_envelope("http://wsd:8000/rpc/ghost", make_echo_request())
    assert resp.status == 404
    assert Envelope.from_bytes(resp.body).is_fault()
    assert dispatcher.stats["rejected"] == 1


def test_missing_logical_name_404(world):
    registry, dispatcher, client = world
    resp = client.post_envelope("http://wsd:8000/rpc", make_echo_request())
    assert resp.status == 404


def test_invalid_xml_400(world):
    registry, dispatcher, client = world
    resp = client.request("http://wsd:8000/rpc/echo", soap_post(b"garbage"))
    assert resp.status == 400


def test_oversized_body_413(world, inproc):
    registry, dispatcher, client = world
    dispatcher.max_body = 10
    resp = client.request(
        "http://wsd:8000/rpc/echo", soap_post(make_echo_request().to_bytes())
    )
    assert resp.status == 413


def test_non_post_405(world):
    registry, dispatcher, client = world
    resp = client.request("http://wsd:8000/rpc/echo", HttpRequest("GET", "/"))
    assert resp.status == 405


def test_unreachable_service_502(world):
    registry, dispatcher, client = world
    registry.register("dead", "http://nowhere:1/svc")
    resp = client.post_envelope("http://wsd:8000/rpc/dead", make_echo_request())
    assert resp.status == 502
    assert dispatcher.stats["failed"] == 1


def test_service_fault_relayed(world, inproc):
    registry, dispatcher, client = world

    def faulting(envelope, ctx):
        return Envelope(Fault("Server", "deliberate").to_element(envelope.version))

    app = SoapHttpApp()
    app.mount("/bad", FunctionService(faulting))
    ws = HttpServer(inproc.listen("bad:9100"), app.handle_request).start()
    registry.register("bad", "http://bad:9100/bad")
    resp = client.post_envelope("http://wsd:8000/rpc/bad", make_echo_request())
    assert resp.status == 500
    fault = Fault.from_element(Envelope.from_bytes(resp.body).body)
    assert fault.reason == "deliberate"
    ws.stop()


def test_via_header_added(world, inproc):
    registry, dispatcher, client = world
    seen = {}

    def spy(envelope, ctx):
        seen["via"] = ctx.http_request.headers.get("Via")
        return build_rpc_response(
            RpcResponse("urn:repro:echo", "echo", [("return", "")]),
        )

    app = SoapHttpApp()
    app.mount("/spy", FunctionService(spy))
    ws = HttpServer(inproc.listen("spy:9200"), app.handle_request).start()
    registry.register("spy", "http://spy:9200/spy")
    client.call_soap("http://wsd:8000/rpc/spy", make_echo_request())
    assert "rpc-dispatcher" in seen["via"]
    ws.stop()


def test_sso_inspector_enforced(world, inproc):
    registry, dispatcher, client = world
    issuer = TokenIssuer(b"secret")
    issuer.add_principal("alice", "pw")
    gate = SsoGate(issuer)
    gate.restrict("echo", ["alice"])
    dispatcher.inspector = gate

    # anonymous call rejected
    resp = client.post_envelope("http://wsd:8000/rpc/echo", make_echo_request())
    assert resp.status == 401

    # authorized call passes
    token = issuer.login("alice", "pw")
    env = attach_token(make_echo_request(), token)
    reply = client.call_soap("http://wsd:8000/rpc/echo", env)
    assert parse_rpc_response(reply).result("return") is not None

"""Tests for the operational status page."""

import pytest

from repro.core import RpcDispatcher, ServiceRegistry
from repro.core.status import StatusPage
from repro.http import HttpRequest
from repro.msgbox import MailboxStore, MsgBoxService
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.workload.echo import EchoService, make_echo_request


def test_add_requires_stats_or_callable():
    page = StatusPage()
    with pytest.raises(TypeError):
        page.add("bogus", object())


def test_add_rejects_duplicate_names():
    """Regression: a duplicate name used to silently shadow the original."""
    page = StatusPage()
    page.add("svc", lambda: {"a": 1})
    with pytest.raises(ValueError, match="already registered"):
        page.add("svc", lambda: {"a": 2})
    assert page.snapshot()["svc"] == {"a": 1}


def test_add_suffixes_duplicates_on_request():
    page = StatusPage(suffix_duplicates=True)
    assert page.add("svc", lambda: {"a": 1}) == "svc"
    assert page.add("svc", lambda: {"a": 2}) == "svc#2"
    snap = page.snapshot()
    assert snap["svc"] == {"a": 1}
    assert snap["svc#2"] == {"a": 2}


def test_sources_visible_through_metrics_json_view():
    """StatusPage is a thin wrapper: the same sources feed /metrics JSON."""
    page = StatusPage()
    page.add("svc", lambda: {"handled": 7})
    snapshot = page.introspection.json_snapshot()
    assert snapshot["components"]["svc"] == {"handled": 7}


def test_snapshot_collects_all_sources():
    page = StatusPage()
    page.add("constant", lambda: {"a": 1})
    page.add("msgbox", MsgBoxService(MailboxStore()))
    snap = page.snapshot()
    assert snap["constant"] == {"a": 1}
    assert isinstance(snap["msgbox"], dict)


def test_broken_source_reported_not_fatal():
    page = StatusPage()
    page.add("broken", lambda: 1 / 0)
    page.add("fine", lambda: {"ok": 1})
    snap = page.snapshot()
    assert "error" in snap["broken"]
    assert snap["fine"] == {"ok": 1}


def test_render_text_shape():
    page = StatusPage(title="t")
    page.add("x", lambda: {"b": 2, "a": 1})
    text = page.render_text()
    assert text.startswith("# t\n[x]\n  a = 1\n  b = 2")


def test_live_deployment_status(inproc):
    """The status endpoint reflects real traffic counters."""
    app = SoapHttpApp()
    app.mount("/echo", EchoService())
    ws = HttpServer(inproc.listen("ws:9000"), app.handle_request).start()

    registry = ServiceRegistry()
    registry.register("echo", "http://ws:9000/echo")
    dispatcher = RpcDispatcher(registry, HttpClient(inproc))

    page = StatusPage()
    page.add("rpc-dispatcher", dispatcher)
    page.add("registry", lambda: registry.stats)

    front_app = SoapHttpApp()
    front_app.mount_page("/status", page.page_handler)

    def front(request, peer=None):
        if request.target.startswith("/rpc"):
            return dispatcher.handle_request(request, peer)
        return front_app.handle_request(request, peer)

    wsd = HttpServer(inproc.listen("wsd:8000"), front).start()
    client = HttpClient(inproc)
    for _ in range(3):
        client.post_envelope("http://wsd:8000/rpc/echo", make_echo_request())

    resp = client.request("http://wsd:8000/status", HttpRequest("GET", "/"))
    text = resp.body.decode()
    assert resp.status == 200
    assert "forwarded = 3" in text
    assert "lookups = 3" in text
    ws.stop()
    wsd.stop()
    client.close()

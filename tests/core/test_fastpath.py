"""End-to-end fast-path tests: the dispatcher hot path must never fall
back to a full DOM parse, and disabling the knob must not change behavior."""

import time

import pytest

from repro.core.msg_dispatcher import MsgDispatcher, MsgDispatcherConfig
from repro.core.registry import ServiceRegistry
from repro.core.rpc_dispatcher import RpcDispatcher
from repro.msgbox import MailboxStore, MsgBoxService
from repro.msgbox.client import MsgBoxClient
from repro.obs.metrics import MetricsRegistry
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.soap import fastpath_counter, parse_rpc_response
from repro.util.ids import IdGenerator
from repro.workload.echo import (
    AsyncEchoService,
    EchoService,
    make_echo_message,
    make_echo_request,
)


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def fastpath_outcomes(registry) -> dict[str, float]:
    return {
        labels["outcome"]: child.get()
        for labels, child in fastpath_counter(registry).samples()
    }


@pytest.fixture
def msg_world(inproc, request):
    """Async echo WS + MSG dispatcher + mailbox with a private registry."""
    fast = getattr(request, "param", True)
    metrics = MetricsRegistry()
    ws_client = HttpClient(inproc)
    echo = AsyncEchoService(ws_client, ids=IdGenerator("ws", seed=1))
    ws_app = SoapHttpApp(metrics=metrics, fast_path=fast)
    ws_app.mount("/echo", echo)
    ws = HttpServer(
        inproc.listen("ws:9000"), ws_app.handle_request, workers=4, metrics=metrics
    ).start()

    registry = ServiceRegistry()
    registry.register("echo", "http://ws:9000/echo")
    dispatcher = MsgDispatcher(
        registry,
        HttpClient(inproc),
        own_address="http://wsd:8000/msg",
        config=MsgDispatcherConfig(cx_threads=2, ws_threads=4, fast_path=fast),
        metrics=metrics,
    )
    msgbox = MsgBoxService(MailboxStore(), base_url="http://wsd:8000/mailbox")
    app = SoapHttpApp(metrics=metrics, fast_path=fast)
    app.mount("/msg", dispatcher)
    app.mount("/mailbox", msgbox)
    front = HttpServer(
        inproc.listen("wsd:8000"), app.handle_request, workers=8, metrics=metrics
    ).start()

    client = HttpClient(inproc)
    ids = IdGenerator("client", seed=2)
    yield metrics, dispatcher, client, ids, echo
    dispatcher.stop()
    ws.stop()
    front.stop()
    client.close()
    ws_client.close()


def test_hot_path_never_falls_back_to_dom_parse(msg_world, inproc):
    metrics, dispatcher, client, ids, echo = msg_world
    mbc = MsgBoxClient(HttpClient(inproc), "http://wsd:8000/mailbox")
    mbc.create()
    for _ in range(5):
        msg = make_echo_message(
            to="urn:wsd:echo", message_id=ids.next(), reply_to=mbc.epr()
        )
        client.post_envelope("http://wsd:8000/msg/echo", msg)
    messages = mbc.poll(expected=5, timeout=5)
    assert len(messages) == 5
    assert parse_rpc_response(messages[0]).result("return") is not None

    outcomes = fastpath_outcomes(metrics)
    # request ingest + response absorption, at the front door and the WS
    assert outcomes.get("fast", 0) >= 10
    bailed = {k: v for k, v in outcomes.items() if k != "fast" and v}
    assert bailed == {}, f"hot path fell back to the DOM parser: {bailed}"
    # forwarded messages were spliced, not re-serialized from a tree
    assert dispatcher.stats.get("forwarded_spliced", 0) >= 10


@pytest.mark.parametrize("msg_world", [False], indirect=True)
def test_disabled_fast_path_still_delivers(msg_world, inproc):
    metrics, dispatcher, client, ids, echo = msg_world
    mbc = MsgBoxClient(HttpClient(inproc), "http://wsd:8000/mailbox")
    mbc.create()
    msg = make_echo_message(
        to="urn:wsd:echo", message_id=ids.next(), reply_to=mbc.epr()
    )
    client.post_envelope("http://wsd:8000/msg/echo", msg)
    assert len(mbc.poll(expected=1, timeout=5)) == 1

    outcomes = fastpath_outcomes(metrics)
    assert outcomes.get("disabled", 0) >= 1
    assert outcomes.get("fast", 0) == 0
    assert dispatcher.stats.get("forwarded_spliced", 0) == 0


@pytest.fixture
def rpc_world(inproc):
    metrics = MetricsRegistry()
    app = SoapHttpApp(metrics=metrics)
    app.mount("/echo", EchoService())
    ws = HttpServer(inproc.listen("ws:9000"), app.handle_request, workers=4).start()
    registry = ServiceRegistry()
    registry.register("echo", "http://ws:9000/echo")
    dispatcher = RpcDispatcher(registry, HttpClient(inproc), metrics=metrics)
    front = HttpServer(
        inproc.listen("wsd:8000"), dispatcher.handle_request, workers=4
    ).start()
    client = HttpClient(inproc)
    yield metrics, dispatcher, client
    ws.stop()
    front.stop()
    client.close()


def test_rpc_dispatcher_forwards_bytes_verbatim(rpc_world):
    metrics, dispatcher, client = rpc_world
    reply = client.call_soap("http://wsd:8000/rpc/echo", make_echo_request())
    assert parse_rpc_response(reply).result("return")
    outcomes = fastpath_outcomes(metrics)
    assert outcomes.get("fast", 0) >= 1
    assert dispatcher.stats["forwarded"] == 1


def test_rpc_dispatcher_disabled_knob(inproc):
    metrics = MetricsRegistry()
    app = SoapHttpApp(metrics=metrics)
    app.mount("/echo", EchoService())
    ws = HttpServer(inproc.listen("ws:9100"), app.handle_request, workers=2).start()
    registry = ServiceRegistry()
    registry.register("echo", "http://ws:9100/echo")
    dispatcher = RpcDispatcher(
        registry, HttpClient(inproc), metrics=metrics, fast_path=False
    )
    front = HttpServer(
        inproc.listen("wsd:8100"), dispatcher.handle_request, workers=2
    ).start()
    client = HttpClient(inproc)
    try:
        reply = client.call_soap("http://wsd:8100/rpc/echo", make_echo_request())
        assert parse_rpc_response(reply).result("return")
        assert fastpath_outcomes(metrics).get("disabled", 0) >= 1
    finally:
        ws.stop()
        front.stop()
        client.close()

"""Targeted tests for SimMsgDispatcher internals not hit by the figures."""

import pytest

from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.http import Headers, HttpRequest
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer, sim_http_request
from repro.simnet.services import SimAsyncEchoService
from repro.simnet.topology import AccessLink, Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.wsa import EndpointReference


@pytest.fixture
def world(sim):
    net = Network(sim)
    link = AccessLink(5000, 5000, 0.005)
    client = net.add_host("client", link)
    ws = net.add_host("ws", link)
    wsd = net.add_host("wsd", link)
    registry = ServiceRegistry()
    return net, client, ws, wsd, registry


def soap_post(path, body):
    headers = Headers()
    headers.set("Content-Type", SOAP11_CONTENT_TYPE)
    return HttpRequest("POST", path, headers=headers, body=body)


def test_expired_correlation_drops_response(world):
    net, client, ws, wsd, registry = world
    sim = net.sim
    echo = SimAsyncEchoService(net, ws, response_delay=2.0)  # slow reply
    SimHttpServer(net, ws, 9000, echo.handler)
    registry.register("echo", "http://ws:9000/echo")
    disp = SimMsgDispatcher(
        net, wsd, registry, own_address="http://wsd:8000/msg",
        config=SimMsgDispatcherConfig(correlation_ttl=0.5),  # expires first
    )
    SimHttpServer(net, wsd, 8000, disp.handler)
    ids = IdGenerator("x", seed=1)

    def send():
        msg = make_echo_message(
            to="urn:wsd:echo", message_id=ids.next(),
            reply_to=EndpointReference("http://client:7000/inbox"),
        )
        yield from sim_http_request(
            net, client, "wsd", 8000, soap_post("/msg/echo", msg.to_bytes())
        )

    sim.run(sim.process(send()))
    sim.run(until=sim.now + 10.0)
    assert disp.stats.get("expired_correlations", 0) == 1
    assert disp.stats.get("routed_responses", 0) == 0


def test_malformed_body_rejected_400(world):
    net, client, ws, wsd, registry = world
    sim = net.sim
    disp = SimMsgDispatcher(net, wsd, registry, own_address="http://wsd:8000/msg")
    SimHttpServer(net, wsd, 8000, disp.handler)

    def send():
        resp = yield from sim_http_request(
            net, client, "wsd", 8000, soap_post("/msg/echo", b"not xml at all")
        )
        return resp.status

    assert sim.run(sim.process(send())) == 400
    assert disp.stats["rejected"] == 1


def test_non_post_rejected(world):
    net, client, ws, wsd, registry = world
    sim = net.sim
    disp = SimMsgDispatcher(net, wsd, registry, own_address="http://wsd:8000/msg")
    SimHttpServer(net, wsd, 8000, disp.handler)

    def send():
        resp = yield from sim_http_request(
            net, client, "wsd", 8000, HttpRequest("GET", "/msg/echo")
        )
        return resp.status

    assert sim.run(sim.process(send())) == 405


def test_message_without_wsa_headers_dropped(world):
    net, client, ws, wsd, registry = world
    sim = net.sim
    registry.register("echo", "http://ws:9000/echo")
    disp = SimMsgDispatcher(net, wsd, registry, own_address="http://wsd:8000/msg")
    SimHttpServer(net, wsd, 8000, disp.handler)
    from repro.workload.echo import make_echo_request

    def send():
        resp = yield from sim_http_request(
            net, client, "wsd", 8000,
            soap_post("/msg/echo", make_echo_request().to_bytes()),
        )
        return resp.status

    # accepted (202) but unroutable without MessageID
    assert sim.run(sim.process(send())) == 202
    sim.run(until=sim.now + 2.0)
    assert disp.stats.get("dropped_unroutable", 0) == 1


def test_anonymous_reply_to_response_dropped(world):
    net, client, ws, wsd, registry = world
    sim = net.sim
    echo = SimAsyncEchoService(net, ws)
    SimHttpServer(net, ws, 9000, echo.handler)
    registry.register("echo", "http://ws:9000/echo")
    disp = SimMsgDispatcher(net, wsd, registry, own_address="http://wsd:8000/msg")
    SimHttpServer(net, wsd, 8000, disp.handler)
    ids = IdGenerator("x", seed=2)

    def send():
        msg = make_echo_message(
            to="urn:wsd:echo", message_id=ids.next(),
            reply_to=EndpointReference.anonymous(),
        )
        yield from sim_http_request(
            net, client, "wsd", 8000, soap_post("/msg/echo", msg.to_bytes())
        )

    sim.run(sim.process(send()))
    sim.run(until=sim.now + 3.0)
    # the WS sees anonymous ReplyTo... the dispatcher rewrote it to itself,
    # so the WS replies to the dispatcher, whose correlation says anonymous
    assert disp.stats.get("dropped_no_reply_to", 0) == 1


def test_stop_halts_processing(world):
    net, client, ws, wsd, registry = world
    sim = net.sim
    registry.register("echo", "http://ws:9000/echo")
    disp = SimMsgDispatcher(net, wsd, registry, own_address="http://wsd:8000/msg")
    SimHttpServer(net, wsd, 8000, disp.handler)
    disp.stop()
    ids = IdGenerator("x", seed=3)

    def send():
        msg = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
        resp = yield from sim_http_request(
            net, client, "wsd", 8000, soap_post("/msg/echo", msg.to_bytes())
        )
        return resp.status

    status = sim.run(sim.process(send()))
    assert status == 202  # accepted into the queue
    sim.run(until=sim.now + 3.0)
    assert disp.stats.get("routed_requests", 0) == 0  # but never processed

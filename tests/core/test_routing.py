"""Tests for logical-address extraction."""

import pytest

from repro.core.routing import extract_logical, logical_uri
from repro.errors import RoutingError


def test_logical_uri():
    assert logical_uri("echo") == "urn:wsd:echo"
    with pytest.raises(RoutingError):
        logical_uri("")


@pytest.mark.parametrize(
    "address,prefix,expected",
    [
        ("urn:wsd:echo", None, "echo"),
        ("urn:wsd:my-service", "/rpc", "my-service"),
        ("/rpc/echo", "/rpc", "echo"),
        ("/rpc/echo/extra/path", "/rpc", "echo"),
        ("/msg/echo?query=1", "/msg", "echo"),
        ("http://wsd:8000/rpc/echo", "/rpc", "echo"),
        ("http://wsd:8000/echo", None, "echo"),
        ("/echo", None, "echo"),
    ],
)
def test_extract_logical(address, prefix, expected):
    assert extract_logical(address, prefix) == expected


@pytest.mark.parametrize(
    "address,prefix",
    [
        ("urn:wsd:", None),
        ("/rpc", "/rpc"),
        ("/other/echo", "/rpc"),
        ("not-a-path", None),
        ("http://wsd:8000/", None),
        ("http://wsd:8000", "/rpc"),
    ],
)
def test_extract_logical_failures(address, prefix):
    with pytest.raises(RoutingError):
        extract_logical(address, prefix)

"""Pipelined batch delivery on the threaded MSG-Dispatcher drain path.

Exercises ``_deliver_batch`` directly (deterministic batches) and through
the full pipeline: per-item retry/hold semantics must survive the switch
from serial round trips to one pipelined burst, and every burst with
traced items must record a ``pipeline-burst`` span parenting the items'
``deliver`` spans.
"""

import time

import pytest

from repro.core.msg_dispatcher import (
    MsgDispatcher,
    MsgDispatcherConfig,
    _OutboundItem,
)
from repro.core.registry import ServiceRegistry
from repro.http import HttpResponse
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceContext, TraceStore
from repro.reliable import FixedDelay
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.util.ids import IdGenerator
from repro.workload.echo import AsyncEchoService, make_echo_message
from repro.rt.service import SoapHttpApp


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


@pytest.fixture
def sink(inproc):
    """HTTP sink answering per-body: b"fail" -> 500, else 202."""
    served = []

    def handler(request, peer=None):
        served.append(request.body)
        if b"fail" in request.body:
            return HttpResponse(status=500)
        return HttpResponse(status=202)

    srv = HttpServer(inproc.listen("sink:9100"), handler, workers=4).start()
    yield served
    srv.stop()


@pytest.fixture
def dispatcher(inproc):
    metrics = MetricsRegistry()
    traces = TraceStore()
    registry = ServiceRegistry(metrics=metrics)
    d = MsgDispatcher(
        registry,
        HttpClient(inproc, metrics=metrics),
        own_address="http://wsd:8000/msg",
        config=MsgDispatcherConfig(cx_threads=1, ws_threads=2),
        metrics=metrics,
        traces=traces,
    )
    yield d
    d.stop()
    d.client.close()


def _item(body: bytes, trace: TraceContext | None = None) -> _OutboundItem:
    return _OutboundItem(
        envelope_bytes=body,
        target_url="http://sink:9100/svc",
        message_id=None,
        trace=trace,
        parent_span_id=trace.parent_span_id if trace else None,
        enqueued_at=0.0,
    )


def test_deliver_batch_delivers_every_item_in_order(sink, dispatcher):
    batch = [_item(b"<m%d/>" % i) for i in range(5)]
    dispatcher._deliver_batch(batch)
    assert dispatcher.stats.get("delivered") == 5
    assert sink == [b"<m0/>", b"<m1/>", b"<m2/>", b"<m3/>", b"<m4/>"]
    assert dispatcher.client._m_pipeline_bursts.labels().get() == 1


def test_burst_span_parents_per_item_deliver_spans(sink, dispatcher):
    traces = dispatcher.traces
    ctxs = [
        TraceContext(f"trace-p{i}", parent_span_id=f"route-{i}")
        for i in range(3)
    ]
    batch = [_item(b"<t%d/>" % i, trace=ctxs[i]) for i in range(3)]
    dispatcher._deliver_batch(batch)
    burst_sids = set()
    for ctx in ctxs:
        spans = traces.get(ctx.trace_id)
        burst = [s for s in spans if s.name == "pipeline-burst"]
        deliver = [s for s in spans if s.name == "deliver"]
        assert len(burst) == 1
        assert len(deliver) == 1
        # the burst span hangs off the item's route span; the item's
        # deliver span hangs off the shared burst span
        assert burst[0].parent_id.startswith("route-")
        assert deliver[0].parent_id == burst[0].span_id
        assert burst[0].attrs["size"] == "3"
        burst_sids.add(burst[0].span_id)
    assert len(burst_sids) == 1  # one shared burst span id across the batch


def test_failed_item_in_burst_takes_retry_path(sink, dispatcher):
    dispatcher.config.retry = FixedDelay(max_attempts=2, delay=0.0)
    batch = [_item(b"<ok-a/>"), _item(b"<fail/>"), _item(b"<ok-b/>")]
    dispatcher._deliver_batch(batch)
    # the two good items delivered; the 500 item took the retry path
    assert dispatcher.stats.get("delivered") == 2
    assert dispatcher.stats.get("retries") == 1
    # its destination queue does not exist (the batch never went through
    # _enqueue), so the re-enqueue degrades to a counted delivery failure
    # — which keeps this test deterministic
    assert dispatcher.stats.get("delivery_failures") == 1
    assert batch[1].attempts == 1


def test_failed_item_in_burst_parks_in_hold_store(inproc, sink):
    held = []

    class HoldStub:
        def hold(self, message_id, target_url, body):
            held.append((message_id, target_url, body))

        def pump(self):
            pass

    metrics = MetricsRegistry()
    registry = ServiceRegistry(metrics=metrics)
    d = MsgDispatcher(
        registry,
        HttpClient(inproc, metrics=metrics),
        own_address="http://wsd:8000/msg",
        config=MsgDispatcherConfig(cx_threads=1, ws_threads=2),
        hold_store=HoldStub(),
        metrics=metrics,
        traces=TraceStore(),
    )
    try:
        good, bad = _item(b"<ok/>"), _item(b"<fail/>")
        bad.message_id = "uuid:held-1"
        d._deliver_batch([good, bad])
        assert d.stats.get("delivered") == 1
        assert held == [("uuid:held-1", "http://sink:9100/svc", b"<fail/>")]
        assert d.stats.get("held_for_retry") == 1
    finally:
        d.stop()
        d.client.close()


def test_unreachable_destination_fails_every_item(inproc, dispatcher):
    batch = [
        _OutboundItem(b"<x%d/>" % i, "http://nowhere:1/x") for i in range(3)
    ]
    dispatcher._deliver_batch(batch)
    assert dispatcher.stats.get("delivery_failures") == 3
    assert dispatcher.stats.get("delivered") is None


def test_serial_and_pipelined_drain_agree_end_to_end(inproc):
    """Same traffic, both drain modes: identical delivery counts."""
    outcomes = {}
    for pipelined in (False, True):
        net_ns = type(inproc)()  # fresh inproc namespace per mode
        metrics = MetricsRegistry()
        ws_client = HttpClient(net_ns, metrics=metrics)
        echo = AsyncEchoService(ws_client, ids=IdGenerator("ws", seed=3))
        ws_app = SoapHttpApp()
        ws_app.mount("/echo", echo)
        ws = HttpServer(
            net_ns.listen("ws:9000"), ws_app.handle_request, workers=4
        ).start()
        registry = ServiceRegistry(metrics=metrics)
        registry.register("echo", "http://ws:9000/echo")
        d = MsgDispatcher(
            registry,
            HttpClient(net_ns, metrics=metrics),
            own_address="http://wsd:8000/msg",
            config=MsgDispatcherConfig(
                cx_threads=2, ws_threads=2, pipeline_batches=pipelined,
                destination_idle_ttl=0.5,
            ),
            metrics=metrics,
            traces=TraceStore(),
        )
        app = SoapHttpApp()
        app.mount("/msg", d)
        front = HttpServer(
            net_ns.listen("wsd:8000"), app.handle_request, workers=8
        ).start()
        client = HttpClient(net_ns, metrics=metrics)
        ids = IdGenerator("cli", seed=4)
        for _ in range(12):
            msg = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
            client.post_envelope("http://wsd:8000/msg/echo", msg)
        assert wait_for(lambda: echo.received == 12)
        assert wait_for(lambda: d.stats.get("delivered", 0) == 12)
        outcomes[pipelined] = d.stats.get("delivered")
        d.stop()
        front.stop()
        ws.stop()
        client.close()
        ws_client.close()
    assert outcomes[False] == outcomes[True] == 12

"""Property tests for logical-address routing."""

from hypothesis import given, settings, strategies as st

from repro.core.routing import extract_logical, logical_uri

_names = st.from_regex(r"[A-Za-z][A-Za-z0-9._-]{0,20}", fullmatch=True)


@given(_names)
@settings(max_examples=200, deadline=None)
def test_logical_uri_extract_inverse(name):
    assert extract_logical(logical_uri(name)) == name


@given(_names, st.sampled_from(["/rpc", "/msg", "/bridge"]))
@settings(max_examples=200, deadline=None)
def test_path_form_extract_inverse(name, prefix):
    assert extract_logical(f"{prefix}/{name}", prefix) == name
    assert extract_logical(f"{prefix}/{name}/extra/segments", prefix) == name
    assert extract_logical(f"{prefix}/{name}?q=1", prefix) == name


@given(_names, st.integers(1, 65535))
@settings(max_examples=100, deadline=None)
def test_url_form_extract_inverse(name, port):
    url = f"http://dispatcher.example:{port}/rpc/{name}"
    assert extract_logical(url, "/rpc") == name

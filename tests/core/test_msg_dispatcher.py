"""Tests for the threaded MSG-Dispatcher."""

import time

import pytest

from repro.core.msg_dispatcher import MsgDispatcher, MsgDispatcherConfig
from repro.core.registry import ServiceRegistry
from repro.msgbox import MailboxStore, MsgBoxService
from repro.msgbox.client import MsgBoxClient
from repro.reliable import FixedDelay
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.soap import parse_rpc_response
from repro.util.ids import IdGenerator
from repro.workload.echo import AsyncEchoService, EchoService, make_echo_message
from repro.wsa import EndpointReference


@pytest.fixture
def world(inproc):
    """Async echo WS + dispatcher + mailbox, threaded over inproc."""
    ws_client = HttpClient(inproc)
    echo = AsyncEchoService(ws_client, ids=IdGenerator("ws", seed=1))
    ws_app = SoapHttpApp()
    ws_app.mount("/echo", echo)
    ws = HttpServer(inproc.listen("ws:9000"), ws_app.handle_request, workers=4).start()

    registry = ServiceRegistry()
    registry.register("echo", "http://ws:9000/echo")

    dispatcher = MsgDispatcher(
        registry,
        HttpClient(inproc),
        own_address="http://wsd:8000/msg",
        config=MsgDispatcherConfig(cx_threads=2, ws_threads=4,
                                   destination_idle_ttl=0.5),
    )
    msgbox = MsgBoxService(MailboxStore(), base_url="http://wsd:8000/mailbox")
    app = SoapHttpApp()
    app.mount("/msg", dispatcher)
    app.mount("/mailbox", msgbox)
    front = HttpServer(inproc.listen("wsd:8000"), app.handle_request, workers=8).start()

    client = HttpClient(inproc)
    ids = IdGenerator("client", seed=2)
    yield registry, dispatcher, msgbox, client, ids, echo
    dispatcher.stop()
    ws.stop()
    front.stop()
    client.close()
    ws_client.close()


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def test_one_way_message_forwarded(world):
    registry, dispatcher, msgbox, client, ids, echo = world
    msg = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
    resp = client.post_envelope("http://wsd:8000/msg/echo", msg)
    assert resp.status == 202
    assert wait_for(lambda: echo.received == 1)
    assert dispatcher.stats.get("routed_requests") == 1


def test_response_routed_to_mailbox(world, inproc):
    registry, dispatcher, msgbox, client, ids, echo = world
    mbc = MsgBoxClient(HttpClient(inproc), "http://wsd:8000/mailbox")
    mbc.create()
    msg = make_echo_message(
        to="urn:wsd:echo", message_id=ids.next(), reply_to=mbc.epr()
    )
    client.post_envelope("http://wsd:8000/msg/echo", msg)
    messages = mbc.poll(expected=1, timeout=5)
    assert len(messages) == 1
    parsed = parse_rpc_response(messages[0])
    assert parsed.result("return") is not None
    assert dispatcher.stats.get("routed_responses") == 1


def test_unknown_service_counted(world):
    registry, dispatcher, msgbox, client, ids, echo = world
    msg = make_echo_message(to="urn:wsd:ghost", message_id=ids.next())
    resp = client.post_envelope("http://wsd:8000/msg/ghost", msg)
    assert resp.status == 202  # accepted before routing (async semantics)
    assert wait_for(lambda: dispatcher.stats.get("unknown_service", 0) == 1)


def test_correlation_expires(world):
    registry, dispatcher, msgbox, client, ids, echo = world
    dispatcher.config.correlation_ttl = 0.0  # expire immediately
    msg = make_echo_message(
        to="urn:wsd:echo",
        message_id=ids.next(),
        reply_to=EndpointReference("http://client:1/inbox"),
    )
    client.post_envelope("http://wsd:8000/msg/echo", msg)
    assert wait_for(
        lambda: dispatcher.stats.get("expired_correlations", 0) >= 1
        or dispatcher.pending_correlations() == 0
    )


def test_batching_multiple_messages(world):
    registry, dispatcher, msgbox, client, ids, echo = world
    for _ in range(10):
        msg = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
        client.post_envelope("http://wsd:8000/msg/echo", msg)
    assert wait_for(lambda: echo.received == 10)
    assert dispatcher.stats.get("delivered") == 10


def test_delivery_failure_counted(world):
    registry, dispatcher, msgbox, client, ids, echo = world
    registry.register("dead", "http://nowhere:1/x")
    msg = make_echo_message(to="urn:wsd:dead", message_id=ids.next())
    client.post_envelope("http://wsd:8000/msg/dead", msg)
    assert wait_for(lambda: dispatcher.stats.get("delivery_failures", 0) == 1)


def test_retry_policy_applied(world, inproc):
    registry, dispatcher, msgbox, client, ids, echo = world
    dispatcher.config.retry = FixedDelay(max_attempts=3, delay=0.01)
    registry.register("flaky", "http://flaky:9300/x")
    msg = make_echo_message(to="urn:wsd:flaky", message_id=ids.next())
    client.post_envelope("http://wsd:8000/msg/flaky", msg)
    # service never comes up: 3 attempts then failure
    assert wait_for(lambda: dispatcher.stats.get("delivery_failures", 0) == 1)
    assert dispatcher.stats.get("retries", 0) == 2


def test_rejects_when_accept_queue_full(world):
    registry, dispatcher, msgbox, client, ids, echo = world
    dispatcher.config.accept_queue = 1  # note: queue object already built
    # fill the real accept queue by stopping cx consumption
    # simpler: verify the handler raises cleanly on a closed dispatcher
    dispatcher.stop()
    msg = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
    resp = client.post_envelope("http://wsd:8000/msg/echo", msg)
    assert resp.status == 500  # fault barrier converts ReproError


def test_inband_rpc_response_translated(world, inproc):
    """Quadrant 3: messaging client, RPC service behind the dispatcher."""
    registry, dispatcher, msgbox, client, ids, echo = world
    app = SoapHttpApp()
    app.mount("/rpc-echo", EchoService())
    ws = HttpServer(inproc.listen("rpcws:9400"), app.handle_request).start()
    registry.register("rpc-echo", "http://rpcws:9400/rpc-echo")

    mbc = MsgBoxClient(HttpClient(inproc), "http://wsd:8000/mailbox")
    mbc.create()
    msg = make_echo_message(
        to="urn:wsd:rpc-echo", message_id=ids.next(), reply_to=mbc.epr()
    )
    client.post_envelope("http://wsd:8000/msg/rpc-echo", msg)
    messages = mbc.poll(expected=1, timeout=5)
    assert len(messages) == 1
    assert dispatcher.stats.get("inband_responses") == 1
    ws.stop()

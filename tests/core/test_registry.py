"""Tests for the service registry."""

import threading

import pytest

from repro.core.registry import REGISTRY_NS, RegistryService, ServiceRegistry
from repro.errors import RegistryError, UnknownServiceError
from repro.rt.service import RequestContext
from repro.soap import RpcRequest, build_rpc_request, parse_rpc_response


class TestRegistry:
    def test_register_and_resolve(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://inside:8080/echo")
        assert reg.resolve("echo") == "http://inside:8080/echo"

    def test_unknown_service(self):
        with pytest.raises(UnknownServiceError):
            ServiceRegistry().resolve("ghost")

    def test_record_requires_physical(self):
        with pytest.raises(RegistryError):
            ServiceRegistry().register("x", [])

    def test_record_requires_logical(self):
        with pytest.raises(RegistryError):
            ServiceRegistry().register("", "http://x/")

    def test_multiple_physical_addresses(self):
        reg = ServiceRegistry()
        reg.register("echo", ["http://a/", "http://b/"])
        assert reg.lookup("echo").physical == ["http://a/", "http://b/"]
        assert reg.resolve("echo") == "http://a/"  # default selector: first

    def test_add_remove_physical(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://a/")
        reg.add_physical("echo", "http://b/")
        reg.add_physical("echo", "http://b/")  # idempotent
        assert reg.lookup("echo").physical == ["http://a/", "http://b/"]
        reg.remove_physical("echo", "http://a/")
        assert reg.lookup("echo").physical == ["http://b/"]

    def test_cannot_remove_last_physical(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://a/")
        with pytest.raises(RegistryError):
            reg.remove_physical("echo", "http://a/")

    def test_unregister(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://a/")
        assert reg.unregister("echo") is True
        assert reg.unregister("echo") is False
        assert "echo" not in reg

    def test_disabled_service_not_resolvable(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://a/")
        reg.set_enabled("echo", False)
        with pytest.raises(UnknownServiceError):
            reg.resolve("echo")
        reg.set_enabled("echo", True)
        assert reg.resolve("echo")

    def test_custom_selector(self):
        reg = ServiceRegistry(selector=lambda record: record.physical[-1])
        reg.register("echo", ["http://a/", "http://b/"])
        assert reg.resolve("echo") == "http://b/"

    def test_stats_track_lookups_and_misses(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://a/")
        reg.resolve("echo")
        with pytest.raises(UnknownServiceError):
            reg.resolve("nope")
        assert reg.stats == {"lookups": 2, "misses": 1}

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "reg.txt")
        reg = ServiceRegistry(persist_path=path)
        reg.register("echo", ["http://a/", "http://b/"], metadata={"owner": "x"})
        reg.register("other", "http://c/")
        reloaded = ServiceRegistry(persist_path=path)
        assert reloaded.lookup("echo").physical == ["http://a/", "http://b/"]
        assert reloaded.lookup("echo").metadata == {"owner": "x"}
        assert len(reloaded) == 2

    def test_unregister_persists(self, tmp_path):
        path = str(tmp_path / "reg.txt")
        reg = ServiceRegistry(persist_path=path)
        reg.register("echo", "http://a/")
        reg.unregister("echo")
        assert len(ServiceRegistry(persist_path=path)) == 0

    def test_check_alive_records_health(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://a/")
        assert reg.check_alive("echo", lambda addr: True, now=100.0) is True
        assert reg.lookup("echo").last_health == (100.0, True)
        assert reg.check_alive("echo", lambda addr: 1 / 0, now=101.0) is False
        assert reg.lookup("echo").last_health == (101.0, False)

    def test_concurrent_registration(self):
        reg = ServiceRegistry()

        def worker(prefix):
            for i in range(100):
                reg.register(f"{prefix}-{i}", f"http://{prefix}/{i}")
                reg.resolve(f"{prefix}-{i}")

        threads = [threading.Thread(target=worker, args=(p,)) for p in "abcd"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(reg) == 400


class TestRegistryService:
    def call(self, svc, op, params):
        env = build_rpc_request(RpcRequest(REGISTRY_NS, op, params))
        reply = svc.handle(env, RequestContext(path="/registry"))
        return parse_rpc_response(reply)

    def test_register_and_lookup_via_soap(self):
        svc = RegistryService(ServiceRegistry())
        resp = self.call(
            svc,
            "register",
            [("logical", "echo"), ("physical", "http://a/"), ("meta_owner", "bob")],
        )
        assert resp.result("status") == "ok"
        resp = self.call(svc, "lookup", [("logical", "echo")])
        assert resp.result("physical") == "http://a/"
        assert svc.registry.lookup("echo").metadata == {"owner": "bob"}

    def test_list_operation(self):
        svc = RegistryService(ServiceRegistry())
        svc.registry.register("b", "http://b/")
        svc.registry.register("a", "http://a/")
        resp = self.call(svc, "list", [])
        assert [v for k, v in resp.results if k == "logical"] == ["a", "b"]

    def test_unregister(self):
        svc = RegistryService(ServiceRegistry())
        svc.registry.register("echo", "http://a/")
        assert self.call(svc, "unregister", [("logical", "echo")]).result("status") == "ok"
        assert (
            self.call(svc, "unregister", [("logical", "echo")]).result("status")
            == "absent"
        )

    def test_unknown_operation(self):
        svc = RegistryService(ServiceRegistry())
        with pytest.raises(RegistryError):
            self.call(svc, "frobnicate", [])

    def test_wrong_interface_rejected(self):
        svc = RegistryService(ServiceRegistry())
        env = build_rpc_request(RpcRequest("urn:wrong", "lookup", []))
        with pytest.raises(RegistryError):
            svc.handle(env, RequestContext(path="/registry"))

    def test_render_listing_html(self):
        svc = RegistryService(ServiceRegistry())
        svc.registry.register("echo", "http://a/", metadata={"desc": "test"})
        svc.registry.check_alive("echo", lambda a: True)
        html = svc.render_listing()
        assert "echo" in html and "http://a/" in html and "[alive]" in html

    def test_render_listing_empty(self):
        html = RegistryService(ServiceRegistry()).render_listing()
        assert "no services" in html

"""Tests for the service registry."""

import threading

import pytest

from repro.core.registry import REGISTRY_NS, RegistryService, ServiceRegistry
from repro.errors import RegistryError, UnknownServiceError
from repro.rt.service import RequestContext
from repro.soap import RpcRequest, build_rpc_request, parse_rpc_response


class TestRegistry:
    def test_register_and_resolve(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://inside:8080/echo")
        assert reg.resolve("echo") == "http://inside:8080/echo"

    def test_unknown_service(self):
        with pytest.raises(UnknownServiceError):
            ServiceRegistry().resolve("ghost")

    def test_record_requires_physical(self):
        with pytest.raises(RegistryError):
            ServiceRegistry().register("x", [])

    def test_record_requires_logical(self):
        with pytest.raises(RegistryError):
            ServiceRegistry().register("", "http://x/")

    def test_multiple_physical_addresses(self):
        reg = ServiceRegistry()
        reg.register("echo", ["http://a/", "http://b/"])
        assert reg.lookup("echo").physical == ["http://a/", "http://b/"]
        assert reg.resolve("echo") == "http://a/"  # default selector: first

    def test_add_remove_physical(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://a/")
        reg.add_physical("echo", "http://b/")
        reg.add_physical("echo", "http://b/")  # idempotent
        assert reg.lookup("echo").physical == ["http://a/", "http://b/"]
        reg.remove_physical("echo", "http://a/")
        assert reg.lookup("echo").physical == ["http://b/"]

    def test_cannot_remove_last_physical(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://a/")
        with pytest.raises(RegistryError):
            reg.remove_physical("echo", "http://a/")

    def test_unregister(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://a/")
        assert reg.unregister("echo") is True
        assert reg.unregister("echo") is False
        assert "echo" not in reg

    def test_disabled_service_not_resolvable(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://a/")
        reg.set_enabled("echo", False)
        with pytest.raises(UnknownServiceError):
            reg.resolve("echo")
        reg.set_enabled("echo", True)
        assert reg.resolve("echo")

    def test_custom_selector(self):
        reg = ServiceRegistry(selector=lambda record: record.physical[-1])
        reg.register("echo", ["http://a/", "http://b/"])
        assert reg.resolve("echo") == "http://b/"

    def test_stats_track_lookups_and_misses(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://a/")
        reg.resolve("echo")
        with pytest.raises(UnknownServiceError):
            reg.resolve("nope")
        assert reg.stats == {"lookups": 2, "misses": 1}

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "reg.txt")
        reg = ServiceRegistry(persist_path=path)
        reg.register("echo", ["http://a/", "http://b/"], metadata={"owner": "x"})
        reg.register("other", "http://c/")
        reloaded = ServiceRegistry(persist_path=path)
        assert reloaded.lookup("echo").physical == ["http://a/", "http://b/"]
        assert reloaded.lookup("echo").metadata == {"owner": "x"}
        assert len(reloaded) == 2

    def test_unregister_persists(self, tmp_path):
        path = str(tmp_path / "reg.txt")
        reg = ServiceRegistry(persist_path=path)
        reg.register("echo", "http://a/")
        reg.unregister("echo")
        assert len(ServiceRegistry(persist_path=path)) == 0

    def test_check_alive_records_health(self):
        reg = ServiceRegistry()
        reg.register("echo", "http://a/")
        assert reg.check_alive("echo", lambda addr: True, now=100.0) is True
        assert reg.lookup("echo").last_health == (100.0, True)
        assert reg.check_alive("echo", lambda addr: 1 / 0, now=101.0) is False
        assert reg.lookup("echo").last_health == (101.0, False)

    def test_concurrent_registration(self):
        reg = ServiceRegistry()

        def worker(prefix):
            for i in range(100):
                reg.register(f"{prefix}-{i}", f"http://{prefix}/{i}")
                reg.resolve(f"{prefix}-{i}")

        threads = [threading.Thread(target=worker, args=(p,)) for p in "abcd"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(reg) == 400


class TestRegistryService:
    def call(self, svc, op, params):
        env = build_rpc_request(RpcRequest(REGISTRY_NS, op, params))
        reply = svc.handle(env, RequestContext(path="/registry"))
        return parse_rpc_response(reply)

    def test_register_and_lookup_via_soap(self):
        svc = RegistryService(ServiceRegistry())
        resp = self.call(
            svc,
            "register",
            [("logical", "echo"), ("physical", "http://a/"), ("meta_owner", "bob")],
        )
        assert resp.result("status") == "ok"
        resp = self.call(svc, "lookup", [("logical", "echo")])
        assert resp.result("physical") == "http://a/"
        assert svc.registry.lookup("echo").metadata == {"owner": "bob"}

    def test_list_operation(self):
        svc = RegistryService(ServiceRegistry())
        svc.registry.register("b", "http://b/")
        svc.registry.register("a", "http://a/")
        resp = self.call(svc, "list", [])
        assert [v for k, v in resp.results if k == "logical"] == ["a", "b"]

    def test_unregister(self):
        svc = RegistryService(ServiceRegistry())
        svc.registry.register("echo", "http://a/")
        assert self.call(svc, "unregister", [("logical", "echo")]).result("status") == "ok"
        assert (
            self.call(svc, "unregister", [("logical", "echo")]).result("status")
            == "absent"
        )

    def test_unknown_operation(self):
        svc = RegistryService(ServiceRegistry())
        with pytest.raises(RegistryError):
            self.call(svc, "frobnicate", [])

    def test_wrong_interface_rejected(self):
        svc = RegistryService(ServiceRegistry())
        env = build_rpc_request(RpcRequest("urn:wrong", "lookup", []))
        with pytest.raises(RegistryError):
            svc.handle(env, RequestContext(path="/registry"))

    def test_render_listing_html(self):
        svc = RegistryService(ServiceRegistry())
        svc.registry.register("echo", "http://a/", metadata={"desc": "test"})
        svc.registry.check_alive("echo", lambda a: True)
        html = svc.render_listing()
        assert "echo" in html and "http://a/" in html and "[alive]" in html

    def test_render_listing_empty(self):
        html = RegistryService(ServiceRegistry()).render_listing()
        assert "no services" in html


class TestLookupCache:
    """Read-through cache in front of ``lookup`` (the CxThread hot path)."""

    def _registry(self, ttl=5.0):
        from repro.obs.metrics import MetricsRegistry

        return ServiceRegistry(metrics=MetricsRegistry(), lookup_cache_ttl=ttl)

    def test_repeat_lookups_hit_the_cache(self):
        reg = self._registry()
        reg.register("echo", "http://ws:9000/echo")
        for _ in range(10):
            assert reg.lookup("echo").logical == "echo"
        stats = reg.cache_stats()
        assert stats == {
            "hits": 9.0, "misses": 1.0, "coalesced": 0.0, "hit_rate": 0.9,
        }

    def test_resolve_goes_through_the_cache(self):
        reg = self._registry()
        reg.register("echo", "http://ws:9000/echo")
        for _ in range(5):
            assert reg.resolve("echo") == "http://ws:9000/echo"
        assert reg.cache_stats()["hits"] == 4.0

    def test_ttl_expiry_re_resolves(self):
        import time as _time

        reg = self._registry(ttl=0.05)
        reg.register("echo", "http://ws:9000/echo")
        reg.lookup("echo")
        reg.lookup("echo")
        assert reg.cache_stats()["hits"] == 1.0
        _time.sleep(0.06)
        reg.lookup("echo")
        assert reg.cache_stats()["misses"] == 2.0  # expired entry re-resolved

    def test_zero_ttl_disables_the_cache(self):
        reg = self._registry(ttl=0)
        reg.register("echo", "http://ws:9000/echo")
        reg.lookup("echo")
        reg.lookup("echo")
        assert reg.cache_stats() == {
            "hits": 0.0, "misses": 0.0, "coalesced": 0.0, "hit_rate": 0.0,
        }

    def test_unknown_name_is_never_negatively_cached(self):
        reg = self._registry()
        with pytest.raises(UnknownServiceError):
            reg.lookup("ghost")
        reg.register("ghost", "http://ws:9000/ghost")
        # resolvable immediately — no stale negative entry
        assert reg.lookup("ghost").logical == "ghost"

    def test_every_mutator_invalidates(self):
        """All five mutators must drop the cached record immediately."""
        reg = self._registry()
        reg.register("svc", "http://a:1/svc")

        def cached_physical():
            return list(reg.lookup("svc").physical)

        assert cached_physical() == ["http://a:1/svc"]

        reg.add_physical("svc", "http://b:2/svc")
        assert cached_physical() == ["http://a:1/svc", "http://b:2/svc"]

        reg.remove_physical("svc", "http://a:1/svc")
        assert cached_physical() == ["http://b:2/svc"]

        reg.register("svc", "http://c:3/svc")  # re-register replaces record
        assert cached_physical() == ["http://c:3/svc"]

        reg.set_enabled("svc", False)
        with pytest.raises(UnknownServiceError):
            reg.lookup("svc")
        reg.set_enabled("svc", True)
        assert cached_physical() == ["http://c:3/svc"]

        reg.unregister("svc")
        with pytest.raises(UnknownServiceError):
            reg.lookup("svc")

    def test_disabled_record_never_served_from_cache(self):
        reg = self._registry()
        reg.register("svc", "http://a:1/svc")
        reg.lookup("svc")  # populate cache
        reg.set_enabled("svc", False)
        with pytest.raises(UnknownServiceError):
            reg.lookup("svc")

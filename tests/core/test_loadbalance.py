"""Tests for load-balancing policies and the dispatcher farm."""

import pytest

from repro.core.loadbalance import (
    DispatcherFarm,
    LeastPending,
    RandomChoice,
    RoundRobin,
    make_policy,
)
from repro.core.registry import ServiceRegistry
from repro.errors import RoutingError


class TestPolicies:
    def test_round_robin_cycles(self):
        rr = RoundRobin()
        addresses = ["a", "b", "c"]
        picks = [rr.select(addresses) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_random_seeded_reproducible(self):
        a = RandomChoice(seed=1)
        b = RandomChoice(seed=1)
        addrs = ["x", "y", "z"]
        assert [a.select(addrs) for _ in range(10)] == [
            b.select(addrs) for _ in range(10)
        ]

    def test_least_pending_prefers_idle(self):
        lp = LeastPending()
        lp.on_start("a")
        lp.on_start("a")
        lp.on_start("b")
        assert lp.select(["a", "b", "c"]) == "c"
        lp.on_finish("a")
        lp.on_finish("a")
        assert lp.select(["a", "b"]) == "a"

    def test_pending_never_negative(self):
        lp = LeastPending()
        lp.on_finish("a")
        assert lp.pending("a") == 0

    def test_pick_counts_tracked(self):
        rr = RoundRobin()
        reg = ServiceRegistry(selector=rr)
        reg.register("svc", ["a", "b"])
        for _ in range(4):
            reg.resolve("svc")
        assert rr.pick_counts == {"a": 2, "b": 2}

    def test_make_policy_factory(self):
        assert make_policy("round_robin").name == "round_robin"
        assert make_policy("random", seed=1).name == "random"
        assert make_policy("least_pending").name == "least_pending"
        with pytest.raises(ValueError):
            make_policy("bogus")


class TestRegistryIntegration:
    def test_round_robin_selector_spreads_resolves(self):
        reg = ServiceRegistry(selector=RoundRobin())
        reg.register("echo", ["http://a/", "http://b/"])
        picks = {reg.resolve("echo") for _ in range(4)}
        assert picks == {"http://a/", "http://b/"}


class TestDispatcherFarm:
    def test_requires_members(self):
        with pytest.raises(RoutingError):
            DispatcherFarm([])

    def test_pick_cycles_members(self):
        farm = DispatcherFarm(["d1", "d2"])
        assert {farm.pick(), farm.pick()} == {"d1", "d2"}

    def test_failover_skips_down_member(self):
        farm = DispatcherFarm(["d1", "d2"])
        farm.report_failure("d1")
        assert all(farm.pick() == "d2" for _ in range(3))
        assert farm.healthy_members == ["d2"]

    def test_all_down_raises(self):
        farm = DispatcherFarm(["d1"])
        farm.report_failure("d1")
        with pytest.raises(RoutingError):
            farm.pick()

    def test_revive(self):
        farm = DispatcherFarm(["d1"])
        farm.report_failure("d1")
        farm.revive("d1")
        assert farm.pick() == "d1"

    def test_probe_all_updates_down_set(self):
        farm = DispatcherFarm(["up", "down", "error"])

        def probe(url):
            if url == "error":
                raise ConnectionError
            return url == "up"

        results = farm.probe_all(probe)
        assert results == {"up": True, "down": False, "error": False}
        assert farm.healthy_members == ["up"]

    def test_least_pending_farm_prefers_fast_member(self):
        farm = DispatcherFarm(["fast", "slow"], policy=LeastPending())
        # simulate: slow member accumulates in-flight requests
        slow_picks = 0
        in_flight = []
        for _ in range(20):
            url = farm.pick()
            if url == "slow":
                slow_picks += 1
                in_flight.append(url)  # never finishes
            else:
                farm.finish(url)
        assert slow_picks <= 2  # once pending, slow stops being chosen

"""Tests for SOAP fault mapping (1.1 and 1.2 shapes)."""

import pytest

from repro.errors import SoapError
from repro.soap import Fault, SoapVersion
from repro.xmlmini import Element, QName, parse, serialize


class TestSoap11:
    def test_roundtrip(self):
        fault = Fault("Client", "bad request", detail="missing param")
        parsed = Fault.from_element(parse(serialize(fault.to_element(SoapVersion.V11))))
        assert parsed == fault

    def test_shape(self):
        el = Fault("Server", "oops").to_element(SoapVersion.V11)
        assert el.name.ns == SoapVersion.V11.ns
        assert el.require(QName(None, "faultcode")).text == "soapenv:Server"
        assert el.require(QName(None, "faultstring")).text == "oops"

    def test_no_detail_element_when_absent(self):
        el = Fault("Server", "oops").to_element(SoapVersion.V11)
        assert el.find(QName(None, "detail")) is None

    def test_prefix_stripped_on_parse(self):
        doc = (
            f"<f:Fault xmlns:f='{SoapVersion.V11.ns}'>"
            "<faultcode>weird:Client</faultcode>"
            "<faultstring>r</faultstring></f:Fault>"
        )
        assert Fault.from_element(parse(doc)).code == "Client"

    def test_missing_faultcode_rejected(self):
        doc = (
            f"<f:Fault xmlns:f='{SoapVersion.V11.ns}'>"
            "<faultstring>r</faultstring></f:Fault>"
        )
        with pytest.raises(SoapError):
            Fault.from_element(parse(doc))


class TestSoap12:
    def test_roundtrip(self):
        fault = Fault("Server", "internal", detail="stack")
        parsed = Fault.from_element(
            parse(serialize(fault.to_element(SoapVersion.V12)))
        )
        assert parsed == fault

    def test_code_mapping_to_12_vocabulary(self):
        el = Fault("Client", "r").to_element(SoapVersion.V12)
        ns = SoapVersion.V12.ns
        value = el.require(QName(ns, "Code")).require(QName(ns, "Value"))
        assert value.text.endswith("Sender")

    def test_code_unmapped_on_parse(self):
        el = Fault("Server", "r").to_element(SoapVersion.V12)
        assert Fault.from_element(el).code == "Server"

    def test_missing_reason_rejected(self):
        ns = SoapVersion.V12.ns
        el = Element(QName(ns, "Fault"))
        code = Element(QName(ns, "Code"))
        code.add(Element(QName(ns, "Value"), text="soapenv:Receiver"))
        el.children.append(code)
        with pytest.raises(SoapError):
            Fault.from_element(el)


def test_non_fault_element_rejected():
    with pytest.raises(SoapError):
        Fault.from_element(Element(QName("urn:x", "NotAFault")))


def test_custom_code_passes_through():
    fault = Fault("MyAppError", "custom")
    for version in SoapVersion:
        assert Fault.from_element(fault.to_element(version)).code == "MyAppError"

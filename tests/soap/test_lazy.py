"""LazyEnvelope: byte-splice serialization equivalence and bail-out coverage.

The property the fast path must hold: for any supported document, parsing
with :class:`LazyEnvelope`, rewriting headers, and splice-serializing must
yield bytes that a full DOM parse reads back as the *same* envelope the
slow path (Envelope parse → rewrite → serialize) produces.
"""

import pytest

from repro.errors import FastPathUnsupported, SoapError, XmlError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACE_NS, TraceContext, attach_trace, extract_trace
from repro.soap import (
    KNOWN_HEADER_NAMESPACES,
    Envelope,
    LazyEnvelope,
    SoapVersion,
    fastpath_counter,
    parse_envelope,
)
from repro.wsa import AddressingHeaders, WSA_NS, rewrite_for_forwarding
from repro.xmlmini import Element, QName

SOAP11 = "http://schemas.xmlsoap.org/soap/envelope/"
SOAP12 = "http://www.w3.org/2003/05/soap-envelope"
DISPATCHER = "http://wsd:8000/msg"
PHYSICAL = "http://inside:9000/echo"


def addressed_doc(prefix="s", soap_ns=SOAP11, extra_header="", body=None):
    """Hand-written envelope bytes with WS-Addressing headers."""
    body = body if body is not None else f"<e:echo xmlns:e='urn:echo'>hi</e:echo>"
    return (
        f'<?xml version="1.0"?>'
        f'<{prefix}:Envelope xmlns:{prefix}="{soap_ns}" xmlns:wsa="{WSA_NS}">'
        f"<{prefix}:Header>"
        f"<wsa:To>urn:wsd:echo</wsa:To>"
        f"<wsa:Action>urn:echo/echo</wsa:Action>"
        f"<wsa:MessageID>uuid:m1</wsa:MessageID>"
        f"{extra_header}"
        f"</{prefix}:Header>"
        f"<{prefix}:Body>{body}</{prefix}:Body>"
        f"</{prefix}:Envelope>"
    ).encode()


def assert_same_envelope(a: Envelope, b: Envelope) -> None:
    assert a.version is b.version
    assert a.headers == b.headers
    assert a.body == b.body


# -- parse / serialize equivalence ----------------------------------------

VARIANTS = [
    pytest.param(addressed_doc(), id="plain"),
    pytest.param(addressed_doc(prefix="SOAP-ENV"), id="soapenv-prefix"),
    pytest.param(addressed_doc(prefix="s", soap_ns=SOAP12), id="soap12"),
    pytest.param(
        addressed_doc(body="<e:echo xmlns:e='urn:echo'><![CDATA[a<b&c]]></e:echo>"),
        id="cdata-body",
    ),
    pytest.param(
        addressed_doc(extra_header="<!-- audit --><x:tag xmlns:x='urn:x'>t</x:tag>"),
        id="comment-and-foreign-header",
    ),
    pytest.param(
        addressed_doc().replace(b"><", b">\n  <"), id="pretty-printed"
    ),
    pytest.param(
        (
            f'<Envelope xmlns="{SOAP11}" xmlns:wsa="{WSA_NS}"><Header>'
            f"<wsa:To>urn:wsd:echo</wsa:To><wsa:MessageID>uuid:m1</wsa:MessageID>"
            f"<wsa:Action>a</wsa:Action></Header>"
            f"<Body><e xmlns='urn:echo'>hi</e></Body></Envelope>"
        ).encode(),
        id="default-namespace",
    ),
]


@pytest.mark.parametrize("data", VARIANTS)
def test_lazy_parse_matches_dom_parse(data):
    lazy = LazyEnvelope.from_bytes(data)
    slow = Envelope.from_bytes(data)
    assert_same_envelope(lazy.materialize(), slow)


@pytest.mark.parametrize("data", VARIANTS)
def test_splice_roundtrip_reparses_identically(data):
    out = LazyEnvelope.from_bytes(data).to_bytes()
    assert_same_envelope(Envelope.from_bytes(out), Envelope.from_bytes(data))


@pytest.mark.parametrize("data", VARIANTS)
def test_rewrite_parity_with_slow_path(data):
    fast = rewrite_for_forwarding(
        LazyEnvelope.from_bytes(data), PHYSICAL, DISPATCHER
    )
    slow = rewrite_for_forwarding(Envelope.from_bytes(data), PHYSICAL, DISPATCHER)
    assert isinstance(fast.envelope, LazyEnvelope)
    assert_same_envelope(
        Envelope.from_bytes(fast.envelope.to_bytes()),
        Envelope.from_bytes(slow.envelope.to_bytes()),
    )
    fast_hdr = AddressingHeaders.from_envelope(fast.envelope)
    assert fast_hdr.to == PHYSICAL
    assert fast_hdr.reply_to.address == DISPATCHER


def test_body_bytes_forwarded_verbatim():
    body = "<e:echo xmlns:e='urn:echo'><![CDATA[raw &amp; ugly]]><!-- c --></e:echo>"
    data = addressed_doc(body=body)
    out = rewrite_for_forwarding(
        LazyEnvelope.from_bytes(data), PHYSICAL, DISPATCHER
    ).envelope.to_bytes()
    # the Body byte range is spliced, never re-serialized
    assert body.encode() in out


def test_header_api_parity():
    data = addressed_doc()
    lazy = LazyEnvelope.from_bytes(data)
    q_to = QName(WSA_NS, "To")
    assert lazy.find_header(q_to).text == "urn:wsd:echo"
    assert len(lazy.find_headers(WSA_NS)) == 3
    removed = lazy.remove_headers(WSA_NS)
    assert len(removed) == 3
    assert lazy.find_header(q_to) is None
    # the original document is untouched; only serialization reflects it
    assert Envelope.from_bytes(lazy.to_bytes()).headers == []


def test_copy_isolates_headers():
    lazy = LazyEnvelope.from_bytes(addressed_doc())
    dup = lazy.copy()
    dup.remove_headers(WSA_NS)
    assert lazy.find_header(QName(WSA_NS, "To")) is not None


def test_body_is_parsed_lazily_and_cached():
    lazy = LazyEnvelope.from_bytes(addressed_doc())
    assert lazy.body is lazy.body
    assert lazy.body.name == QName("urn:echo", "echo")
    assert lazy.version is SoapVersion.V11


def test_empty_body_and_fault_detection():
    no_body_child = addressed_doc(body="")
    assert LazyEnvelope.from_bytes(no_body_child).body is None
    fault = (
        f'<s:Envelope xmlns:s="{SOAP11}"><s:Body><s:Fault>'
        f"<faultcode>Server</faultcode><faultstring>boom</faultstring>"
        f"</s:Fault></s:Body></s:Envelope>"
    ).encode()
    assert LazyEnvelope.from_bytes(fault).is_fault()
    assert not LazyEnvelope.from_bytes(addressed_doc()).is_fault()


def test_headerless_document_roundtrips_verbatim():
    data = f'<s:Envelope xmlns:s="{SOAP11}"><s:Body><p/></s:Body></s:Envelope>'.encode()
    assert LazyEnvelope.from_bytes(data).to_bytes() == data


def test_trace_headers_survive_the_fast_path():
    env = Envelope(Element(QName("urn:echo", "echo"), text="hi"))
    ctx = TraceContext.new()
    attach_trace(env, ctx)
    lazy = LazyEnvelope.from_bytes(env.to_bytes())
    assert extract_trace(lazy).trace_id == ctx.trace_id


# -- bail-out conditions ---------------------------------------------------

def bail_reason(data):
    with pytest.raises(FastPathUnsupported) as exc_info:
        LazyEnvelope.from_bytes(data)
    return exc_info.value.reason


def test_bails_on_doctype():
    data = b"<!DOCTYPE x []>" + addressed_doc().split(b"?>", 1)[1]
    assert bail_reason(b'<?xml version="1.0"?>' + data) == "doctype"


def test_bails_on_encoding_declaration():
    data = addressed_doc().replace(
        b'version="1.0"', b'version="1.0" encoding="iso-8859-1"'
    )
    assert bail_reason(data) == "encoding"


def test_bails_on_multi_root():
    assert bail_reason(addressed_doc() + b"<again/>") == "trailing_content"


def test_bails_on_not_an_envelope():
    assert bail_reason(b"<note><to>x</to></note>") == "not_envelope"
    wrong_ns = addressed_doc().replace(SOAP11.encode(), b"urn:not-soap")
    assert bail_reason(wrong_ns) == "not_envelope"


def test_bails_on_version_mismatch():
    data = addressed_doc().replace(
        f"<s:Body".encode(), f'<z:Body xmlns:z="{SOAP12}"'.encode()
    ).replace(b"</s:Body>", b"</z:Body>")
    assert bail_reason(data) == "version_mismatch"


def test_bails_on_malformed_xml():
    assert bail_reason(addressed_doc()[:-7]) in ("malformed", "structure")


def test_bails_on_multiple_body_children():
    data = addressed_doc(body="<a/><b/>")
    assert bail_reason(data) == "structure"


def test_bails_on_mustunderstand_in_unknown_namespace():
    mu = (
        '<sec:Token xmlns:sec="urn:acme:sec" '
        's:mustUnderstand="1">t</sec:Token>'
    )
    assert bail_reason(addressed_doc(extra_header=mu)) == "mustunderstand"
    spelled_true = mu.replace('"1"', '"true"')
    assert bail_reason(addressed_doc(extra_header=spelled_true)) == "mustunderstand"


def test_mustunderstand_in_known_namespaces_stays_fast():
    mu_wsa = '<wsa:To2 s:mustUnderstand="1" xmlns:wsa="%s">x</wsa:To2>' % WSA_NS
    env = LazyEnvelope.from_bytes(addressed_doc(extra_header=mu_wsa))
    assert isinstance(env, LazyEnvelope)
    # mustUnderstand="0" anywhere is also fine
    mu_off = '<sec:T xmlns:sec="urn:acme" s:mustUnderstand="0">t</sec:T>'
    assert LazyEnvelope.from_bytes(addressed_doc(extra_header=mu_off))


def test_known_header_namespaces_track_the_dispatchers_own_headers():
    # the fast path may only skip the mustUnderstand bail for namespaces the
    # dispatcher itself understands; keep the frozen set in sync
    assert WSA_NS in KNOWN_HEADER_NAMESPACES
    assert TRACE_NS in KNOWN_HEADER_NAMESPACES


# -- parse_envelope dispatcher entry point ---------------------------------

def outcome(registry, label):
    return fastpath_counter(registry).labels(outcome=label).get()


def test_parse_envelope_fast_outcome():
    registry = MetricsRegistry()
    counter = fastpath_counter(registry)
    env = parse_envelope(addressed_doc(), counter=counter)
    assert isinstance(env, LazyEnvelope)
    assert outcome(registry, "fast") == 1


def test_parse_envelope_disabled_outcome():
    registry = MetricsRegistry()
    counter = fastpath_counter(registry)
    env = parse_envelope(addressed_doc(), counter=counter, fast=False)
    assert isinstance(env, Envelope)
    assert outcome(registry, "disabled") == 1


def test_parse_envelope_falls_back_on_bail():
    registry = MetricsRegistry()
    counter = fastpath_counter(registry)
    data = addressed_doc().replace(
        b'version="1.0"', b'version="1.0" encoding="utf-16"'
    )
    # ASCII document with a non-utf-8 encoding label: the scanner refuses,
    # the DOM parser still reads it
    env = parse_envelope(data, counter=counter)
    assert isinstance(env, Envelope)
    assert outcome(registry, "encoding") == 1
    assert outcome(registry, "fast") == 0


def test_parse_envelope_invalid_document_raises_like_slow_path():
    with pytest.raises((XmlError, SoapError)):
        parse_envelope(b"<not-even-close", counter=None)

"""Tests for the binary XML codec (future-work protocol extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import XmlError
from repro.soap import Envelope
from repro.soap.binxml import (
    BINXML_CONTENT_TYPE,
    decode_element,
    decode_envelope,
    encode_element,
    encode_envelope,
    sniff_and_parse,
)
from repro.workload.echo import make_echo_message, make_echo_request
from repro.xmlmini import Element, QName


class TestRoundtrip:
    def test_simple_element(self):
        tree = Element("root", text="hello")
        assert decode_element(encode_element(tree)) == tree

    def test_echo_envelope(self):
        tree = make_echo_request().to_element()
        assert decode_element(encode_element(tree)) == tree

    def test_full_addressed_message(self):
        env = make_echo_message("urn:wsd:echo", "uuid:1")
        decoded = decode_envelope(encode_envelope(env))
        assert decoded.headers == env.headers
        assert decoded.body == env.body

    def test_attributes_preserved(self):
        tree = Element(QName("urn:x", "a"))
        tree.attrs[QName(None, "plain")] = "1"
        tree.attrs[QName("urn:y", "qualified")] = "two"
        assert decode_element(encode_element(tree)) == tree

    def test_mixed_content(self):
        tree = Element("a")
        tree.children = ["pre", Element("b", text="mid"), "post"]
        assert decode_element(encode_element(tree)) == tree

    def test_unicode_text(self):
        tree = Element("a", text="héllo wörld — ≤≥ 🎉")
        assert decode_element(encode_element(tree)) == tree


class TestCompactness:
    def test_smaller_than_text_for_soap(self):
        env = make_echo_message("urn:wsd:echo", "uuid:msg-1")
        text = env.to_bytes()
        binary = encode_envelope(env)
        assert len(binary) < len(text)

    def test_repeated_namespaces_interned(self):
        root = Element(QName("urn:very-long-namespace-uri/x", "root"))
        for i in range(50):
            root.add(Element(QName("urn:very-long-namespace-uri/x", f"c{i}")))
        binary = encode_element(root)
        assert binary.count(b"very-long-namespace-uri") == 1


class TestMalformedInput:
    def test_bad_magic(self):
        with pytest.raises(XmlError):
            decode_element(b"NOPE rest")

    def test_truncated_table(self):
        good = encode_element(Element("a", text="some text"))
        with pytest.raises(XmlError):
            decode_element(good[:8])

    def test_trailing_garbage(self):
        good = encode_element(Element("a"))
        with pytest.raises(XmlError):
            decode_element(good + b"extra")

    def test_out_of_range_reference(self):
        # hand-build: magic, table of 1 entry (empty), ELEM with ns ref 99
        bad = b"BX1" + bytes([1, 0]) + bytes([0x01, 99, 99, 0, 0])
        with pytest.raises(XmlError):
            decode_element(bad)

    def test_implausible_table_size(self):
        bad = b"BX1" + b"\xff\xff\xff\xff\x7f"
        with pytest.raises(XmlError):
            decode_element(bad)


class TestSniffing:
    def test_sniff_by_content_type(self):
        env = make_echo_request()
        parsed = sniff_and_parse(encode_envelope(env), BINXML_CONTENT_TYPE)
        assert parsed.body == env.body

    def test_sniff_by_magic(self):
        env = make_echo_request()
        assert sniff_and_parse(encode_envelope(env)).body == env.body

    def test_sniff_falls_back_to_text(self):
        env = make_echo_request()
        assert sniff_and_parse(env.to_bytes()).body == env.body


_local = st.from_regex(r"[A-Za-z_][A-Za-z0-9._-]{0,8}", fullmatch=True)
_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20
).filter(bool)


@st.composite
def trees(draw, depth=3):
    ns = draw(st.sampled_from([None, "urn:a", "urn:b"]))
    el = Element(QName(ns, draw(_local)))
    for _ in range(draw(st.integers(0, 2))):
        el.attrs[QName(draw(st.sampled_from([None, "urn:a"])), draw(_local))] = draw(
            _text
        )
    if depth > 0:
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                el.children.append(draw(trees(depth=depth - 1)))
            else:
                el.children.append(draw(_text))
    return el


@given(trees())
@settings(max_examples=150, deadline=None)
def test_roundtrip_property(tree):
    assert decode_element(encode_element(tree)) == tree


@given(trees())
@settings(max_examples=50, deadline=None)
def test_binary_equals_text_semantics(tree):
    """Binary and text paths decode to structurally equal trees."""
    from repro.xmlmini import parse, serialize

    via_text = parse(serialize(tree))
    via_binary = decode_element(encode_element(tree))
    assert via_text == via_binary

"""Tests for SOAP-RPC wrapping/unwrapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SoapError, SoapFaultError
from repro.soap import (
    Envelope,
    Fault,
    RpcRequest,
    RpcResponse,
    SoapVersion,
    build_rpc_request,
    build_rpc_response,
    parse_rpc_request,
    parse_rpc_response,
)
from repro.xmlmini import Element, QName


class TestRequest:
    def test_roundtrip(self):
        req = RpcRequest("urn:svc", "doIt", [("a", "1"), ("b", "2")])
        parsed = parse_rpc_request(
            Envelope.from_bytes(build_rpc_request(req).to_bytes())
        )
        assert parsed == req

    def test_param_lookup(self):
        req = RpcRequest("urn:svc", "op", [("k", "v")])
        assert req.param("k") == "v"
        assert req.param("missing") is None
        assert req.param("missing", "d") == "d"

    def test_require_param(self):
        req = RpcRequest("urn:svc", "op", [])
        with pytest.raises(SoapError):
            req.require_param("k")

    def test_repeated_params_preserved(self):
        req = RpcRequest("urn:svc", "op", [("x", "1"), ("x", "2")])
        parsed = parse_rpc_request(
            Envelope.from_bytes(build_rpc_request(req).to_bytes())
        )
        assert parsed.params == [("x", "1"), ("x", "2")]

    def test_empty_body_rejected(self):
        with pytest.raises(SoapError):
            parse_rpc_request(Envelope(None))

    def test_unqualified_wrapper_rejected(self):
        env = Envelope(Element(QName(None, "bare")))
        with pytest.raises(SoapError):
            parse_rpc_request(env)

    def test_fault_body_rejected(self):
        env = Envelope(Fault("Client", "nope").to_element(SoapVersion.V11))
        with pytest.raises(SoapError):
            parse_rpc_request(env)


class TestResponse:
    def test_roundtrip(self):
        resp = RpcResponse("urn:svc", "doIt", [("return", "ok")])
        env = build_rpc_response(resp)
        assert env.body.name.local == "doItResponse"
        parsed = parse_rpc_response(Envelope.from_bytes(env.to_bytes()))
        assert parsed == resp

    def test_result_lookup(self):
        resp = RpcResponse("urn:svc", "op", [("r", "1")])
        assert resp.result("r") == "1"
        assert resp.result("zz", "d") == "d"

    def test_fault_raises_soap_fault_error(self):
        env = Envelope(Fault("Server", "kaput", "why").to_element(SoapVersion.V11))
        with pytest.raises(SoapFaultError) as exc_info:
            parse_rpc_response(env)
        assert exc_info.value.code == "Server"
        assert exc_info.value.reason == "kaput"
        assert exc_info.value.detail == "why"

    def test_wrapper_without_response_suffix_tolerated(self):
        env = Envelope(Element(QName("urn:svc", "weirdName"), text=""))
        assert parse_rpc_response(env).operation == "weirdName"

    def test_soap12(self):
        resp = RpcResponse("urn:svc", "op", [("r", "v")])
        env = build_rpc_response(resp, version=SoapVersion.V12)
        assert env.version is SoapVersion.V12
        assert parse_rpc_response(env).result("r") == "v"


_name = st.from_regex(r"[a-zA-Z][a-zA-Z0-9]{0,10}", fullmatch=True)
_value = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=30
)


@given(
    op=_name,
    params=st.lists(st.tuples(_name, _value), max_size=5),
)
@settings(max_examples=100, deadline=None)
def test_rpc_request_roundtrip_property(op, params):
    req = RpcRequest("urn:prop", op, params)
    wire = build_rpc_request(req).to_bytes()
    assert parse_rpc_request(Envelope.from_bytes(wire)) == req


@given(
    op=_name,
    results=st.lists(st.tuples(_name, _value), max_size=5),
)
@settings(max_examples=100, deadline=None)
def test_rpc_response_roundtrip_property(op, results):
    resp = RpcResponse("urn:prop", op, results)
    wire = build_rpc_response(resp).to_bytes()
    assert parse_rpc_response(Envelope.from_bytes(wire)) == resp

"""Tests for SOAP envelope build/parse."""

import pytest

from repro.errors import SoapError
from repro.soap import Envelope, SOAP11_NS, SOAP12_NS, SoapVersion
from repro.soap.fault import Fault
from repro.xmlmini import Element, QName, parse


def make_body():
    return Element(QName("urn:test", "op"), text="payload")


class TestBuild:
    def test_minimal_envelope(self):
        env = Envelope(make_body())
        root = env.to_element()
        assert root.name == QName(SOAP11_NS, "Envelope")
        body = root.require(QName(SOAP11_NS, "Body"))
        assert body.require(QName("urn:test", "op")).text == "payload"

    def test_no_header_element_when_empty(self):
        root = Envelope(make_body()).to_element()
        assert root.find(QName(SOAP11_NS, "Header")) is None

    def test_headers_serialized_in_order(self):
        h1 = Element(QName("urn:h", "first"))
        h2 = Element(QName("urn:h", "second"))
        root = Envelope(make_body(), headers=[h1, h2]).to_element()
        header = root.require(QName(SOAP11_NS, "Header"))
        assert [c.name.local for c in header.element_children()] == [
            "first",
            "second",
        ]

    def test_soap12_namespace(self):
        env = Envelope(make_body(), version=SoapVersion.V12)
        assert env.to_element().name.ns == SOAP12_NS

    def test_empty_body_allowed(self):
        root = Envelope(None).to_element()
        body = root.require(QName(SOAP11_NS, "Body"))
        assert list(body.element_children()) == []

    def test_to_bytes_has_xml_decl(self):
        assert Envelope(make_body()).to_bytes().startswith(b"<?xml")


class TestParse:
    def test_roundtrip(self):
        env = Envelope(
            make_body(), headers=[Element(QName("urn:h", "hdr"), text="v")]
        )
        parsed = Envelope.from_bytes(env.to_bytes())
        assert parsed.version is SoapVersion.V11
        assert parsed.body == env.body
        assert parsed.headers == env.headers

    def test_soap12_roundtrip(self):
        env = Envelope(make_body(), version=SoapVersion.V12)
        assert Envelope.from_bytes(env.to_bytes()).version is SoapVersion.V12

    def test_rejects_non_envelope_root(self):
        with pytest.raises(SoapError):
            Envelope.from_element(parse("<a xmlns='urn:x'/>"))

    def test_rejects_unknown_envelope_namespace(self):
        with pytest.raises(SoapError):
            Envelope.from_bytes(
                b"<e:Envelope xmlns:e='urn:fake'><e:Body/></e:Envelope>"
            )

    def test_rejects_missing_body(self):
        doc = f"<e:Envelope xmlns:e='{SOAP11_NS}'/>".encode()
        with pytest.raises(SoapError):
            Envelope.from_bytes(doc)

    def test_rejects_duplicate_body(self):
        doc = (
            f"<e:Envelope xmlns:e='{SOAP11_NS}'><e:Body/><e:Body/></e:Envelope>"
        ).encode()
        with pytest.raises(SoapError):
            Envelope.from_bytes(doc)

    def test_rejects_header_after_body(self):
        doc = (
            f"<e:Envelope xmlns:e='{SOAP11_NS}'>"
            "<e:Body/><e:Header/></e:Envelope>"
        ).encode()
        with pytest.raises(SoapError):
            Envelope.from_bytes(doc)

    def test_rejects_multiple_body_children(self):
        doc = (
            f"<e:Envelope xmlns:e='{SOAP11_NS}'><e:Body>"
            "<a xmlns='urn:x'/><b xmlns='urn:x'/></e:Body></e:Envelope>"
        ).encode()
        with pytest.raises(SoapError):
            Envelope.from_bytes(doc)

    def test_rejects_unknown_envelope_child(self):
        doc = (
            f"<e:Envelope xmlns:e='{SOAP11_NS}'><e:Mystery/>"
            "<e:Body/></e:Envelope>"
        ).encode()
        with pytest.raises(SoapError):
            Envelope.from_bytes(doc)


class TestHeaderAccess:
    def test_find_header(self):
        h = Element(QName("urn:h", "a"), text="1")
        env = Envelope(make_body(), headers=[h])
        assert env.find_header(QName("urn:h", "a")) is h
        assert env.find_header(QName("urn:h", "zzz")) is None

    def test_find_and_remove_by_namespace(self):
        env = Envelope(
            make_body(),
            headers=[
                Element(QName("urn:a", "x")),
                Element(QName("urn:b", "y")),
                Element(QName("urn:a", "z")),
            ],
        )
        assert len(env.find_headers("urn:a")) == 2
        removed = env.remove_headers("urn:a")
        assert len(removed) == 2
        assert [h.name.ns for h in env.headers] == ["urn:b"]

    def test_copy_is_deep(self):
        env = Envelope(make_body(), headers=[Element(QName("urn:h", "a"))])
        dup = env.copy()
        dup.body.children[0] = "changed"
        dup.headers[0].name = QName("urn:h", "b")
        assert env.body.text == "payload"
        assert env.headers[0].name.local == "a"


class TestFaultDetection:
    def test_is_fault(self):
        fault = Fault("Server", "boom")
        env = Envelope(fault.to_element(SoapVersion.V11))
        assert env.is_fault()

    def test_version_mismatched_fault_is_not_fault(self):
        fault_el = Fault("Server", "boom").to_element(SoapVersion.V12)
        env = Envelope(fault_el, version=SoapVersion.V11)
        assert not env.is_fault()

    def test_plain_body_is_not_fault(self):
        assert not Envelope(make_body()).is_fault()

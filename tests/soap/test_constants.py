"""Tests for SOAP version descriptors."""

import pytest

from repro.soap.constants import (
    SOAP11_CONTENT_TYPE,
    SOAP11_NS,
    SOAP12_CONTENT_TYPE,
    SOAP12_NS,
    SoapVersion,
)


def test_version_namespaces():
    assert SoapVersion.V11.ns == SOAP11_NS
    assert SoapVersion.V12.ns == SOAP12_NS


def test_content_types():
    assert SoapVersion.V11.content_type == SOAP11_CONTENT_TYPE
    assert SoapVersion.V12.content_type == SOAP12_CONTENT_TYPE
    assert "text/xml" in SOAP11_CONTENT_TYPE
    assert "application/soap+xml" in SOAP12_CONTENT_TYPE


def test_from_ns_roundtrip():
    for version in SoapVersion:
        assert SoapVersion.from_ns(version.ns) is version


def test_from_ns_rejects_unknown():
    with pytest.raises(ValueError):
        SoapVersion.from_ns("urn:not-soap")

"""Operator-plane smoke: boot a dispatcher, scrape every telemetry page.

This is the CI ``obs-smoke`` gate: a threaded deployment serving the
message path *and* the full introspection surface (metrics, traces, SLOs,
flight recorder, metrics history, span-report ingestion) on one server,
with every page returning a well-formed body after real traffic.
"""

import json

import pytest

from repro.core import MsgDispatcher, MsgDispatcherConfig, ServiceRegistry
from repro.http import Headers, HttpRequest
from repro.msgbox import MailboxStore, MsgBoxClient, MsgBoxService
from repro.obs import (
    FlightRecorder,
    Introspection,
    MetricsRegistry,
    MetricsSnapshotter,
    SloTracker,
    TraceStore,
    ensure_trace,
)
from repro.obs.spanreport import (
    SPAN_REPORT_PATH,
    ReportingTraceStore,
    SpanReportHandler,
    make_span_report_request,
)
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.util.ids import IdGenerator
from repro.workload.echo import AsyncEchoService, make_echo_message

PAGES = (
    "/metrics",
    "/health",
    "/slo",
    "/flightrecorder",
    "/metrics/history",
    "/deadletters",
)


@pytest.fixture
def telemetry_deployment(inproc):
    """A one-process WSD deployment with the full telemetry plane on."""
    metrics = MetricsRegistry()
    traces = TraceStore(span_prefix="wsd")
    flight = FlightRecorder()
    snapshotter = MetricsSnapshotter(metrics, interval=0.05, capacity=64)

    ws_client = HttpClient(inproc, metrics=metrics)
    echo = AsyncEchoService(ws_client, ids=IdGenerator("ws", seed=1), traces=traces)
    ws_app = SoapHttpApp()
    ws_app.mount("/echo-msg", echo)
    ws_server = HttpServer(
        inproc.listen("internal:9000"), ws_app.handle_request,
        workers=4, name="ws", metrics=metrics,
    ).start()

    registry = ServiceRegistry(metrics=metrics)
    registry.register("echo-msg", "http://internal:9000/echo-msg")
    disp_client = HttpClient(inproc, metrics=metrics)
    dispatcher = MsgDispatcher(
        registry, disp_client,
        own_address="http://wsd:8000/msg",
        config=MsgDispatcherConfig(cx_threads=2, ws_threads=4),
        metrics=metrics, traces=traces, flight=flight,
    )
    msgbox = MsgBoxService(
        MailboxStore(), base_url="http://wsd:8000/mailbox",
        metrics=metrics, traces=traces,
    )
    intro = Introspection(
        metrics=metrics, traces=traces, flight=flight,
        slo=SloTracker(metrics), history=snapshotter,
    )
    app = SoapHttpApp()
    app.mount("/msg", dispatcher)
    app.mount("/mailbox", msgbox)
    app.mount_raw(SPAN_REPORT_PATH, SpanReportHandler(traces, metrics=metrics))
    intro.mount(app)
    front = HttpServer(
        inproc.listen("wsd:8000"), app.handle_request,
        workers=8, name="front", metrics=metrics,
    ).start()
    snapshotter.start()

    yield inproc, metrics, traces, flight, snapshotter
    snapshotter.stop(final_sample=False)
    dispatcher.stop()
    front.stop()
    ws_server.stop()
    ws_client.close()
    disp_client.close()


def _get(client, path):
    return client.request(
        f"http://wsd:8000{path}", HttpRequest("GET", path)
    )


def test_scrape_all_pages_after_traffic(telemetry_deployment):
    inproc, metrics, traces, flight, snapshotter = telemetry_deployment
    client = HttpClient(inproc, metrics=metrics)
    try:
        # drive one real message through the pipeline first
        mbc = MsgBoxClient(client, "http://wsd:8000/mailbox")
        mbc.create()
        msg = make_echo_message(
            to="urn:wsd:echo-msg",
            message_id=IdGenerator("cli", seed=3).next(),
            reply_to=mbc.epr(),
        )
        ctx = ensure_trace(msg)
        assert client.post_envelope("http://wsd:8000/msg/echo-msg", msg).status == 202
        assert mbc.poll(timeout=5.0) is not None

        for path in PAGES:
            response = _get(client, path)
            assert response.status == 200, f"{path} -> {response.status}"
            assert response.body, f"{path} returned an empty body"

        # /metrics speaks Prometheus text format with histogram series
        text = _get(client, "/metrics").body.decode()
        assert "# TYPE msgd_stage_seconds histogram" in text
        assert "msgd_stage_seconds_bucket{" in text

        # /health embeds the SLO verdict next to the liveness payload
        health = json.loads(_get(client, "/health").body)
        assert health["slo"]["met"] is True

        # /slo carries the full evaluation
        slo = json.loads(_get(client, "/slo").body)
        assert slo["delivery"]["delivered"] >= 1
        assert set(slo["stages"]) == {
            "admit", "journal", "queue_accept", "queue_destination", "deliver"
        }

        # /trace/<id> renders the timeline for the message we sent
        trace_page = _get(client, f"/trace/{ctx.trace_id}")
        assert trace_page.status == 200
        assert ctx.trace_id.encode() in trace_page.body

        # /flightrecorder is live (empty ring is fine on a healthy run)
        fr = json.loads(_get(client, "/flightrecorder").body)
        assert fr["enabled"] is True and "events" in fr

        # /metrics/history has at least one sample from the snapshotter
        history = json.loads(_get(client, "/metrics/history").body)
        assert len(history["samples"]) >= 1

        # POSTing a span report lands remote spans in the local store
        remote = ReportingTraceStore(span_prefix="probe")
        remote.record(ctx.trace_id, "probe", "probe", 0.0, 0.1)
        report = make_span_report_request(remote.drain_reports())
        response = client.request(
            f"http://wsd:8000{SPAN_REPORT_PATH}", report
        )
        assert response.status == 202
        assert json.loads(response.body)["absorbed"] == 1
        assert any(
            s.component == "probe" for s in traces.get(ctx.trace_id)
        )
    finally:
        client.close()

"""Unit tests for trace context propagation and the span ring buffer."""

import pytest

from repro.obs.trace import (
    Q_TRACE,
    TraceContext,
    TraceStore,
    attach_trace,
    default_trace_store,
    ensure_trace,
    extract_trace,
    propagate_trace,
    set_default_trace_store,
)
from repro.soap import Envelope
from repro.xmlmini import Element, QName


def make_envelope() -> Envelope:
    return Envelope(Element(QName("urn:svc", "ping")))


class TestTraceContext:
    def test_new_has_fresh_id_and_no_parent(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert a.trace_id.startswith("trace-")
        assert a.trace_id != b.trace_id
        assert a.parent_span_id is None

    def test_child_keeps_trace_id(self):
        ctx = TraceContext("trace-1").child("span-7")
        assert ctx == TraceContext("trace-1", parent_span_id="span-7")


class TestHeaderRoundtrip:
    def test_attach_extract(self):
        env = make_envelope()
        attach_trace(env, TraceContext("trace-1", parent_span_id="span-2"))
        assert extract_trace(env) == TraceContext("trace-1", "span-2")

    def test_attach_replaces_previous_header(self):
        env = make_envelope()
        attach_trace(env, TraceContext("trace-old"))
        attach_trace(env, TraceContext("trace-new"))
        assert extract_trace(env).trace_id == "trace-new"
        assert sum(1 for h in env.headers if h.name == Q_TRACE) == 1

    def test_untraced_extracts_none(self):
        assert extract_trace(make_envelope()) is None

    def test_survives_the_wire(self):
        env = make_envelope()
        attach_trace(env, TraceContext("trace-1", parent_span_id="span-2"))
        parsed = Envelope.from_bytes(env.to_bytes())
        assert extract_trace(parsed) == TraceContext("trace-1", "span-2")

    def test_ensure_trace_creates_once(self):
        env = make_envelope()
        ctx = ensure_trace(env)
        assert extract_trace(env) == ctx
        assert ensure_trace(env) == ctx  # second call reuses, not recreates

    def test_propagate_onto_new_envelope(self):
        request, reply = make_envelope(), make_envelope()
        attach_trace(request, TraceContext("trace-1", parent_span_id="span-2"))
        out = propagate_trace(request, reply, parent_span_id="span-9")
        assert out == TraceContext("trace-1", "span-9")
        assert extract_trace(reply) == out

    def test_propagate_untraced_source_is_noop(self):
        reply = make_envelope()
        assert propagate_trace(make_envelope(), reply) is None
        assert extract_trace(reply) is None


class TestTraceStore:
    def test_record_and_get(self):
        store = TraceStore()
        span = store.record("t1", "admit", "msgd", 1.0, 1.5, dest="ws:9000")
        assert span.duration == pytest.approx(0.5)
        assert span.attrs == {"dest": "ws:9000"}
        spans = store.get("t1")
        assert [s.span_id for s in spans] == [span.span_id]
        assert "t1" in store
        assert len(store) == 1
        assert store.get("missing") == []

    def test_new_span_ids_are_unique(self):
        store = TraceStore()
        assert store.new_span_id() != store.new_span_id()

    def test_parent_linkage(self):
        store = TraceStore()
        sid = store.new_span_id()
        store.record("t1", "route", "msgd", 0.0, 0.0, span_id=sid)
        child = store.record("t1", "deliver", "msgd", 0.0, 1.0, parent_id=sid)
        assert child.parent_id == sid

    def test_capacity_evicts_oldest_trace(self):
        store = TraceStore(capacity=2)
        for i in range(3):
            store.record(f"t{i}", "s", "c", float(i), float(i))
        assert store.ids() == ["t1", "t2"]
        assert "t0" not in store

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)

    def test_wall_time_spans_first_start_to_last_end(self):
        store = TraceStore()
        store.record("t1", "a", "c", 1.0, 2.0)
        store.record("t1", "b", "c", 1.5, 4.0)
        assert store.wall_time("t1") == pytest.approx(3.0)
        assert store.wall_time("missing") == 0.0

    def test_disabled_store_records_nothing(self):
        store = TraceStore(enabled=False)
        assert store.record("t1", "a", "c", 0.0, 1.0) is None
        assert len(store) == 0
        # span-id allocation still works so propagation stays identical
        assert store.new_span_id().startswith("span-")

    def test_to_json_sorts_spans_by_time(self):
        store = TraceStore()
        store.record("t1", "late", "c", 2.0, 3.0)
        store.record("t1", "early", "c", 0.0, 1.0)
        doc = store.to_json("t1")
        assert [s["name"] for s in doc["spans"]] == ["early", "late"]
        assert doc["wall_time"] == pytest.approx(3.0)

    def test_render_timeline(self):
        store = TraceStore()
        store.record("t1", "admit", "msgd", 0.0, 0.5)
        store.record("t1", "deliver", "msgd", 0.5, 1.0)
        text = store.render_timeline("t1")
        assert "trace t1" in text
        assert "msgd/admit" in text
        assert "msgd/deliver" in text
        assert "#" in text
        assert "(no spans)" in store.render_timeline("missing")


class TestDefaultStore:
    def test_swap_and_restore(self):
        mine = TraceStore()
        previous = set_default_trace_store(mine)
        try:
            assert default_trace_store() is mine
        finally:
            set_default_trace_store(previous)
        assert default_trace_store() is previous

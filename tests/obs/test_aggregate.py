"""Cross-shard Prometheus exposition merging (``repro.obs.aggregate``)."""

import pytest

from repro.obs import MergeError, MetricsRegistry, merge_expositions, parse_exposition


def _registry_text(counter_value: int, labels: dict | None = None) -> str:
    registry = MetricsRegistry()
    counter = registry.counter("msgd_accepted_total", "messages accepted")
    if labels:
        counter.labels(**labels).inc(counter_value)
    else:
        counter.inc(counter_value)
    return registry.render_prometheus()


def test_counters_sum_across_shards():
    merged = merge_expositions([_registry_text(3), _registry_text(7)])
    assert "msgd_accepted_total 10" in merged


def test_labeled_counters_sum_by_labelset():
    texts = [
        _registry_text(2, {"direction": "out"}),
        _registry_text(5, {"direction": "out"}),
        _registry_text(11, {"direction": "in"}),
    ]
    merged = merge_expositions(texts)
    assert 'msgd_accepted_total{direction="out"} 7' in merged
    assert 'msgd_accepted_total{direction="in"} 11' in merged


def test_merge_is_parseable_and_idempotent_shape():
    """The merged output must itself parse — the supervisor's /metrics is
    consumed by the same tooling that reads a single shard's."""
    merged = merge_expositions([_registry_text(1), _registry_text(2)])
    families = parse_exposition(merged)
    assert "msgd_accepted_total" in families
    again = merge_expositions([merged])
    assert "msgd_accepted_total 3" in again


def _histogram_text(observations: list[float]) -> str:
    edges = (0.1, 1.0, 10.0)
    lines = [
        "# HELP msgd_latency_seconds delivery latency",
        "# TYPE msgd_latency_seconds histogram",
    ]
    for edge in edges:
        count = sum(1 for value in observations if value <= edge)
        lines.append(f'msgd_latency_seconds_bucket{{le="{edge}"}} {count}')
    lines.append(
        f'msgd_latency_seconds_bucket{{le="+Inf"}} {len(observations)}'
    )
    lines.append(f"msgd_latency_seconds_sum {sum(observations)}")
    lines.append(f"msgd_latency_seconds_count {len(observations)}")
    return "\n".join(lines) + "\n"


def test_histogram_buckets_stay_cumulative():
    merged = merge_expositions(
        [_histogram_text([0.05, 0.5]), _histogram_text([0.05, 5.0])]
    )
    families = parse_exposition(merged)
    samples = {
        (name, labels.get("le")): value
        for name, labels, value in families["msgd_latency_seconds"].samples
    }
    assert samples[("msgd_latency_seconds_bucket", "0.1")] == 2
    assert samples[("msgd_latency_seconds_bucket", "1")] == 3
    assert samples[("msgd_latency_seconds_bucket", "10")] == 4
    assert samples[("msgd_latency_seconds_bucket", "+Inf")] == 4
    assert samples[("msgd_latency_seconds_count", None)] == 4
    # cumulative invariant: counts never decrease along the bucket axis
    edges = ["0.1", "1", "10", "+Inf"]
    values = [samples[("msgd_latency_seconds_bucket", e)] for e in edges]
    assert values == sorted(values)


def test_histogram_sum_adds():
    merged = merge_expositions(
        [_histogram_text([0.5]), _histogram_text([1.5])]
    )
    families = parse_exposition(merged)
    total = {
        name: value
        for name, labels, value in families["msgd_latency_seconds"].samples
    }["msgd_latency_seconds_sum"]
    assert total == pytest.approx(2.0)


def test_mismatched_label_names_fail_loudly():
    good = 'a_total{shard="0"} 1\n'
    bad = 'a_total{region="eu"} 1\n'
    with pytest.raises(MergeError):
        merge_expositions([good, bad])


def test_mismatched_types_fail_loudly():
    as_counter = "# TYPE x_total counter\nx_total 1\n"
    as_gauge = "# TYPE x_total gauge\nx_total 1\n"
    with pytest.raises(MergeError):
        merge_expositions([as_counter, as_gauge])


def test_gauges_sum():
    """Gauges merge by summing too: the fleet's open connections is the
    sum of each shard's, not the max."""
    texts = ["# TYPE open_conns gauge\nopen_conns 4\n",
             "# TYPE open_conns gauge\nopen_conns 6\n"]
    assert "open_conns 10" in merge_expositions(texts)


def test_empty_and_comment_only_inputs():
    assert merge_expositions([]).strip() == ""
    merged = merge_expositions(["# just a comment\n", _registry_text(2)])
    assert "msgd_accepted_total 2" in merged

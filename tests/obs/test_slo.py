"""SLO tracker: stage objectives, delivery error budget, burn rate."""

import math

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    STAGE_BUCKET_WIDTH,
    STAGE_METRIC,
    STAGE_NUM_BUCKETS,
    STAGES,
    SloPolicy,
    SloTracker,
    StageObjective,
    stage_histogram,
)


def _observe(metrics, stage, values):
    child = stage_histogram(metrics).labels(stage=stage)
    for v in values:
        child.observe(v)


class TestStageHistogram:
    def test_shared_family_shape(self):
        metrics = MetricsRegistry()
        family = stage_histogram(metrics)
        child = family.labels(stage="admit")
        child.observe(0.01)
        snap = metrics.snapshot()[STAGE_METRIC]
        assert snap["kind"] == "histogram"
        sample = snap["samples"][0]
        assert sample["labels"] == {"stage": "admit"}
        assert sample["count"] == 1
        # both dispatchers and the tracker must agree on the shape
        assert family.bucket_width == STAGE_BUCKET_WIDTH
        assert family.num_buckets == STAGE_NUM_BUCKETS

    def test_stage_names_cover_the_pipeline(self):
        assert STAGES == (
            "admit", "journal", "queue_accept", "queue_destination", "deliver"
        )


class TestStageReport:
    def test_unobserved_stages_are_vacuously_met(self):
        tracker = SloTracker(MetricsRegistry())
        report = tracker.stage_report()
        assert set(report) == set(STAGES)
        for entry in report.values():
            assert entry["count"] == 0
            assert entry["met"] is True

    def test_stage_within_objective_is_met(self):
        metrics = MetricsRegistry()
        _observe(metrics, "admit", [0.01] * 100)
        report = SloTracker(metrics).stage_report()
        assert report["admit"]["met"] is True
        assert report["admit"]["p99"] <= report["admit"]["objective_p99"]

    def test_stage_over_objective_is_missed(self):
        metrics = MetricsRegistry()
        # default admit objective is p99 <= 0.10s
        _observe(metrics, "admit", [0.5] * 100)
        report = SloTracker(metrics).stage_report()
        assert report["admit"]["met"] is False
        assert report["admit"]["p99"] > 0.10

    def test_overflow_bucket_reports_inf_and_misses(self):
        metrics = MetricsRegistry()
        beyond = STAGE_BUCKET_WIDTH * STAGE_NUM_BUCKETS * 10
        _observe(metrics, "deliver", [beyond] * 10)
        report = SloTracker(metrics).stage_report()
        assert math.isinf(report["deliver"]["p99"])
        assert report["deliver"]["met"] is False

    def test_custom_policy_overrides_objectives(self):
        metrics = MetricsRegistry()
        _observe(metrics, "admit", [0.5] * 100)
        lax = SloPolicy(objectives=(StageObjective("admit", p99=5.0),))
        report = SloTracker(metrics, policy=lax).stage_report()
        assert report["admit"]["met"] is True
        # stages without a declared objective carry no verdict
        assert "met" not in report["journal"]


class TestDeliveryReport:
    def test_no_traffic_means_full_budget(self):
        delivery = SloTracker(MetricsRegistry()).delivery_report()
        assert delivery["total"] == 0
        assert delivery["success_ratio"] == 1.0
        assert delivery["met"] is True
        assert delivery["error_budget"]["burn_rate"] == 0.0

    def test_budget_arithmetic(self):
        metrics = MetricsRegistry()
        metrics.counter("msgd_delivered_total").labels(dest="a").inc(998)
        metrics.counter("msgd_dropped_total").labels(reason="shed").inc(2)
        delivery = SloTracker(metrics).delivery_report()
        assert delivery["total"] == 1000
        assert delivery["success_ratio"] == 0.998
        # objective 99.9% -> budget 0.1%; 0.2% dropped burns it 2x over
        assert delivery["met"] is False
        budget = delivery["error_budget"]
        assert math.isclose(budget["allowed"], 0.001)
        assert math.isclose(budget["consumed"], 0.002)
        assert math.isclose(budget["burn_rate"], 2.0)
        assert budget["remaining_fraction"] == 0.0

    def test_sums_across_labelled_children(self):
        metrics = MetricsRegistry()
        metrics.counter("msgd_delivered_total").labels(dest="a").inc(500)
        metrics.counter("msgd_delivered_total").labels(dest="b").inc(499)
        metrics.counter("msgd_dropped_total").labels(reason="expired").inc(1)
        delivery = SloTracker(metrics).delivery_report()
        assert delivery["delivered"] == 999
        assert delivery["met"] is True
        assert math.isclose(
            delivery["error_budget"]["burn_rate"], 1.0, rel_tol=1e-6
        )


class TestSnapshot:
    def test_met_requires_every_objective(self):
        metrics = MetricsRegistry()
        metrics.counter("msgd_delivered_total").labels(dest="a").inc(100)
        _observe(metrics, "admit", [0.01] * 10)
        tracker = SloTracker(metrics)
        assert tracker.snapshot()["met"] is True
        _observe(metrics, "deliver", [9.0] * 10)  # blow the deliver objective
        snap = tracker.snapshot()
        assert snap["met"] is False
        assert snap["stages"]["deliver"]["met"] is False
        assert snap["delivery"]["met"] is True

    def test_disabled_registry_degrades_to_vacuous_pass(self):
        snap = SloTracker(MetricsRegistry(enabled=False)).snapshot()
        assert snap["met"] is True
        assert snap["delivery"]["total"] == 0

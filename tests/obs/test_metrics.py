"""Unit tests for the unified metrics registry."""

import threading

import pytest

from repro.obs.metrics import (
    NOOP_CHILD,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)


class TestCounters:
    def test_unlabeled_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("events_total", "help text")
        c.inc()
        c.inc(3)
        assert c.labels().get() == 4

    def test_labeled_children_are_independent(self):
        reg = MetricsRegistry()
        fam = reg.counter("drops_total")
        fam.labels(reason="full").inc()
        fam.labels(reason="full").inc()
        fam.labels(reason="auth").inc(5)
        assert fam.labels(reason="full").get() == 2
        assert fam.labels(reason="auth").get() == 5

    def test_label_order_does_not_matter(self):
        fam = MetricsRegistry().counter("c")
        fam.labels(a="1", b="2").inc()
        assert fam.labels(b="2", a="1").get() == 1

    def test_family_is_idempotent_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("same") is reg.counter("same")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("taken")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("taken")

    def test_concurrent_increments_are_not_lost(self):
        child = MetricsRegistry().counter("hammer_total").labels()
        per_thread, n_threads = 2000, 8
        barrier = threading.Barrier(n_threads)

        def work():
            barrier.wait()
            for _ in range(per_thread):
                child.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert child.get() == per_thread * n_threads


class TestGauges:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth").labels()
        g.set(10)
        g.inc(2)
        g.dec()
        assert g.get() == 11.0

    def test_live_callback(self):
        queue = [1, 2, 3]
        g = MetricsRegistry().gauge("depth").labels()
        g.set_function(lambda: len(queue))
        assert g.get() == 3.0
        queue.pop()
        assert g.get() == 2.0

    def test_set_after_callback_unbinds_it(self):
        g = MetricsRegistry().gauge("depth").labels()
        g.set_function(lambda: 99)
        g.set(1)
        assert g.get() == 1.0

    def test_dead_callback_reads_zero(self):
        g = MetricsRegistry().gauge("depth").labels()
        g.set_function(lambda: 1 / 0)
        assert g.get() == 0.0


class TestHistograms:
    def test_observe_and_summary(self):
        h = MetricsRegistry().histogram(
            "latency_seconds", bucket_width=0.01
        ).labels()
        for v in (0.005, 0.015, 0.025, 0.035):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(0.08)
        s = h.summary()
        assert s["count"] == 4
        assert s["min"] == pytest.approx(0.005)
        assert s["max"] == pytest.approx(0.035)
        assert 0.0 < s["quantiles"][0.5] <= 0.04

    def test_negative_values_clamped_for_bucketing(self):
        h = MetricsRegistry().histogram("h").labels()
        h.observe(-1.0)  # clock skew should not blow up the histogram
        assert h.count == 1


class TestDisabledMode:
    def test_all_instruments_are_the_shared_noop(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NOOP_CHILD
        assert reg.gauge("b") is NOOP_CHILD
        assert reg.histogram("c") is NOOP_CHILD
        assert reg.counter("a").labels(x="1") is NOOP_CHILD

    def test_noop_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("a")
        c.inc()
        c.observe(1.0)
        c.set(5)
        assert c.get() == 0.0
        assert c.count == 0
        assert reg.snapshot() == {}


class TestExposition:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "counts").labels(kind="x").inc(2)
        reg.histogram("h_seconds").observe(0.01)
        snap = reg.snapshot()
        assert snap["c_total"]["kind"] == "counter"
        assert snap["c_total"]["help"] == "counts"
        assert snap["c_total"]["samples"][0] == {
            "labels": {"kind": "x"},
            "value": 2,
        }
        hist_sample = snap["h_seconds"]["samples"][0]
        assert hist_sample["count"] == 1
        assert 0.5 in hist_sample["quantiles"]

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests").labels(dest="a b").inc()
        reg.gauge("depth").set(3)
        reg.histogram("lat_seconds", "latency").observe(0.02)
        text = reg.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{dest="a b"} 1' in text
        assert "depth 3" in text
        assert "# HELP lat_seconds latency" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.02" in text
        assert "lat_seconds_count 1" in text

    def test_prometheus_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h_seconds", bucket_width=0.1, num_buckets=10)
        for value in (0.05, 0.05, 0.15, 0.95):
            hist.observe(value)
        text = reg.render_prometheus()
        assert 'h_seconds_bucket{le="0.1"} 2' in text
        assert 'h_seconds_bucket{le="0.2"} 3' in text
        assert 'h_seconds_bucket{le="1"} 4' in text
        assert 'h_seconds_bucket{le="+Inf"} 4' in text
        assert "h_seconds_count 4" in text

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c").labels(v='say "hi"\n').inc()
        assert '\\"hi\\"\\n' in reg.render_prometheus()


class TestDefaultRegistry:
    def test_swap_and_restore(self):
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(previous)
        assert default_registry() is previous

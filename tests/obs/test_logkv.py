"""Unit tests for the key=value structured logging helpers."""

import io
import logging

from repro.obs.logkv import (
    KeyValueFormatter,
    component_logger,
    configure_logging,
    kv_line,
    log_event,
)


class TestComponentLogger:
    def test_namespaced_under_repro(self):
        assert component_logger("msgd").name == "repro.msgd"

    def test_already_qualified_names_pass_through(self):
        assert component_logger("repro.msgd").name == "repro.msgd"
        assert component_logger("repro").name == "repro"


class TestKvLine:
    def test_basic(self):
        assert (
            kv_line("admit", trace="trace-1", dest="ws:9000")
            == "event=admit trace=trace-1 dest=ws:9000"
        )

    def test_none_fields_dropped(self):
        assert kv_line("drop", trace=None, reason="full") == "event=drop reason=full"

    def test_values_needing_quotes(self):
        assert kv_line("x", msg="two words") == 'event=x msg="two words"'
        assert kv_line("x", msg='say "hi"') == 'event=x msg="say \\"hi\\""'
        assert kv_line("x", msg="") == 'event=x msg=""'
        assert kv_line("x", msg="a\nb") == 'event=x msg="a\\nb"'

    def test_non_string_values(self):
        assert kv_line("x", n=3, ok=True) == "event=x n=3 ok=True"


class TestLogEvent:
    def test_emits_kv_line(self, caplog):
        logger = component_logger("msgd")
        with caplog.at_level(logging.DEBUG, logger="repro.msgd"):
            log_event(logger, logging.DEBUG, "route", trace="trace-1", dest="d")
        assert "event=route trace=trace-1 dest=d" in caplog.text

    def test_suppressed_below_level(self, caplog):
        logger = component_logger("msgd")
        with caplog.at_level(logging.WARNING, logger="repro.msgd"):
            log_event(logger, logging.DEBUG, "route", trace="t")
        assert "event=route" not in caplog.text


class TestConfigureLogging:
    def _kv_handlers(self):
        root = logging.getLogger("repro")
        return [h for h in root.handlers if getattr(h, "_repro_kv_handler", False)]

    def test_formats_and_is_idempotent(self):
        stream = io.StringIO()
        handler = configure_logging(logging.INFO, stream=stream)
        try:
            # a second call replaces rather than duplicates the handler
            handler = configure_logging(logging.INFO, stream=stream)
            assert len(self._kv_handlers()) == 1
            component_logger("msgd").info(kv_line("hello", n=1))
            line = stream.getvalue().strip()
            assert "level=info" in line
            assert "logger=repro.msgd" in line
            assert line.endswith("event=hello n=1")
            assert line.startswith("ts=")
        finally:
            logging.getLogger("repro").removeHandler(handler)
        assert not self._kv_handlers()


class TestKeyValueFormatter:
    def test_record_prefix(self):
        record = logging.LogRecord(
            "repro.rpcd", logging.WARNING, __file__, 1, "event=drop", (), None
        )
        out = KeyValueFormatter().format(record)
        assert "level=warning" in out
        assert "logger=repro.rpcd" in out
        assert out.endswith("event=drop")

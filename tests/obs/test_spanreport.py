"""Span-report protocol: codec, handler, outbox store, shippers."""

import json

import pytest

from repro.http import HttpRequest, HttpResponse
from repro.obs.metrics import MetricsRegistry
from repro.obs.spanreport import (
    SPAN_REPORT_PATH,
    HttpSpanShipper,
    ReportingTraceStore,
    SpanReportHandler,
    decode_span_report,
    encode_span_report,
    make_span_report_request,
)
from repro.obs.trace import TraceStore


def _span_dicts(store, n=3, trace_id="trace-x"):
    for i in range(n):
        store.record(trace_id, f"op-{i}", "client", float(i), float(i) + 0.5)
    return store.drain_reports()


class TestCodec:
    def test_round_trip(self):
        store = ReportingTraceStore(span_prefix="client")
        spans = _span_dicts(store)
        assert decode_span_report(encode_span_report(spans)) == spans

    def test_decode_rejects_malformed(self):
        with pytest.raises(ValueError):
            decode_span_report(b"[1, 2, 3]")
        with pytest.raises(ValueError):
            decode_span_report(b'{"spans": "nope"}')
        with pytest.raises(ValueError):
            decode_span_report(b"not json")


class TestHandler:
    def test_absorbs_spans_into_the_aggregator(self):
        remote = ReportingTraceStore(span_prefix="client")
        spans = _span_dicts(remote, n=2)
        aggregator = TraceStore(span_prefix="wsd")
        metrics = MetricsRegistry()
        handler = SpanReportHandler(aggregator, metrics=metrics)
        response = handler(make_span_report_request(spans))
        assert response.status == 202
        assert json.loads(response.body)["absorbed"] == 2
        # span ids arrive verbatim — the prefix scheme prevents collisions
        assert {s.span_id for s in aggregator.get("trace-x")} == {
            "client-1", "client-2"
        }
        snap = metrics.snapshot()
        assert snap["obs_spans_ingested_total"]["samples"][0]["value"] == 2

    def test_rejects_non_post_and_bad_payloads(self):
        handler = SpanReportHandler(TraceStore(), metrics=MetricsRegistry())
        assert handler(HttpRequest("GET", SPAN_REPORT_PATH)).status == 405
        bad = HttpRequest("POST", SPAN_REPORT_PATH, body=b"garbage")
        assert handler(bad).status == 400


class TestReportingTraceStore:
    def test_recorded_spans_buffer_for_shipping(self):
        store = ReportingTraceStore(span_prefix="svc")
        store.record("trace-1", "absorb", "service", 0.0, 1.0)
        assert store.pending == 1
        batch = store.drain_reports()
        assert store.pending == 0
        assert batch[0]["span_id"] == "svc-1"
        assert store.shipped_total == 1

    def test_drain_respects_batch_and_requeue_restores_order(self):
        store = ReportingTraceStore(span_prefix="svc")
        _ = [store.record("t", f"op-{i}", "svc", 0.0, 1.0) for i in range(5)]
        first = store.drain_reports(max_spans=2)
        assert [s["name"] for s in first] == ["op-0", "op-1"]
        store.requeue_reports(first)
        assert store.pending == 5
        assert store.shipped_total == 0
        again = store.drain_reports()
        assert [s["name"] for s in again] == [f"op-{i}" for i in range(5)]

    def test_ingested_spans_are_not_rebuffered(self):
        upstream = ReportingTraceStore(span_prefix="client")
        spans = _span_dicts(upstream, n=2)
        downstream = ReportingTraceStore(span_prefix="wsd")
        assert downstream.ingest(spans) == 2
        assert downstream.pending == 0  # no report loop
        assert len(downstream.get("trace-x")) == 2

    def test_outbox_overflow_drops_oldest(self):
        store = ReportingTraceStore(span_prefix="c", outbox_capacity=2)
        for i in range(4):
            store.record("t", f"op-{i}", "c", 0.0, 1.0)
        assert [s["name"] for s in store.drain_reports()] == ["op-2", "op-3"]


class _StubClient:
    """Duck-typed HttpClient feeding a SpanReportHandler directly."""

    def __init__(self, handler, fail_first=0):
        self.handler = handler
        self.fail_first = fail_first
        self.calls = 0

    def request(self, url, request):
        self.calls += 1
        if self.calls <= self.fail_first:
            return HttpResponse(status=503, body=b"down")
        return self.handler(request)


class TestHttpSpanShipper:
    def test_flush_ships_everything_in_batches(self):
        aggregator = TraceStore(span_prefix="wsd")
        handler = SpanReportHandler(aggregator, metrics=MetricsRegistry())
        store = ReportingTraceStore(span_prefix="client")
        for i in range(5):
            store.record("trace-f", f"op-{i}", "client", 0.0, 1.0)
        shipper = HttpSpanShipper(
            _StubClient(handler), SPAN_REPORT_PATH, store, batch=2
        )
        assert shipper.flush() == 5
        assert shipper.shipped == 5
        assert store.pending == 0
        assert len(aggregator.get("trace-f")) == 5

    def test_failed_batch_is_requeued_for_retry(self):
        aggregator = TraceStore(span_prefix="wsd")
        handler = SpanReportHandler(aggregator, metrics=MetricsRegistry())
        store = ReportingTraceStore(span_prefix="client")
        for i in range(3):
            store.record("trace-r", f"op-{i}", "client", 0.0, 1.0)
        shipper = HttpSpanShipper(
            _StubClient(handler, fail_first=1), SPAN_REPORT_PATH, store, batch=8
        )
        assert shipper.flush() == 0
        assert shipper.failed == 3
        assert store.pending == 3  # nothing lost
        assert shipper.flush() == 3  # retry succeeds
        assert len(aggregator.get("trace-r")) == 3

    def test_start_stop_final_flush(self):
        aggregator = TraceStore(span_prefix="wsd")
        handler = SpanReportHandler(aggregator, metrics=MetricsRegistry())
        store = ReportingTraceStore(span_prefix="client")
        shipper = HttpSpanShipper(
            _StubClient(handler), SPAN_REPORT_PATH, store, interval=60.0
        )
        shipper.start()
        shipper.start()  # idempotent
        store.record("trace-s", "late", "client", 0.0, 1.0)
        shipper.stop(final_flush=True)
        assert len(aggregator.get("trace-s")) == 1

"""FlightRecorder: bounded ring, postmortem dumps, thread safety."""

import json
import threading

from repro.obs.flight import (
    FlightRecorder,
    default_flight_recorder,
    set_default_flight_recorder,
)


class TestRing:
    def test_bounded_capacity_keeps_newest(self):
        rec = FlightRecorder(capacity=8)
        for i in range(20):
            rec.record("shed", "msgd", t=float(i), n=i)
        assert len(rec) == 8
        assert rec.total_recorded == 20
        events = rec.snapshot()
        assert [e["n"] for e in events] == list(range(12, 20))
        # seq numbers keep counting past the ring
        assert events[-1]["seq"] == 20

    def test_fields_are_json_safe(self):
        rec = FlightRecorder()
        event = rec.record(
            "deadletter", "msgd", t=1.0,
            reason="unroutable", journal_seq=4, none_field=None, obj=object,
        )
        assert event["reason"] == "unroutable"
        assert event["journal_seq"] == 4
        assert "none_field" not in event
        assert isinstance(event["obj"], str)
        json.dumps(rec.to_json())  # never raises

    def test_snapshot_filters_by_kind_and_last(self):
        rec = FlightRecorder()
        rec.record("shed", "msgd", t=0.0)
        rec.record("breaker-open", "breaker", t=1.0)
        rec.record("shed", "msgd", t=2.0)
        assert [e["t"] for e in rec.snapshot(kind="shed")] == [0.0, 2.0]
        assert [e["t"] for e in rec.snapshot(last=1)] == [2.0]
        assert rec.counts_by_kind() == {"shed": 2, "breaker-open": 1}

    def test_disabled_recorder_is_a_noop(self):
        rec = FlightRecorder(enabled=False)
        assert rec.record("shed", "msgd", t=0.0) is None
        assert len(rec) == 0
        assert rec.total_recorded == 0

    def test_thread_safety_under_concurrent_recording(self):
        rec = FlightRecorder(capacity=64)
        n_threads, per_thread = 8, 500

        def worker(i):
            for j in range(per_thread):
                rec.record("shed", f"w{i}", t=float(j))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.total_recorded == n_threads * per_thread
        assert len(rec) == 64
        seqs = [e["seq"] for e in rec.snapshot()]
        # the retained window is the most recent, strictly ordered slice
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        assert seqs[-1] == n_threads * per_thread


class TestPostmortem:
    def test_dump_writes_deterministic_json(self, tmp_path):
        rec = FlightRecorder()
        rec.record("breaker-open", "breaker", t=1.5, dest="a:1")
        path = rec.dump(str(tmp_path / "dump.json"), trigger="manual")
        payload = json.loads(open(path).read())
        assert payload["trigger"] == "manual"
        assert payload["events"][0]["kind"] == "breaker-open"

    def test_postmortem_records_trigger_and_dumps(self, tmp_path):
        rec = FlightRecorder(postmortem_dir=str(tmp_path))
        rec.record("shed", "msgd", t=1.0)
        path = rec.postmortem("deadletter", t=2.0, reason="unroutable")
        assert path is not None and path.endswith("postmortem-1-deadletter.json")
        payload = json.loads(open(path).read())
        kinds = [e["kind"] for e in payload["events"]]
        assert kinds == ["shed", "postmortem"]
        assert payload["events"][-1]["trigger"] == "deadletter"
        assert payload["events"][-1]["t"] == 2.0

    def test_postmortem_without_dir_still_records(self):
        rec = FlightRecorder()
        assert rec.postmortem("crash", t=0.0) is None
        assert rec.snapshot(kind="postmortem")

    def test_dump_cap_stops_a_deadletter_storm(self, tmp_path):
        rec = FlightRecorder(postmortem_dir=str(tmp_path), postmortem_limit=3)
        written = [rec.postmortem("deadletter", t=float(i)) for i in range(10)]
        assert sum(1 for p in written if p) == 3
        assert len(list(tmp_path.iterdir())) == 3


class TestDispatcherIntegration:
    def test_deadletter_triggers_a_postmortem_dump(self, tmp_path, simnet):
        """An unroutable journaled message dead-letters; the flight
        recorder dumps the black box automatically."""
        from repro.core.registry import ServiceRegistry
        from repro.core.sim_dispatcher import (
            SimMsgDispatcher,
            SimMsgDispatcherConfig,
        )
        from repro.http import Headers, HttpRequest
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import TraceStore
        from repro.simnet.httpsim import SimHttpServer, sim_http_request
        from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
        from repro.soap.constants import SOAP11_CONTENT_TYPE
        from repro.store.journal import MessageJournal
        from repro.workload.echo import make_echo_message

        sim = simnet.sim
        client = add_site(simnet, INRIA, name="client")
        wsd = add_site(simnet, BACKBONE_IU, name="wsd", open_ports=(8000,))
        flight = FlightRecorder(
            clock=lambda: sim.now, postmortem_dir=str(tmp_path)
        )
        journal = MessageJournal(sync="lazy", now_fn=lambda: sim.now)
        dispatcher = SimMsgDispatcher(
            simnet, wsd, ServiceRegistry(metrics=MetricsRegistry()),
            own_address="http://wsd:8000/msg",
            config=SimMsgDispatcherConfig(),
            metrics=MetricsRegistry(), traces=TraceStore(),
            durable=journal, flight=flight,
        )
        SimHttpServer(simnet, wsd, 8000, dispatcher.handler)

        env = make_echo_message(to="urn:wsd:nosuch", message_id="uuid:pm-1")
        headers = Headers()
        headers.set("Content-Type", SOAP11_CONTENT_TYPE)

        def send():
            resp = yield from sim_http_request(
                simnet, client, "wsd", 8000,
                HttpRequest(
                    "POST", "/msg/nosuch", headers=headers, body=env.to_bytes()
                ),
            )
            return resp.status

        assert sim.run(sim.process(send())) == 202
        sim.run(until=sim.now + 2.0)

        assert flight.counts_by_kind().get("deadletter") == 1
        dumps = sorted(tmp_path.iterdir())
        assert len(dumps) == 1 and "deadletter" in dumps[0].name
        payload = json.loads(dumps[0].read_text())
        kinds = [e["kind"] for e in payload["events"]]
        assert "deadletter" in kinds
        journal.close()


class TestDefaultRecorder:
    def test_swap_and_restore(self):
        mine = FlightRecorder()
        previous = set_default_flight_recorder(mine)
        try:
            assert default_flight_recorder() is mine
        finally:
            set_default_flight_recorder(previous)
        assert default_flight_recorder() is previous

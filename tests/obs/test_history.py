"""MetricsSnapshotter: flattening, ring bounding, export, sim sampling."""

import json

from repro.obs.history import MetricsSnapshotter
from repro.obs.metrics import MetricsRegistry


def _registry_with_traffic():
    metrics = MetricsRegistry()
    metrics.counter("msgd_delivered_total", "delivered").labels(dest="a").inc(3)
    metrics.gauge("msgd_backlog", "backlog").labels().set(7)
    hist = metrics.histogram(
        "msgd_queue_wait_seconds", "wait", bucket_width=0.1, num_buckets=10
    )
    hist.labels(queue="accept").observe(0.25)
    hist.labels(queue="accept").observe(0.35)
    return metrics


class TestFlatten:
    def test_sample_flattens_counters_gauges_histograms(self):
        snapshotter = MetricsSnapshotter(_registry_with_traffic(), clock=lambda: 5.0)
        sample = snapshotter.sample()
        assert sample["t"] == 5.0
        values = sample["values"]
        assert values["msgd_delivered_total{dest=a}"] == 3
        assert values["msgd_backlog"] == 7
        assert values["msgd_queue_wait_seconds{queue=accept}_count"] == 2
        assert values["msgd_queue_wait_seconds{queue=accept}_sum"] == 0.6
        assert "msgd_queue_wait_seconds{queue=accept}_p99" in values

    def test_explicit_timestamp_wins_over_clock(self):
        snapshotter = MetricsSnapshotter(MetricsRegistry(), clock=lambda: 99.0)
        assert snapshotter.sample(t=1.5)["t"] == 1.5


class TestRing:
    def test_capacity_bounds_the_ring(self):
        snapshotter = MetricsSnapshotter(MetricsRegistry(), capacity=4)
        for i in range(10):
            snapshotter.sample(t=float(i))
        assert len(snapshotter) == 4
        assert [s["t"] for s in snapshotter.history()] == [6.0, 7.0, 8.0, 9.0]

    def test_invalid_construction_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            MetricsSnapshotter(MetricsRegistry(), interval=0)
        with pytest.raises(ValueError):
            MetricsSnapshotter(MetricsRegistry(), capacity=0)


class TestExport:
    def test_export_json_is_deterministic(self, tmp_path):
        metrics = _registry_with_traffic()
        snapshotter = MetricsSnapshotter(metrics, interval=2.0, capacity=16)
        snapshotter.sample(t=1.0)
        snapshotter.sample(t=3.0)
        path = str(tmp_path / "out" / "metrics_history.json")
        assert snapshotter.export_json(path) == path
        first = open(path).read()
        payload = json.loads(first)
        assert payload["interval"] == 2.0
        assert [s["t"] for s in payload["samples"]] == [1.0, 3.0]
        # re-export is byte-identical (sorted keys, fixed indent)
        snapshotter.export_json(path)
        assert open(path).read() == first


class TestSimDriver:
    def test_sim_process_samples_in_simulated_time(self, sim):
        metrics = MetricsRegistry()
        counter = metrics.counter("ticks_total", "ticks").labels()

        def ticker():
            while sim.now < 10.0:
                yield sim.timeout(1.0)
                counter.inc()

        snapshotter = MetricsSnapshotter(metrics, interval=2.0, clock=lambda: -1.0)
        sim.process(ticker())
        sim.process(snapshotter.sim_process(sim, until=10.0))
        sim.run(until=30.0)
        history = snapshotter.history()
        assert [s["t"] for s in history] == [2.0, 4.0, 6.0, 8.0, 10.0]
        # the counter's trajectory is visible sample over sample (at equal
        # timestamps the snapshotter is scheduled ahead of the ticker, so
        # each sample sees the previous second's count)
        assert [s["values"]["ticks_total"] for s in history] == [1, 3, 5, 7, 9]


class TestThreadedDriver:
    def test_start_stop_takes_final_sample(self):
        snapshotter = MetricsSnapshotter(
            MetricsRegistry(), interval=60.0, clock=lambda: 0.0
        )
        snapshotter.start()
        snapshotter.start()  # idempotent
        snapshotter.stop(final_sample=True)
        assert len(snapshotter) == 1
        snapshotter.stop()  # stop after stop is safe

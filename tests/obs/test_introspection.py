"""Unit tests for the /metrics + /trace introspection surface."""

import json

import pytest

from repro.http import Headers, HttpRequest
from repro.obs.http import Introspection
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceStore


class FakeComponent:
    def __init__(self, **stats):
        self._stats = stats

    @property
    def stats(self):
        return dict(self._stats)


def make_introspection():
    return Introspection(metrics=MetricsRegistry(), traces=TraceStore())


def get(target: str, accept: str | None = None) -> HttpRequest:
    headers = Headers()
    if accept:
        headers.set("Accept", accept)
    return HttpRequest("GET", target, headers=headers)


class TestSources:
    def test_stats_property_and_callable_sources(self):
        intro = make_introspection()
        intro.add_source("svc", FakeComponent(handled=3))
        intro.add_source("fn", lambda: {"x": 1})
        assert intro.components_snapshot() == {
            "svc": {"handled": 3},
            "fn": {"x": 1},
        }

    def test_duplicate_name_rejected(self):
        intro = make_introspection()
        intro.add_source("svc", FakeComponent())
        with pytest.raises(ValueError, match="already registered"):
            intro.add_source("svc", FakeComponent())

    def test_duplicate_name_suffixed_on_request(self):
        intro = make_introspection()
        assert intro.add_source("svc", FakeComponent(a=1)) == "svc"
        assert (
            intro.add_source("svc", FakeComponent(a=2), on_duplicate="suffix")
            == "svc#2"
        )
        assert (
            intro.add_source("svc", FakeComponent(a=3), on_duplicate="suffix")
            == "svc#3"
        )
        snap = intro.components_snapshot()
        assert snap["svc"] == {"a": 1}
        assert snap["svc#2"] == {"a": 2}
        assert snap["svc#3"] == {"a": 3}

    def test_unknown_duplicate_policy_rejected(self):
        with pytest.raises(ValueError, match="on_duplicate"):
            make_introspection().add_source(
                "svc", FakeComponent(), on_duplicate="overwrite"
            )

    def test_source_without_stats_rejected(self):
        with pytest.raises(TypeError, match="needs .stats"):
            make_introspection().add_source("bad", object())

    def test_broken_source_becomes_error_entry(self):
        intro = make_introspection()

        def boom():
            raise RuntimeError("dead component")

        intro.add_source("svc", boom)
        snap = intro.components_snapshot()
        assert "dead component" in snap["svc"]["error"]


class TestMetricsEndpoint:
    def test_prometheus_by_default(self):
        intro = make_introspection()
        intro.metrics.counter("req_total", "requests").inc(2)
        intro.add_source("svc", FakeComponent(handled=3, label="x"))
        response = intro.metrics_handler(get("/metrics"))
        assert response.status == 200
        assert "version=0.0.4" in (response.headers.get("Content-Type") or "")
        text = response.body.decode()
        assert "req_total 2" in text
        # component stats ride along as synthetic gauges (numeric only)
        assert 'repro_component_stat{component="svc",stat="handled"} 3' in text
        assert "label" not in text

    def test_json_via_query_and_accept(self):
        intro = make_introspection()
        intro.metrics.gauge("depth").set(4)
        intro.traces.record("t1", "admit", "msgd", 0.0, 1.0)
        for request in (
            get("/metrics?format=json"),
            get("/metrics", accept="application/json"),
        ):
            payload = json.loads(intro.metrics_handler(request).body)
            assert payload["metrics"]["depth"]["samples"][0]["value"] == 4
            assert payload["traces"] == {"count": 1, "ids": ["t1"]}


class TestTraceEndpoint:
    def test_known_trace_as_json(self):
        intro = make_introspection()
        intro.traces.record("t1", "admit", "msgd", 0.0, 1.0)
        response = intro.trace_handler(get("/trace/t1"))
        assert response.status == 200
        doc = json.loads(response.body)
        assert doc["trace_id"] == "t1"
        assert [s["name"] for s in doc["spans"]] == ["admit"]

    def test_text_timeline(self):
        intro = make_introspection()
        intro.traces.record("t1", "admit", "msgd", 0.0, 1.0)
        response = intro.trace_handler(get("/trace/t1?format=text"))
        assert b"msgd/admit" in response.body

    def test_unknown_trace_is_404(self):
        response = make_introspection().trace_handler(get("/trace/nope"))
        assert response.status == 404
        assert "unknown trace" in json.loads(response.body)["error"]

    def test_bare_trace_path_lists_recent_ids(self):
        intro = make_introspection()
        intro.traces.record("t1", "a", "c", 0.0, 1.0)
        intro.traces.record("t2", "a", "c", 0.0, 1.0)
        payload = json.loads(intro.trace_handler(get("/trace/")).body)
        assert payload == {"traces": ["t1", "t2"]}


class TestMount:
    def test_mounts_all_pages(self):
        mounted = {}

        class FakeApp:
            def mount_page(self, path, handler):
                mounted[path] = handler

        intro = make_introspection()
        intro.mount(FakeApp())
        assert set(mounted) == {
            "/metrics", "/trace", "/health", "/deadletters",
            "/slo", "/flightrecorder", "/metrics/history",
        }


class TestDeadletters:
    def test_deadletters_page_renders_journal_snapshots(self):
        from repro.store import DEAD, MessageJournal

        intro = make_introspection()
        journal = MessageJournal(sync="lazy", flush_threshold=1)
        seq = journal.append("m1", "/msg/echo", b"<x/>")
        journal.mark(seq, DEAD, reason="expired")
        intro.add_deadletter_source("msgd", journal.deadletter_snapshot)
        payload = json.loads(intro.deadletters_handler(get("/deadletters")).body)
        assert payload["msgd"]["total"] == 1
        assert payload["msgd"]["by_reason"] == {"expired": 1}
        assert payload["msgd"]["recent"][0]["message_id"] == "m1"
        # and the JSON metrics snapshot grows a deadletters section
        assert intro.json_snapshot()["deadletters"]["msgd"]["total"] == 1
        journal.close()

    def test_duplicate_source_rejected_and_errors_captured(self):
        intro = make_introspection()
        intro.add_deadletter_source("msgd", lambda: {"total": 0})
        try:
            intro.add_deadletter_source("msgd", lambda: {})
        except ValueError:
            pass
        else:  # pragma: no cover - the assert below fails loudly
            raise AssertionError("duplicate source name not rejected")

        def broken():
            raise RuntimeError("journal gone")

        intro.add_deadletter_source("broken", broken)
        snapshot = intro.deadletters_snapshot()
        assert snapshot["msgd"] == {"total": 0}
        assert "journal gone" in snapshot["broken"]["error"]

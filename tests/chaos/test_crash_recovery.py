"""Seeded crash-recovery acceptance: the simulated twin of the SIGKILL
test (see ``tests/store/test_crash_sigkill.py``), deterministic enough
to assert bit-reproducibility."""

from repro.experiments import crashrecovery


def test_crash_mid_drain_zero_loss_and_bit_reproducible():
    point = crashrecovery.run_point(
        6.0, 4.0, messages=30, seed=5, horizon=90.0
    )
    rerun = crashrecovery.run_point(
        6.0, 4.0, messages=30, seed=5, horizon=90.0
    )
    # bit-reproducible: the whole run is simulated, same seed = same run
    assert point == rerun
    # zero loss: the client got every message accepted (retrying through
    # the outage) and each one reached the sink
    assert point["accepted"] == point["sent"] == 30
    assert point["delivered_unique"] == 30
    # the restarted incarnation actually replayed journal records
    assert point["replayed_on_restart"] >= 1
    # at-least-once on the wire, exactly-once absorption at the sink
    assert point["duplicates_absorbed"] == point["duplicates_at_sink"]
    assert point["journal_pending"] == 0 or point["dead_letters"] == 0


def test_shape_check_flags_losses():
    report = crashrecovery.ExperimentReport(
        experiment="x", description="y",
        extras={
            "p": {
                "sent": 10, "accepted": 10, "delivered_unique": 8,
                "reproducible": True,
            }
        },
    )
    failures = crashrecovery.check_shape(report)
    assert len(failures) == 1 and "lost" in failures[0]

"""Telemetry acceptance for the chaos experiment.

One seeded grid point must bit-reproducibly yield: a multi-process span
tree in the aggregated store, fault events in the flight recorder, a
postmortem dump on disk, and a metrics time-series export — the ISSUE-6
acceptance artifacts.
"""

import hashlib
import json
import os

from repro.experiments.chaos import run_point

LOSS, FLAP = 0.1, 30.0


def _run(tmp_dir, messages=40, horizon=120.0):
    return run_point(
        LOSS, FLAP, messages=messages, send_gap=0.25, seed=7,
        horizon=horizon, telemetry_dir=str(tmp_dir),
    )


def _file_hashes(root):
    hashes = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root)
            hashes[rel] = hashlib.sha256(open(path, "rb").read()).hexdigest()
    return hashes


def test_chaos_point_produces_the_acceptance_artifacts(tmp_path):
    out = _run(tmp_path / "a")

    # a ≥3-process span tree was aggregated for at least one message
    assert out["sample_trace"] is not None
    assert len(out["trace_components"]) >= 3
    assert {"client", "msgd"} <= set(out["trace_components"])
    assert out["spans_shipped"] > 0

    # the flight recorder saw the injected chaos
    kinds = out["flight_events"]
    assert kinds.get("fault-inject", 0) > 0
    assert kinds.get("fault-restore", 0) > 0

    # metrics history exported with at least a sample per interval
    history_path = tmp_path / "a" / "metrics_history.json"
    assert history_path.exists()
    history = json.loads(history_path.read_text())
    assert out["history_samples"] == len(history["samples"])
    assert out["history_samples"] >= 2
    # every sample is stamped in simulated time, monotonically
    ts = [s["t"] for s in history["samples"]]
    assert ts == sorted(ts)

    # a postmortem dump landed in the per-point directory
    assert out["postmortem"] is not None
    pm_dir = tmp_path / "a" / f"postmortem-loss{LOSS:g}-flap{FLAP:g}"
    dumps = sorted(p.name for p in pm_dir.iterdir())
    assert dumps, "no postmortem dumps written"
    payload = json.loads((pm_dir / dumps[-1]).read_text())
    kinds_in_dump = {e["kind"] for e in payload["events"]}
    assert "fault-inject" in kinds_in_dump


def test_telemetry_artifacts_are_bit_reproducible(tmp_path):
    first = _run(tmp_path / "one")
    second = _run(tmp_path / "two")
    # the postmortem value is an absolute path; compare by basename
    for out in (first, second):
        out["postmortem"] = os.path.basename(out["postmortem"])
    assert first == second
    assert _file_hashes(tmp_path / "one") == _file_hashes(tmp_path / "two")

"""FaultPlan unit tests: validation, window expansion, point queries."""

import pytest

from repro.chaos import (
    AddedLatency,
    FaultPlan,
    LinkDown,
    LinkFlap,
    PacketLoss,
    RegistryOutage,
    ServiceCrash,
    ServiceStop,
    SlowResponder,
)
from repro.errors import SimulationError


class TestValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan((LinkDown("a", at=-1.0, duration=1.0),))

    def test_zero_duration_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan((PacketLoss("a", at=0.0, duration=0.0, rate=0.5),))

    def test_total_loss_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan((PacketLoss("a", at=0.0, duration=1.0, rate=1.0),))

    def test_flap_down_for_longer_than_period_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan(
                (LinkFlap("a", at=0.0, period=2.0, down_for=3.0, until=10.0),)
            )

    def test_flap_ending_before_start_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan(
                (LinkFlap("a", at=5.0, period=2.0, down_for=1.0, until=5.0),)
            )

    def test_speedup_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan((SlowResponder("a", at=0.0, duration=1.0, factor=0.5),))

    def test_nonpositive_restart_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan((ServiceCrash("a", at=0.0, restart_after=0.0),))

    def test_faults_coerced_to_tuple(self):
        plan = FaultPlan([LinkDown("a", at=0.0, duration=1.0)])
        assert isinstance(plan.faults, tuple)


class TestQueries:
    def test_flap_expands_to_windows(self):
        flap = LinkFlap("a", at=10.0, period=5.0, down_for=2.0, until=22.0)
        assert flap.windows() == [(10.0, 12.0), (15.0, 17.0), (20.0, 22.0)]

    def test_link_down_combines_static_and_flap(self):
        plan = FaultPlan((
            LinkDown("a", at=1.0, duration=2.0),
            LinkFlap("a", at=10.0, period=4.0, down_for=1.0, until=15.0),
            LinkDown("b", at=0.0, duration=100.0),
        ))
        assert plan.link_down_windows("a") == [
            (1.0, 3.0), (10.0, 11.0), (14.0, 15.0)
        ]
        assert plan.is_link_down("a", 1.5)
        assert not plan.is_link_down("a", 5.0)
        assert plan.is_link_down("b", 50.0)

    def test_loss_rate_takes_maximum_of_overlaps(self):
        plan = FaultPlan((
            PacketLoss("a", at=0.0, duration=10.0, rate=0.1),
            PacketLoss("a", at=5.0, duration=10.0, rate=0.4),
        ))
        assert plan.loss_rate("a", 2.0) == 0.1
        assert plan.loss_rate("a", 7.0) == 0.4
        assert plan.loss_rate("a", 20.0) == 0.0

    def test_latency_sums_overlapping_windows(self):
        plan = FaultPlan((
            AddedLatency("a", at=0.0, duration=10.0, extra=0.1, jitter=0.02),
            AddedLatency("a", at=5.0, duration=10.0, extra=0.2),
        ))
        assert plan.extra_latency("a", 7.0) == (
            pytest.approx(0.3), pytest.approx(0.02)
        )
        assert plan.extra_latency("a", 2.0) == (0.1, 0.02)

    def test_crash_with_and_without_restart(self):
        plan = FaultPlan((
            ServiceCrash("perm", at=5.0),
            ServiceCrash("reboot", at=5.0, restart_after=10.0),
        ))
        assert not plan.is_crashed("perm", 4.0)
        assert plan.is_crashed("perm", 1000.0)
        assert plan.is_crashed("reboot", 10.0)
        assert not plan.is_crashed("reboot", 15.0)

    def test_service_stop_is_port_scoped(self):
        plan = FaultPlan((ServiceStop("a", port=80, at=0.0, duration=5.0),))
        assert plan.is_stopped("a", 80, 1.0)
        assert not plan.is_stopped("a", 81, 1.0)
        assert not plan.is_stopped("a", 80, 6.0)

    def test_slow_factor_multiplies(self):
        plan = FaultPlan((
            SlowResponder("a", at=0.0, duration=10.0, factor=2.0),
            SlowResponder("a", at=0.0, duration=10.0, factor=3.0),
        ))
        assert plan.slow_factor("a", 1.0) == 6.0
        assert plan.slow_factor("a", 11.0) == 1.0

    def test_registry_down_window(self):
        plan = FaultPlan((RegistryOutage(at=3.0, duration=2.0),))
        assert plan.registry_down(4.0)
        assert not plan.registry_down(5.5)

    def test_horizon_covers_every_fault(self):
        plan = FaultPlan((
            LinkFlap("a", at=0.0, period=5.0, down_for=1.0, until=20.0),
            ServiceCrash("b", at=30.0, restart_after=5.0),
            PacketLoss("c", at=1.0, duration=2.0, rate=0.5),
        ))
        assert plan.horizon() == 35.0

"""ChaosController behaviour against a simulated network."""

import pytest

from repro.chaos import (
    AddedLatency,
    ChaosController,
    FaultPlan,
    LinkDown,
    PacketLoss,
    RegistryOutage,
    ServiceCrash,
    SlowResponder,
    ServiceStop,
)
from repro.core.registry import ServiceRegistry
from repro.errors import RegistryUnavailable, SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.simnet.kernel import Simulator
from repro.simnet.topology import AccessLink, Network


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim)
    a = net.add_host("a", AccessLink(2000, 2000, 0.010))
    b = net.add_host("b", AccessLink(2000, 2000, 0.010))
    return sim, net, a, b


def test_packet_loss_window_sets_and_restores(world):
    sim, net, a, b = world
    plan = FaultPlan((PacketLoss("a", at=1.0, duration=2.0, rate=0.25),))
    ChaosController(net, plan).start()
    observed = {}

    def watcher():
        yield sim.timeout(1.5)
        observed["during"] = a.link.loss
        yield sim.timeout(2.0)
        observed["after"] = a.link.loss

    sim.run(sim.process(watcher()))
    assert observed == {"during": 0.25, "after": 0.0}


def test_crash_and_restart_toggles_host(world):
    sim, net, a, b = world
    epoch_before = a.epoch
    plan = FaultPlan((ServiceCrash("a", at=1.0, restart_after=3.0),))
    ChaosController(net, plan).start()
    observed = {}

    def watcher():
        yield sim.timeout(2.0)
        observed["during"] = a.failed
        yield sim.timeout(3.0)
        observed["after"] = a.failed

    sim.run(sim.process(watcher()))
    assert observed == {"during": True, "after": False}
    # the reboot bumps the epoch, so pre-crash connections read as stale
    assert a.epoch == epoch_before + 1


def test_link_down_stalls_transfer_until_window_ends(world):
    sim, net, a, b = world
    plan = FaultPlan((LinkDown("b", at=0.0, duration=5.0),))
    ChaosController(net, plan).start()

    def xfer():
        yield net.transfer(a, b, 100)
        return sim.now

    done_at = sim.run(sim.process(xfer()))
    assert done_at >= 5.0
    assert b.link.stalled_transfers == 1


def test_added_latency_delays_transfer(world):
    sim, net, a, b = world
    plan = FaultPlan((AddedLatency("b", at=0.0, duration=10.0, extra=0.5),))
    ChaosController(net, plan).start()

    def xfer():
        t0 = sim.now
        yield net.transfer(a, b, 100)
        return sim.now - t0

    elapsed = sim.run(sim.process(xfer()))
    assert elapsed >= 0.5


def test_slow_responder_scales_cpu_factor(world):
    sim, net, a, b = world
    plan = FaultPlan((SlowResponder("a", at=1.0, duration=2.0, factor=4.0),))
    ChaosController(net, plan).start()
    observed = {}

    def watcher():
        yield sim.timeout(2.0)
        observed["during"] = a.cpu_factor
        yield sim.timeout(2.0)
        observed["after"] = a.cpu_factor

    sim.run(sim.process(watcher()))
    assert observed == {"during": 4.0, "after": 1.0}


def test_registry_outage_window(world):
    sim, net, a, b = world
    registry = ServiceRegistry()
    registry.register("svc", "http://b:80/svc")
    plan = FaultPlan((RegistryOutage(at=1.0, duration=2.0),))
    ChaosController(net, plan, registry=registry).start()
    observed = {}

    def watcher():
        yield sim.timeout(2.0)
        try:
            registry.lookup("svc")
            observed["during"] = "ok"
        except RegistryUnavailable:
            observed["during"] = "down"
        yield sim.timeout(2.0)
        observed["after"] = registry.lookup("svc").logical

    sim.run(sim.process(watcher()))
    assert observed["during"] == "down"
    assert observed["after"] == "svc"


def test_registry_outage_requires_registry(world):
    sim, net, a, b = world
    plan = FaultPlan((RegistryOutage(at=0.0, duration=1.0),))
    with pytest.raises(SimulationError):
        ChaosController(net, plan).start()


def test_service_stop_requires_known_server(world):
    sim, net, a, b = world
    plan = FaultPlan((ServiceStop("a", port=80, at=0.0, duration=1.0),))
    with pytest.raises(SimulationError):
        ChaosController(net, plan).start()


def test_injection_metrics_and_counts(world):
    sim, net, a, b = world
    metrics = MetricsRegistry()
    plan = FaultPlan((
        PacketLoss("a", at=0.0, duration=1.0, rate=0.5),
        ServiceCrash("b", at=0.5, restart_after=1.0),
    ))
    controller = ChaosController(net, plan, metrics=metrics)
    controller.start()
    controller.start()  # idempotent
    sim.run(until=10.0)
    assert controller.injected == 2
    rendered = metrics.render_prometheus()
    assert 'chaos_faults_injected_total{kind="PacketLoss"} 1' in rendered
    assert 'chaos_faults_injected_total{kind="ServiceCrash"} 1' in rendered
    assert "chaos_faults_active 0" in rendered

"""FaultyHttpClient: the real-mode FaultPlan shim, on a ManualClock."""

import pytest

from repro.chaos import FaultPlan, FaultyHttpClient
from repro.chaos.plan import (
    AddedLatency,
    LinkDown,
    PacketLoss,
    ServiceCrash,
    ServiceStop,
)
from repro.errors import ConnectionRefused, ConnectionTimeout, TransportError
from repro.http import HttpRequest, HttpResponse
from repro.obs.metrics import MetricsRegistry
from repro.util.clock import ManualClock


class RecordingClient:
    """Inner client: records calls, always answers 200."""

    def __init__(self):
        self.calls = []
        self.closed = False

    def request(self, url, request):
        self.calls.append(url)
        return HttpResponse(status=200)

    def prepare(self, url, request):
        return request

    def close(self):
        self.closed = True


def make(plan, clock=None, metrics=None):
    inner = RecordingClient()
    shim = FaultyHttpClient(
        inner, plan, clock=clock or ManualClock(), metrics=metrics
    )
    return inner, shim


REQ = HttpRequest("POST", "/x")


def test_no_faults_delegates(monkeypatch):
    inner, shim = make(FaultPlan())
    assert shim.request("http://svc:80/x", REQ).status == 200
    assert inner.calls == ["http://svc:80/x"]
    assert shim.injected == 0


def test_crash_window_times_out_then_recovers():
    clock = ManualClock()
    _, shim = make(
        FaultPlan((ServiceCrash("svc", at=1.0, restart_after=2.0),)),
        clock=clock,
    )
    assert shim.request("http://svc:80/x", REQ).status == 200
    clock.advance(1.5)
    with pytest.raises(ConnectionTimeout):
        shim.request("http://svc:80/x", REQ)
    clock.advance(2.0)
    assert shim.request("http://svc:80/x", REQ).status == 200
    assert shim.injected == 1


def test_link_down_and_service_stop_distinguished():
    clock = ManualClock()
    _, shim = make(
        FaultPlan((
            LinkDown("down", at=0.0, duration=10.0),
            ServiceStop("stopped", port=80, at=0.0, duration=10.0),
        )),
        clock=clock,
    )
    with pytest.raises(ConnectionTimeout):
        shim.request("http://down:80/x", REQ)
    with pytest.raises(ConnectionRefused):
        shim.request("http://stopped:80/x", REQ)
    # another port on the stopped host is unaffected
    assert shim.request("http://stopped:81/x", REQ).status == 200


def test_packet_loss_is_seeded_and_deterministic():
    plan = FaultPlan(
        (PacketLoss("svc", at=0.0, duration=100.0, rate=0.5),), seed=42
    )

    def outcomes():
        _, shim = make(plan, clock=ManualClock())
        out = []
        for _ in range(40):
            try:
                shim.request("http://svc:80/x", REQ)
                out.append("ok")
            except TransportError:
                out.append("lost")
        return out

    first, second = outcomes(), outcomes()
    assert first == second
    assert "lost" in first and "ok" in first


def test_added_latency_sleeps_on_the_clock():
    clock = ManualClock()
    _, shim = make(
        FaultPlan((AddedLatency("svc", at=0.0, duration=100.0, extra=0.75),)),
        clock=clock,
    )
    t0 = clock.now()
    assert shim.request("http://svc:80/x", REQ).status == 200
    assert clock.now() - t0 == pytest.approx(0.75)


def test_injections_counted_in_metrics():
    metrics = MetricsRegistry()
    clock = ManualClock()
    _, shim = make(
        FaultPlan((ServiceCrash("svc", at=0.0),)), clock=clock, metrics=metrics
    )
    for _ in range(3):
        with pytest.raises(ConnectionTimeout):
            shim.request("http://svc:80/x", REQ)
    assert shim.injected == 3
    assert (
        'chaos_faults_injected_total{kind="ServiceCrash"} 3'
        in metrics.render_prometheus()
    )


def test_close_and_context_manager():
    inner, shim = make(FaultPlan())
    with shim as s:
        assert s is shim
    assert inner.closed

"""Acceptance scenario from the robustness issue.

A seeded chaos run (30% packet loss + a mid-run service crash/restart +
a link flap) against the full SimMsgDispatcher + hold/retry + breaker
stack must lose nothing: every accepted message is delivered exactly once
past the DuplicateFilter (or explicitly expired), and two runs with the
same seed produce bit-identical results.  With breakers enabled a dead
destination stops consuming network delivery attempts within one breaker
window, and the metrics/introspection surfaces show the transitions.
"""

from repro.chaos import ChaosController, FaultPlan, LinkFlap, PacketLoss, ServiceCrash
from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.errors import ReproError
from repro.http import Headers, HttpRequest, HttpResponse
from repro.obs.http import Introspection
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceStore
from repro.reliable import BreakerConfig, DuplicateFilter, FixedDelay, HoldRetryStore
from repro.simnet.httpsim import SimHttpClientPool, SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.topology import Network
from repro.soap import Envelope
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.wsa import AddressingHeaders

SEED = 1234


def _build(seed, faults, messages=60, send_gap=0.25, horizon=120.0,
           connect_timeout=2.0, hold_delay=0.5, breaker=None, sink_up=True):
    """Assemble the scenario; returns a dict of live pieces plus a runner."""
    sim = Simulator()
    net = Network(sim, loss_seed=seed)
    client_host = add_site(net, INRIA, name="client")
    wsd_host = add_site(net, BACKBONE_IU, name="wsd", open_ports=(8000,))
    sink_host = add_site(net, BACKBONE_IU, name="sink", open_ports=(9000,))

    metrics = MetricsRegistry()
    traces = TraceStore(enabled=False)
    registry = ServiceRegistry(metrics=metrics)
    registry.register("echo", "http://sink:9000/echo")

    dupes = DuplicateFilter(window=3600.0, clock=sim.clock)
    delivered: list[str] = []
    arrivals = {"raw": 0}

    def sink_handler(request: HttpRequest) -> HttpResponse:
        try:
            envelope = Envelope.from_bytes(request.body)
            mid = AddressingHeaders.from_envelope(envelope).message_id
        except ReproError:
            return HttpResponse(status=400)
        arrivals["raw"] += 1
        if mid and not dupes.seen(mid):
            delivered.append(mid)
        return HttpResponse(status=202)

    if sink_up:
        SimHttpServer(net, sink_host, 9000, sink_handler, workers=16)

    hold_store = HoldRetryStore(
        policy=FixedDelay(max_attempts=100_000, delay=hold_delay),
        default_ttl=horizon,
        clock=sim.clock,
    )
    config = SimMsgDispatcherConfig(
        connect_timeout=connect_timeout,
        response_timeout=5.0,
        breaker=breaker
        or BreakerConfig(consecutive_failures=3, open_for=2.0),
        hold_pump_interval=0.25,
    )
    dispatcher = SimMsgDispatcher(
        net, wsd_host, registry, own_address="http://wsd:8000/msg",
        config=config, metrics=metrics, traces=traces, hold_store=hold_store,
    )
    SimHttpServer(net, wsd_host, 8000, dispatcher.handler, workers=16)

    controller = ChaosController(net, FaultPlan(tuple(faults), seed=seed),
                                 metrics=metrics)
    controller.start()

    ids = IdGenerator("accept", seed=seed)
    pool = SimHttpClientPool(net, client_host, connect_timeout=5.0,
                             response_timeout=10.0)
    sent: list[str] = []
    send_errors = {"n": 0}

    def sender():
        for _ in range(messages):
            mid = ids.next()
            env = make_echo_message(to="urn:wsd:echo", message_id=mid)
            headers = Headers()
            headers.set("Content-Type", SOAP11_CONTENT_TYPE)
            request = HttpRequest("POST", "/msg/echo", headers=headers,
                                  body=env.to_bytes())
            sent.append(mid)
            try:
                yield from pool.exchange("wsd", 8000, request)
            except ReproError:
                send_errors["n"] += 1
            yield sim.timeout(send_gap)

    sim.process(sender(), name="sender")
    return {
        "sim": sim, "net": net, "metrics": metrics,
        "dispatcher": dispatcher, "hold_store": hold_store,
        "sent": sent, "delivered": delivered, "arrivals": arrivals,
        "send_errors": send_errors, "horizon": horizon,
    }


ACCEPTANCE_FAULTS = (
    PacketLoss(host="sink", at=2.0, duration=20.0, rate=0.30),
    ServiceCrash(host="sink", at=8.0, restart_after=4.0),
    LinkFlap(host="sink", at=16.0, period=5.0, down_for=2.0, until=26.0),
)


def _run_acceptance():
    world = _build(SEED, ACCEPTANCE_FAULTS)
    world["sim"].run(until=world["horizon"])
    stats = world["dispatcher"].stats
    return {
        "sent": tuple(world["sent"]),
        "delivered": tuple(sorted(world["delivered"])),
        "raw_arrivals": world["arrivals"]["raw"],
        "send_errors": world["send_errors"]["n"],
        "hold": dict(world["hold_store"].stats),
        "pending": world["hold_store"].pending(),
        "counters": {
            k: stats.get(k, 0)
            for k in ("accepted", "delivered", "delivery_failures",
                      "held_for_retry", "held_breaker_open",
                      "held_requeued", "dropped_unroutable",
                      "dropped_destination_queue_full")
        },
        "breakers": world["dispatcher"].breakers.snapshot(),
    }


def test_zero_loss_under_chaos():
    out = _run_acceptance()
    assert out["send_errors"] == 0
    assert out["counters"]["accepted"] == len(out["sent"])
    # exactly-once past the DuplicateFilter: the unique set covers every
    # accepted message, with no drops and nothing left parked
    assert out["delivered"] == tuple(sorted(out["sent"]))
    assert out["raw_arrivals"] >= len(out["delivered"])
    assert out["hold"]["expired"] == 0
    assert out["pending"] == 0
    assert out["counters"]["dropped_unroutable"] == 0
    assert out["counters"]["dropped_destination_queue_full"] == 0
    # the chaos actually bit: some deliveries failed and were retried
    assert out["counters"]["delivery_failures"] > 0
    assert out["counters"]["held_for_retry"] > 0


def test_same_seed_is_bit_reproducible():
    assert _run_acceptance() == _run_acceptance()


def test_open_breaker_throttles_dead_destination_to_probe_rate():
    horizon = 30.0
    open_for = 2.0
    world = _build(
        SEED,
        faults=(ServiceCrash(host="sink", at=0.0),),  # dead for good
        messages=20,
        send_gap=0.1,
        horizon=horizon,
        connect_timeout=0.5,
        hold_delay=0.1,
        breaker=BreakerConfig(consecutive_failures=3, open_for=open_for),
        sink_up=False,
    )
    # one message per wire attempt: delivery_failures then counts connects
    world["dispatcher"].config.batch_size = 1
    world["sim"].run(until=horizon)
    stats = world["dispatcher"].stats
    # network attempts: the initial trip plus ~one probe per open_for
    # window — far fewer than the 20 queued messages retrying at 0.1s
    attempts = stats.get("delivery_failures", 0)
    assert 3 <= attempts <= 3 + int(horizon / open_for) + 3
    # everything else was refused locally by the open breaker
    assert stats.get("held_breaker_open", 0) > attempts
    snap = world["dispatcher"].breakers.snapshot()
    dest = snap["destinations"]["sink:9000"]
    assert dest["state"] in ("open", "half_open")
    assert dest["transitions"] >= 1
    assert snap["rejected"] == stats.get("held_breaker_open", 0)


def test_metrics_and_introspection_show_breakers_and_sheds():
    world = _build(SEED, faults=(ServiceCrash(host="sink", at=0.0),),
                   messages=20, send_gap=0.1, horizon=15.0,
                   connect_timeout=0.5, hold_delay=0.1, sink_up=False)
    dispatcher = world["dispatcher"]
    world["sim"].run(until=1.0)  # let the first messages in (and fail)
    dispatcher.config.max_inflight = 0  # shed everything from here on
    world["sim"].run(until=5.0)
    rendered = world["metrics"].render_prometheus()
    assert "rt_breaker_state" in rendered
    assert "rt_breaker_transitions_total" in rendered
    assert 'dispatcher_shed_total{component="sim_msgd"}' in rendered

    intro = Introspection(metrics=world["metrics"], traces=TraceStore())
    intro.add_health_source("msgd", dispatcher.health_snapshot)
    snapshot = intro.json_snapshot()
    health = snapshot["health"]["msgd"]
    assert health["breakers"]["states"]["open"] >= 1
    assert health["shed"] > 0
    assert health["hold_store"]["pending"] > 0
    response = intro.health_handler(HttpRequest("GET", "/health"))
    assert response.status == 200
    assert b"breakers" in response.body


def test_shed_response_carries_retry_after():
    world = _build(SEED, faults=(), messages=3, send_gap=0.05, horizon=10.0)
    dispatcher = world["dispatcher"]
    dispatcher.config.max_inflight = 0
    sim = world["sim"]
    pool = SimHttpClientPool(net=world["net"],
                             host=world["net"].host("client"))
    env = make_echo_message(to="urn:wsd:echo", message_id="uuid:shed-1")
    headers = Headers()
    headers.set("Content-Type", SOAP11_CONTENT_TYPE)
    request = HttpRequest("POST", "/msg/echo", headers=headers,
                          body=env.to_bytes())

    def probe():
        response = yield from pool.exchange("wsd", 8000, request)
        return response

    response = sim.run(sim.process(probe()))
    assert response.status == 503
    assert response.headers.get("Retry-After") == "1"

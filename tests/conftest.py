"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.simnet.kernel import Simulator
from repro.simnet.topology import Network
from repro.transport.inproc import InprocNetwork


@pytest.fixture
def inproc() -> InprocNetwork:
    """A fresh in-process transport namespace."""
    return InprocNetwork()


@pytest.fixture
def sim() -> Simulator:
    """A fresh discrete-event simulator."""
    return Simulator()


@pytest.fixture
def simnet(sim: Simulator) -> Network:
    """A fresh simulated network on the ``sim`` fixture."""
    return Network(sim)


# -- rt/aio backend parameterization ------------------------------------
#
# The threaded and asyncio dispatchers claim semantic equivalence; these
# fixtures make that claim executable by running the same test matrix
# (ordering, breaker, shed, hold/retry, durable recovery, long-poll)
# against both backends through one synchronous facade.


class _SyncClientAdapter:
    """Presents a synchronous (test fake or rt) HTTP client to the aio
    dispatcher: same calls, awaitable where the dispatcher awaits."""

    def __init__(self, inner) -> None:
        self.inner = inner

    def prepare(self, url, request):
        return self.inner.prepare(url, request)

    async def request(self, url, request):
        return self.inner.request(url, request)

    async def lease(self, url):
        return _SyncLeaseAdapter(self.inner.lease(url))

    def close(self) -> None:
        self.inner.close()


class _SyncLeaseAdapter:
    def __init__(self, inner) -> None:
        self.inner = inner

    async def pipeline(self, requests):
        return self.inner.pipeline(requests)

    def release(self) -> None:
        self.inner.release()


class DispatcherBackend:
    """Constructs a threaded or event-loop dispatcher behind one API."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.loop_thread = None
        if kind == "aio":
            from repro.aio import AioLoopThread

            self.loop_thread = AioLoopThread(name=f"test-{kind}-loop").start()

    def make_dispatcher(self, registry, client, **kwargs):
        if self.kind == "rt":
            from repro.core.msg_dispatcher import MsgDispatcher

            return MsgDispatcher(registry, client, **kwargs)
        from repro.aio import AioHttpClient, AioMsgDispatcher

        if not isinstance(client, AioHttpClient):
            client = _SyncClientAdapter(client)

        async def build():
            return AioMsgDispatcher(registry, client, **kwargs)

        return self.loop_thread.run(build())

    def close(self) -> None:
        if self.loop_thread is not None:
            self.loop_thread.stop()
            self.loop_thread = None


@pytest.fixture(params=["rt", "aio"])
def dispatcher_backend(request) -> DispatcherBackend:
    backend = DispatcherBackend(request.param)
    yield backend
    backend.close()


class MsgBoxBackend:
    """Serves a WS-MsgBox on the threaded or asyncio runtime."""

    def __init__(self, kind: str, inproc: InprocNetwork) -> None:
        self.kind = kind
        self.inproc = inproc
        self.loop_thread = None
        self._servers = []
        self._clients = []
        if kind == "aio":
            from repro.aio import AioLoopThread

            self.loop_thread = AioLoopThread(name="test-msgbox-loop").start()

    def serve(self, store=None, **service_kw):
        """Start a mailbox service; returns (store, service, MsgBoxClient)."""
        from repro.msgbox import MailboxStore, MsgBoxClient
        from repro.rt.client import HttpClient
        from repro.rt.service import SoapHttpApp

        store = store if store is not None else MailboxStore()
        app = SoapHttpApp()
        if self.kind == "rt":
            from repro.msgbox import MsgBoxService
            from repro.rt.server import HttpServer

            service = MsgBoxService(store, **service_kw)
            app.mount("/mailbox", service)
            server = HttpServer(
                self.inproc.listen("mb:8500"), app.handle_request, workers=8
            ).start()
            self._servers.append(server)
            http = HttpClient(self.inproc)
        else:
            from repro.aio import AioHttpServer, AioMsgBoxService
            from repro.transport.tcp import TcpConnector

            service = AioMsgBoxService(store, **service_kw)
            app.mount("/mailbox", service)

            async def boot():
                srv = AioHttpServer(app.handle_request)
                await srv.start()
                return srv

            server = self.loop_thread.run(boot())
            self._servers.append(server)
            http = HttpClient(TcpConnector())
        self._clients.append(http)
        url = (
            "http://mb:8500/mailbox"
            if self.kind == "rt"
            else server.url + "/mailbox"
        )
        service.base_url = url
        return store, service, MsgBoxClient(http, url)

    def close(self) -> None:
        for server in self._servers:
            if self.kind == "rt":
                server.stop()
            else:
                self.loop_thread.run(server.stop())
        for client in self._clients:
            client.close()
        if self.loop_thread is not None:
            self.loop_thread.stop()
            self.loop_thread = None


@pytest.fixture(params=["rt", "aio"])
def msgbox_backend(request, inproc) -> MsgBoxBackend:
    backend = MsgBoxBackend(request.param, inproc)
    yield backend
    backend.close()

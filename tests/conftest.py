"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.simnet.kernel import Simulator
from repro.simnet.topology import Network
from repro.transport.inproc import InprocNetwork


@pytest.fixture
def inproc() -> InprocNetwork:
    """A fresh in-process transport namespace."""
    return InprocNetwork()


@pytest.fixture
def sim() -> Simulator:
    """A fresh discrete-event simulator."""
    return Simulator()


@pytest.fixture
def simnet(sim: Simulator) -> Network:
    """A fresh simulated network on the ``sim`` fixture."""
    return Network(sim)

"""The public import surface documented in docs/api.md must exist."""

import importlib

import pytest


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
    assert repro.__version__


@pytest.mark.parametrize(
    "module",
    [
        "repro.aio",
        "repro.core",
        "repro.core.sim_dispatcher",
        "repro.core.status",
        "repro.msgbox",
        "repro.obs",
        "repro.conversation",
        "repro.registry",
        "repro.reliable",
        "repro.soap",
        "repro.soap.binxml",
        "repro.wsa",
        "repro.xmlmini",
        "repro.http",
        "repro.transport",
        "repro.rt",
        "repro.shard",
        "repro.simnet",
        "repro.simnet.metrics",
        "repro.store",
        "repro.util",
        "repro.util.sqldb",
        "repro.workload",
        "repro.experiments",
    ],
)
def test_module_all_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name, None) is not None, f"{module}.{name}"


def test_documented_entry_points_exist():
    """Spot-check the names docs/api.md leans on."""
    from repro.core import (
        DispatcherFarm,
        MsgDispatcher,
        RegistryService,
        RpcDispatcher,
        ServiceRegistry,
        SsoGate,
        StatusPage,
        TokenIssuer,
    )
    from repro.aio import (
        AioHttpClient,
        AioHttpServer,
        AioLoopThread,
        AioMsgBoxService,
        AioMsgDispatcher,
    )
    from repro.core.loadbalance import make_policy
    from repro.conversation import ConversationPeer
    from repro.msgbox import MailboxStore, MsgBoxClient, MsgBoxService
    from repro.msgbox.service import make_mailbox_epr
    from repro.obs import (
        Introspection,
        MetricsRegistry,
        TraceStore,
        configure_logging,
        ensure_trace,
    )
    from repro.reliable import DuplicateFilter, ExponentialBackoff, HoldRetryStore
    from repro.simnet import MetricsSampler, Simulator, make_network
    from repro.soap.binxml import sniff_and_parse
    from repro.workload import make_echo_message, make_echo_request
    from repro.wsa import make_reply_headers, rewrite_for_forwarding

    assert all(
        callable(x)
        for x in (
            make_policy, make_mailbox_epr, sniff_and_parse,
            make_echo_message, make_echo_request,
            make_reply_headers, rewrite_for_forwarding, make_network,
        )
    )

"""Observability overhead guard.

Runs the Figure 6 "MSG-D + MsgBox" configuration with every message
traced, twice: once with the metrics registry and trace store enabled,
once with both in no-op mode.  The guard asserts the enabled run's
throughput stays within 5 % of the disabled baseline.

Recording consumes no *simulated* time and trace headers are attached to
traced messages regardless of store enablement (so the wire bytes are
identical), which means the simulated messages/minute should in fact be
identical — the 5 % band is headroom, not an expectation.  The real
overhead (Python-side recording cost) shows up in the wall-clock times,
which are reported alongside.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.experiments.common import (
    CLIENT_CALL_OVERHEAD,
    DISPATCHER_SERVICE_TIME,
    SOAP_SERVICE_TIME,
)
from repro.http import Headers, HttpRequest
from repro.msgbox import MailboxStore, MsgBoxService
from repro.msgbox.service import make_mailbox_epr
from repro.obs import MetricsRegistry, TraceStore, ensure_trace
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.services import SimAsyncEchoService
from repro.simnet.topology import Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.workload.sim_testclient import SimRampConfig, SimRampTester


def _run_traced_msgbox(clients: int, duration: float, enabled: bool):
    """One fig6-style MsgBox run with traced traffic; returns
    (per_minute, wall_seconds, metrics, traces)."""
    metrics = MetricsRegistry(enabled=enabled)
    traces = TraceStore(enabled=enabled)

    sim = Simulator()
    net = Network(sim)
    client_host = add_site(net, INRIA, name="inria")
    ws_host = add_site(net, replace(BACKBONE_IU, name="iuWS"), open_ports=(9000,))
    wsd_host = add_site(
        net, replace(BACKBONE_IU, name="iuWSD"), open_ports=(8000, 8500)
    )

    echo_ws = SimAsyncEchoService(
        net, ws_host, reply_senders=32, connect_timeout=4.0, traces=traces
    )
    SimHttpServer(
        net, ws_host, 9000, echo_ws.handler, workers=32,
        service_time=SOAP_SERVICE_TIME,
    )

    registry = ServiceRegistry(metrics=metrics)
    registry.register("echo", "http://iuWS:9000/echo")
    config = SimMsgDispatcherConfig(
        cx_workers=4,
        ws_workers=8,
        accept_queue=128,
        destination_queue=16,
        parallel_per_destination=4,
        connect_timeout=4.0,
        shed_on_full=False,
        passthrough_reply_prefixes=("http://iuWSD:8500/mailbox",),
    )
    dispatcher = SimMsgDispatcher(
        net, wsd_host, registry, own_address="http://iuWSD:8000/msg",
        config=config, metrics=metrics, traces=traces,
    )
    SimHttpServer(
        net, wsd_host, 8000, dispatcher.handler, workers=32,
        service_time=DISPATCHER_SERVICE_TIME,
    )

    store = MailboxStore(clock=sim.clock, max_messages_per_box=100_000)
    msgbox = MsgBoxService(
        store, base_url="http://iuWSD:8500/mailbox",
        clock=sim.clock, metrics=metrics, traces=traces,
    )
    mb_app = SoapHttpApp()
    mb_app.mount("/mailbox", msgbox)
    SimHttpServer(
        net, wsd_host, 8500,
        lambda req: mb_app.handle_request(req, None),
        workers=32,
        service_time=SOAP_SERVICE_TIME,
    )

    ids = IdGenerator("obs-bench", seed=clients)
    eprs = [
        make_mailbox_epr("http://iuWSD:8500/mailbox", store.create())
        for _ in range(max(clients, 1))
    ]

    def factory(counter=[0]):
        counter[0] += 1
        env = make_echo_message(
            to="urn:wsd:echo",
            message_id=ids.next(),
            reply_to=eprs[counter[0] % len(eprs)],
        )
        ensure_trace(env)  # every message traced, in both modes
        headers = Headers()
        headers.set("Content-Type", SOAP11_CONTENT_TYPE)
        return HttpRequest("POST", "/msg/echo", headers=headers, body=env.to_bytes())

    tester = SimRampTester(net, client_host, "iuWSD", 8000, "/msg/echo", factory)
    ramp = SimRampConfig(
        clients=clients,
        duration=duration,
        connect_timeout=10.0,
        response_timeout=10.0,
        think_time=CLIENT_CALL_OVERHEAD,
    )
    t0 = time.perf_counter()
    result = tester.run(ramp)
    wall = time.perf_counter() - t0
    return result.per_minute, wall, metrics, traces


def test_obs_overhead_within_five_percent(benchmark, paper_scale, record_report):
    clients, duration = (50, 60.0) if paper_scale else (20, 30.0)

    def run_both():
        base_pm, base_wall, base_metrics, base_traces = _run_traced_msgbox(
            clients, duration, enabled=False
        )
        obs_pm, obs_wall, obs_metrics, obs_traces = _run_traced_msgbox(
            clients, duration, enabled=True
        )
        return {
            "baseline": (base_pm, base_wall, base_metrics, base_traces),
            "observed": (obs_pm, obs_wall, obs_metrics, obs_traces),
        }

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    base_pm, base_wall, base_metrics, base_traces = out["baseline"]
    obs_pm, obs_wall, obs_metrics, obs_traces = out["observed"]

    # the disabled run really recorded nothing ...
    assert base_metrics.snapshot() == {}
    assert len(base_traces) == 0
    # ... and the enabled run really observed the traffic
    delivered = obs_metrics.snapshot()["msgd_delivered_total"]["samples"][0]["value"]
    assert delivered > 0
    assert len(obs_traces) > 0

    assert base_pm > 0
    overhead = abs(obs_pm - base_pm) / base_pm
    record_report(
        "obs_overhead",
        (
            f"Observability overhead guard ({clients} clients, "
            f"{duration:.0f}s simulated)\n"
            f"  disabled: {base_pm:.0f} msgs/min  (wall {base_wall:.2f}s)\n"
            f"  enabled:  {obs_pm:.0f} msgs/min  (wall {obs_wall:.2f}s)\n"
            f"  throughput delta: {overhead:.2%} (guard: <= 5%)\n"
            f"  traces captured: {len(obs_traces)} (ring capacity "
            f"{obs_traces.capacity})"
        ),
    )
    assert overhead <= 0.05, (
        f"observability overhead {overhead:.2%} exceeds 5% "
        f"(enabled {obs_pm:.0f} vs disabled {base_pm:.0f} msgs/min)"
    )

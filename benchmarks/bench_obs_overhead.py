"""Observability overhead guard.

Runs the Figure 6 "MSG-D + MsgBox" configuration with every message
traced, twice: once with the **whole telemetry plane** enabled — metrics
registry, trace store, flight recorder, SLO stage histograms, and a
metrics snapshotter sampling in simulated time — and once with all of it
in no-op mode.  The guard asserts the enabled run's throughput stays
within 5 % of the disabled baseline.

Recording consumes no *simulated* time and trace headers are attached to
traced messages regardless of store enablement (so the wire bytes are
identical), which means the simulated messages/minute should in fact be
identical — the 5 % band is headroom, not an expectation.  The real
overhead (Python-side recording cost) shows up in the wall-clock times,
which are reported alongside and exported to ``BENCH_obs.json``.
"""

from __future__ import annotations

import time
from dataclasses import replace

from _perfjson import write_bench_json

from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.experiments.common import (
    CLIENT_CALL_OVERHEAD,
    DISPATCHER_SERVICE_TIME,
    SOAP_SERVICE_TIME,
)
from repro.http import Headers, HttpRequest
from repro.msgbox import MailboxStore, MsgBoxService
from repro.msgbox.service import make_mailbox_epr
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    MetricsSnapshotter,
    SloTracker,
    TraceStore,
    ensure_trace,
)
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.services import SimAsyncEchoService
from repro.simnet.topology import Network
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message
from repro.workload.sim_testclient import SimRampConfig, SimRampTester


def _run_traced_msgbox(clients: int, duration: float, enabled: bool):
    """One fig6-style MsgBox run with traced traffic; returns a dict of
    (per_minute, wall_seconds, metrics, traces, flight, snapshotter)."""
    metrics = MetricsRegistry(enabled=enabled)
    traces = TraceStore(enabled=enabled)
    flight = FlightRecorder(enabled=enabled)

    sim = Simulator()
    net = Network(sim)
    client_host = add_site(net, INRIA, name="inria")
    ws_host = add_site(net, replace(BACKBONE_IU, name="iuWS"), open_ports=(9000,))
    wsd_host = add_site(
        net, replace(BACKBONE_IU, name="iuWSD"), open_ports=(8000, 8500)
    )

    echo_ws = SimAsyncEchoService(
        net, ws_host, reply_senders=32, connect_timeout=4.0, traces=traces
    )
    SimHttpServer(
        net, ws_host, 9000, echo_ws.handler, workers=32,
        service_time=SOAP_SERVICE_TIME,
    )

    registry = ServiceRegistry(metrics=metrics)
    registry.register("echo", "http://iuWS:9000/echo")
    config = SimMsgDispatcherConfig(
        cx_workers=4,
        ws_workers=8,
        accept_queue=128,
        destination_queue=16,
        parallel_per_destination=4,
        connect_timeout=4.0,
        shed_on_full=False,
        passthrough_reply_prefixes=("http://iuWSD:8500/mailbox",),
    )
    dispatcher = SimMsgDispatcher(
        net, wsd_host, registry, own_address="http://iuWSD:8000/msg",
        config=config, metrics=metrics, traces=traces, flight=flight,
    )
    SimHttpServer(
        net, wsd_host, 8000, dispatcher.handler, workers=32,
        service_time=DISPATCHER_SERVICE_TIME,
    )
    snapshotter = MetricsSnapshotter(metrics, interval=1.0, capacity=4096)
    if enabled:
        sim.process(
            snapshotter.sim_process(sim, until=duration),
            name="metrics-snapshotter",
        )

    store = MailboxStore(clock=sim.clock, max_messages_per_box=100_000)
    msgbox = MsgBoxService(
        store, base_url="http://iuWSD:8500/mailbox",
        clock=sim.clock, metrics=metrics, traces=traces,
    )
    mb_app = SoapHttpApp()
    mb_app.mount("/mailbox", msgbox)
    SimHttpServer(
        net, wsd_host, 8500,
        lambda req: mb_app.handle_request(req, None),
        workers=32,
        service_time=SOAP_SERVICE_TIME,
    )

    ids = IdGenerator("obs-bench", seed=clients)
    eprs = [
        make_mailbox_epr("http://iuWSD:8500/mailbox", store.create())
        for _ in range(max(clients, 1))
    ]

    def factory(counter=[0]):
        counter[0] += 1
        env = make_echo_message(
            to="urn:wsd:echo",
            message_id=ids.next(),
            reply_to=eprs[counter[0] % len(eprs)],
        )
        ensure_trace(env)  # every message traced, in both modes
        headers = Headers()
        headers.set("Content-Type", SOAP11_CONTENT_TYPE)
        return HttpRequest("POST", "/msg/echo", headers=headers, body=env.to_bytes())

    tester = SimRampTester(net, client_host, "iuWSD", 8000, "/msg/echo", factory)
    ramp = SimRampConfig(
        clients=clients,
        duration=duration,
        connect_timeout=10.0,
        response_timeout=10.0,
        think_time=CLIENT_CALL_OVERHEAD,
    )
    t0 = time.perf_counter()
    result = tester.run(ramp)
    wall = time.perf_counter() - t0
    return {
        "per_minute": result.per_minute,
        "wall": wall,
        "metrics": metrics,
        "traces": traces,
        "flight": flight,
        "snapshotter": snapshotter,
    }


def test_obs_overhead_within_five_percent(benchmark, paper_scale, record_report):
    clients, duration = (50, 60.0) if paper_scale else (20, 30.0)

    def run_both():
        return {
            "baseline": _run_traced_msgbox(clients, duration, enabled=False),
            "observed": _run_traced_msgbox(clients, duration, enabled=True),
        }

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    base, obs = out["baseline"], out["observed"]
    base_pm, obs_pm = base["per_minute"], obs["per_minute"]

    # the disabled run really recorded nothing ...
    assert base["metrics"].snapshot() == {}
    assert len(base["traces"]) == 0
    assert len(base["flight"]) == 0
    assert len(base["snapshotter"]) == 0
    # ... and the enabled run really observed the traffic
    obs_snap = obs["metrics"].snapshot()
    delivered = obs_snap["msgd_delivered_total"]["samples"][0]["value"]
    assert delivered > 0
    assert len(obs["traces"]) > 0
    # SLO stage histograms populated through the dispatcher pipeline
    stage_count = sum(
        s["count"] for s in obs_snap["msgd_stage_seconds"]["samples"]
    )
    assert stage_count > 0
    # and the snapshotter sampled once per simulated second
    assert len(obs["snapshotter"]) >= duration - 1
    slo = SloTracker(obs["metrics"]).snapshot()

    assert base_pm > 0
    overhead = abs(obs_pm - base_pm) / base_pm
    record_report(
        "obs_overhead",
        (
            f"Observability overhead guard ({clients} clients, "
            f"{duration:.0f}s simulated; metrics + traces + flight + "
            f"SLO histograms + snapshotter)\n"
            f"  disabled: {base_pm:.0f} msgs/min  (wall {base['wall']:.2f}s)\n"
            f"  enabled:  {obs_pm:.0f} msgs/min  (wall {obs['wall']:.2f}s)\n"
            f"  throughput delta: {overhead:.2%} (guard: <= 5%)\n"
            f"  traces captured: {len(obs['traces'])} (ring capacity "
            f"{obs['traces'].capacity})\n"
            f"  history samples: {len(obs['snapshotter'])}; "
            f"slo met: {slo['met']}"
        ),
    )
    write_bench_json(
        "obs",
        {
            "rows": [
                {
                    "mode": "disabled",
                    "per_minute": base_pm,
                    "wall_seconds": base["wall"],
                },
                {
                    "mode": "enabled",
                    "per_minute": obs_pm,
                    "wall_seconds": obs["wall"],
                    "traces": len(obs["traces"]),
                    "history_samples": len(obs["snapshotter"]),
                    "stage_observations": stage_count,
                    "slo_met": slo["met"],
                },
            ],
            "gate": {
                "overhead": overhead,
                "limit": 0.05,
                "passed": overhead <= 0.05,
            },
        },
    )
    assert overhead <= 0.05, (
        f"observability overhead {overhead:.2%} exceeds 5% "
        f"(enabled {obs_pm:.0f} vs disabled {base_pm:.0f} msgs/min)"
    )

"""Microbenchmarks of the message-processing stack.

The paper's framing question is whether Java (here: Python) is *suitable*
to implement a scalable dispatcher — these benches quantify the
per-message cost of every layer the dispatcher touches: XML parse and
serialize, SOAP envelope round trip, the WS-Addressing rewrite, HTTP
framing, and registry lookup.
"""

from repro.core.registry import ServiceRegistry
from repro.http import HttpRequest
from repro.http.wire import RequestParser, serialize_request
from repro.soap import Envelope
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message, make_echo_request
from repro.wsa import rewrite_for_forwarding
from repro.xmlmini import parse, serialize

_IDS = IdGenerator("bench", seed=1)
_ECHO_WIRE = make_echo_request().to_bytes()
_MSG = make_echo_message("urn:wsd:echo", _IDS.next())
_MSG_WIRE = _MSG.to_bytes()
_HTTP_WIRE = serialize_request(
    HttpRequest("POST", "/msg/echo", body=_MSG_WIRE)
)


def test_xml_parse_echo_doc(benchmark):
    tree = benchmark(parse, _ECHO_WIRE)
    assert tree.name.local == "Envelope"


def test_xml_serialize_echo_doc(benchmark):
    tree = parse(_ECHO_WIRE)
    out = benchmark(serialize, tree)
    assert "Envelope" in out


def test_soap_envelope_roundtrip(benchmark):
    def roundtrip():
        return Envelope.from_bytes(_ECHO_WIRE).to_bytes()

    assert benchmark(roundtrip) == _ECHO_WIRE


def test_wsa_rewrite(benchmark):
    env = Envelope.from_bytes(_MSG_WIRE)

    def rewrite():
        return rewrite_for_forwarding(
            env, "http://inside:9000/echo", "http://wsd:8000/msg"
        )

    result = benchmark(rewrite)
    assert result.physical_to == "http://inside:9000/echo"


def test_http_request_parse(benchmark):
    def parse_one():
        p = RequestParser()
        p.feed(_HTTP_WIRE)
        return p.next_message()

    req = benchmark(parse_one)
    assert req.method == "POST"


def test_http_request_serialize(benchmark):
    req = HttpRequest("POST", "/msg/echo", body=_MSG_WIRE)
    wire = benchmark(serialize_request, req)
    assert wire.startswith(b"POST")


def test_registry_lookup(benchmark):
    registry = ServiceRegistry()
    for i in range(1000):
        registry.register(f"svc-{i}", f"http://host-{i}:80/svc")

    address = benchmark(registry.resolve, "svc-500")
    assert address == "http://host-500:80/svc"


def test_full_dispatcher_message_path(benchmark):
    """Everything a CxThread does to one message, end to end."""
    registry = ServiceRegistry()
    registry.register("echo", "http://inside:9000/echo")

    def process():
        env = Envelope.from_bytes(_MSG_WIRE)
        physical = registry.resolve("echo")
        result = rewrite_for_forwarding(env, physical, "http://wsd:8000/msg")
        return result.envelope.to_bytes()

    wire = benchmark(process)
    assert b"inside:9000" in wire

"""Figure 4 — RPC communication over low broadband (cable modem).

Regenerates both series of the figure (packets transmitted and packets
not sent, direct vs RPC-Dispatcher) and asserts the paper's shape: clean
at small client counts, the connection limit bites between 100 and 500,
heavy loss at the top of the range, and the dispatcher costs little.
"""

from repro.experiments import fig4
from repro.workload.results import render_ascii_plot


def test_fig4_rpc_low_broadband(benchmark, paper_scale, record_report):
    if paper_scale:
        counts, duration = fig4.PAPER_CLIENT_COUNTS, fig4.PAPER_DURATION
    else:
        counts, duration = [10, 100, 500, 2000], 20.0

    report = benchmark.pedantic(
        lambda: fig4.run(client_counts=counts, duration=duration),
        rounds=1,
        iterations=1,
    )
    failures = fig4.check_shape(report)
    text = report.render() + "\n\n" + render_ascii_plot(
        report.series, "transmitted", log_y=True, title="Fig4 transmitted"
    )
    record_report("fig4", text)
    assert failures == [], failures

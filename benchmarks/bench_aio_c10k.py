"""The C10k acceptance benchmark for the asyncio runtime.

Two phases, one artifact (``BENCH_aio_c10k.json``):

- **hold**: one in-process :class:`AioHttpServer` +
  :class:`AioMsgBoxService` on a single loop thread holds 10,000
  concurrent long-poll ``take`` connections (a subprocess swarm supplies
  the clients), with bounded RSS.  This is the load shape that killed the
  paper's thread-per-connection WS-MsgBox at ~50 clients x high message
  rate: here no thread, and no thread stack, exists per connection.
- **drain**: the :class:`AioMsgDispatcher` drains a backlog over real
  loopback TCP with pipelined bursts at batch=8 — dispatcher tasks,
  asyncio client, and the destination sink all multiplexed on one loop
  thread — and must at least match the threaded pipelined-drain figure
  recorded by ``bench_pipeline_drain`` (107.26 msgs/s at WAN latency).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time

from _perfjson import REPO_ROOT, host_info, write_bench_json, merge_bench_json

CLIENTS = 10_000
RSS_LIMIT_MB = 1500.0
THREADED_DRAIN_FALLBACK = 107.26  # bench_pipeline_drain pipelined msgs/s


def _rss_mb() -> float:
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return 0.0


def _threaded_baseline() -> float:
    """The threaded dispatcher's pipelined msgs/s from its own artifact."""
    path = REPO_ROOT / "BENCH_pipeline_drain.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        for row in payload.get("rows", []):
            if row.get("variant") == "pipelined":
                return float(row["msgs_per_sec"])
    except (OSError, ValueError, KeyError):
        pass
    return THREADED_DRAIN_FALLBACK


def test_c10k_long_pollers_one_loop(
    benchmark, paper_scale, record_report, require_fds
):
    require_fds("aio_c10k", CLIENTS)

    from repro.aio import AioHttpServer, AioLoopThread, AioMsgBoxService
    from repro.msgbox import MailboxStore
    from repro.obs.metrics import MetricsRegistry
    from repro.rt.service import SoapHttpApp

    def run():
        # quota sized for the herd release: one tiny message per poller
        store = MailboxStore(max_messages_per_box=CLIENTS + 100)
        service = AioMsgBoxService(store)
        service.max_wait_seconds = 120.0
        mailbox = store.create()
        app = SoapHttpApp(metrics=MetricsRegistry())
        app.mount("/mailbox", service)
        rss_before = _rss_mb()
        with AioLoopThread(name="c10k-loop") as loop_thread:

            async def boot():
                srv = AioHttpServer(
                    app.handle_request,
                    metrics=MetricsRegistry(),
                    backlog=4096,
                    keep_alive_timeout=180.0,
                )
                await srv.start()
                return srv

            server = loop_thread.run(boot())
            swarm = subprocess.Popen(
                [
                    sys.executable,
                    str(pathlib.Path(__file__).with_name("_c10k_swarm.py")),
                    str(server.endpoint.port),
                    str(CLIENTS),
                    "90.0",
                    mailbox,
                ],
                stdout=subprocess.PIPE,
                env=dict(
                    os.environ, PYTHONPATH=str(REPO_ROOT / "src")
                ),
            )
            try:
                t0 = time.perf_counter()
                deadline = t0 + 180.0
                peak = 0
                while time.perf_counter() < deadline:
                    peak = max(peak, server.open_connections)
                    if peak >= CLIENTS:
                        break
                    if swarm.poll() is not None:
                        break  # swarm died early; fall through to asserts
                    time.sleep(0.1)
                t_parked = time.perf_counter() - t0
                rss_parked = _rss_mb()
                # release the herd: one message per poller (each take is
                # maxMessages=1, and a poller that loses the race re-parks
                # for its remaining wait budget — the correct long-poll
                # semantics, but not a bench that should take 90 s)
                for _ in range(CLIENTS):
                    store.deposit(mailbox, b"<release/>")
                out, _ = swarm.communicate(timeout=180.0)
                t_total = time.perf_counter() - t0
            finally:
                if swarm.poll() is None:
                    swarm.kill()
                loop_thread.run(server.stop())
        return {
            "clients": CLIENTS,
            "parked_peak": peak,
            "seconds_to_park": round(t_parked, 2),
            "seconds_total": round(t_total, 2),
            "rss_before_mb": round(rss_before, 1),
            "rss_parked_mb": round(rss_parked, 1),
            "swarm": json.loads(out),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    swarm = result["swarm"]
    record_report(
        "aio_c10k_hold",
        "\n".join(
            [
                "metric\tvalue",
                f"clients\t{result['clients']}",
                f"parked_peak\t{result['parked_peak']}",
                f"seconds_to_park\t{result['seconds_to_park']}",
                f"rss_parked_mb\t{result['rss_parked_mb']}",
                f"swarm_responded\t{swarm['responded']}",
                f"swarm_errors\t{swarm['errors']}",
            ]
        ),
    )
    gate = {
        "min_concurrent_pollers": CLIENTS,
        "parked_peak": result["parked_peak"],
        "rss_limit_mb": RSS_LIMIT_MB,
        "rss_parked_mb": result["rss_parked_mb"],
    }
    write_bench_json(
        "aio_c10k",
        {"benchmark": "aio_c10k", "host": host_info(), "hold": result,
         "gate": gate},
    )
    # the tentpole claim: ten thousand concurrent long-poll connections
    # held by one loop thread in one process
    assert result["parked_peak"] >= CLIENTS
    assert swarm["connected"] == CLIENTS
    assert swarm["responded"] == CLIENTS
    assert swarm["errors"] == 0
    if result["rss_parked_mb"]:  # /proc may be absent off-Linux
        assert result["rss_parked_mb"] - result["rss_before_mb"] < RSS_LIMIT_MB


def test_aio_drain_matches_threaded_pipeline(
    benchmark, paper_scale, record_report
):
    from repro.aio import (
        AioHttpClient,
        AioHttpServer,
        AioLoopThread,
        AioMsgDispatcher,
    )
    from repro.core.msg_dispatcher import MsgDispatcherConfig
    from repro.core.registry import ServiceRegistry
    from repro.http import HttpResponse
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import TraceStore
    from repro.rt.service import RequestContext
    from repro.util.ids import IdGenerator
    from repro.workload.echo import make_echo_message

    messages = 4000 if paper_scale else 2000
    batch_size = 8
    baseline = _threaded_baseline()

    def run():
        received = []
        with AioLoopThread(name="drain-loop") as loop_thread:

            async def boot():
                sink = AioHttpServer(
                    lambda request, peer: (
                        received.append(1),
                        HttpResponse(status=202),
                    )[1],
                    metrics=MetricsRegistry(),
                )
                await sink.start()
                registry = ServiceRegistry(metrics=MetricsRegistry())
                registry.register("echo", f"{sink.url}/echo")
                dispatcher = AioMsgDispatcher(
                    registry,
                    AioHttpClient(metrics=MetricsRegistry()),
                    own_address="http://wsd:8000/msg",
                    config=MsgDispatcherConfig(
                        ws_threads=2,
                        batch_size=batch_size,
                        pipeline_batches=True,
                        # a pre-filled backlog, like the simnet drain bench
                        accept_queue=messages,
                        destination_queue=messages,
                    ),
                    metrics=MetricsRegistry(),
                    traces=TraceStore(enabled=False),
                )
                return sink, dispatcher

            sink, dispatcher = loop_thread.run(boot())
            ids = IdGenerator("c10kdrain", seed=11)
            envelopes = [
                make_echo_message(to="urn:wsd:echo", message_id=ids.next())
                for _ in range(messages)
            ]
            t0 = time.perf_counter()
            for envelope in envelopes:
                dispatcher.handle(envelope, RequestContext(path="/msg/echo"))
            deadline = t0 + 120.0
            while (
                dispatcher.stats.get("delivered", 0) < messages
                and time.perf_counter() < deadline
            ):
                time.sleep(0.01)
            elapsed = time.perf_counter() - t0
            delivered = dispatcher.stats.get("delivered", 0)
            dispatcher.stop()
            loop_thread.run(sink.stop())
        return {
            "delivered": delivered,
            "received": len(received),
            "wall_seconds": round(elapsed, 3),
            "msgs_per_sec": round(delivered / elapsed, 2) if elapsed else 0.0,
            "batch_size": batch_size,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_report(
        "aio_c10k_drain",
        "\n".join(
            [
                "metric\tvalue",
                f"delivered\t{result['delivered']}",
                f"wall_seconds\t{result['wall_seconds']}",
                f"msgs_per_sec\t{result['msgs_per_sec']}",
                f"threaded_baseline_msgs_per_sec\t{baseline}",
            ]
        ),
    )
    merge_bench_json(
        "aio_c10k",
        {
            "drain": result,
            "drain_gate": {
                "threaded_baseline_msgs_per_sec": baseline,
                "min_ratio": 1.0,
                "ratio": round(result["msgs_per_sec"] / baseline, 2)
                if baseline
                else None,
            },
        },
    )
    assert result["delivered"] == messages
    assert result["received"] == messages
    # the event-loop dispatcher must not regress drained throughput
    # against the threaded pipelined figure at the same batch size
    assert result["msgs_per_sec"] >= baseline

"""Ablation A3 — registry load balancing over service replicas (future work).

Measures how the three policies spread load over a replica set in which
one member is much slower, using the simulated RPC path end to end.
"""

from dataclasses import replace

from repro.core.loadbalance import make_policy
from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimRpcDispatcher
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.topology import Network
from repro.workload.echo import EchoService
from repro.workload.sim_testclient import SimRampConfig, SimRampTester


def run_policy(policy_name: str, clients: int, duration: float):
    sim = Simulator()
    net = Network(sim)
    client = add_site(net, INRIA, name="inria")
    wsd = add_site(net, replace(BACKBONE_IU, name="wsd"), open_ports=(8000,))

    replicas = []
    for i, service_time in enumerate((0.002, 0.002, 0.050)):  # one slow member
        host = add_site(
            net, replace(BACKBONE_IU, name=f"replica{i}"), open_ports=(9000,)
        )
        app = SoapHttpApp()
        app.mount("/echo", EchoService())
        SimHttpServer(
            net, host, 9000,
            lambda r, app=app: app.handle_request(r, None),
            workers=16, service_time=service_time,
        )
        replicas.append(f"http://replica{i}:9000/echo")

    policy = make_policy(policy_name, seed=42)
    registry = ServiceRegistry(selector=policy)
    registry.register("echo", replicas)
    disp = SimRpcDispatcher(net, wsd, registry, balancer=policy)
    SimHttpServer(net, wsd, 8000, disp.handler, workers=32)

    tester = SimRampTester(net, client, "wsd", 8000, "/rpc/echo")
    result = tester.run(SimRampConfig(clients=clients, duration=duration))
    return result, policy


def test_a3_loadbalance_policies(benchmark, paper_scale, record_report):
    clients, duration = (30, 30.0) if paper_scale else (15, 10.0)

    def sweep():
        rows = ["policy\tmsgs/min\tpick spread"]
        throughput = {}
        for name in ("round_robin", "random", "least_pending"):
            result, policy = run_policy(name, clients, duration)
            picks = policy.pick_counts
            spread = " ".join(
                f"{addr.split('//')[1].split(':')[0]}={n}"
                for addr, n in sorted(picks.items())
            )
            rows.append(f"{name}\t{result.per_minute:.0f}\t{spread}")
            throughput[name] = result.per_minute
        return "\n".join(rows), throughput

    text, throughput = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_report("ablation_a3_loadbalance", text)
    # every policy must spread across replicas and keep the system serving
    assert min(throughput.values()) > 0

"""Ablations A1/A2/A4/A5: pools, batching, reliability, envelope fast path."""

from bench_fastpath import measure_pair
from repro.experiments import ablations


def test_a1_pool_sizing(benchmark, paper_scale, record_report):
    sizes = [1, 2, 4, 8, 16] if paper_scale else [1, 4, 16]
    clients, duration = (30, 20.0) if paper_scale else (15, 10.0)
    report = benchmark.pedantic(
        lambda: ablations.pool_sizing(
            ws_worker_counts=sizes, clients=clients, duration=duration
        ),
        rounds=1,
        iterations=1,
    )
    record_report("ablation_a1_pool_sizing", report.render())
    small = report.extras[f"ws={sizes[0]}"]["delivered"]
    big = report.extras[f"ws={sizes[-1]}"]["delivered"]
    assert big >= small


def test_a2_batching(benchmark, paper_scale, record_report):
    clients, duration = (30, 20.0) if paper_scale else (15, 10.0)
    report = benchmark.pedantic(
        lambda: ablations.batching(clients=clients, duration=duration),
        rounds=1,
        iterations=1,
    )
    record_report("ablation_a2_batching", report.render())
    batched = report.extras["batch=8, pipelined"]
    serial = report.extras["batch=8, serial-drain"]
    per_msg = report.extras["batch=1, conn-per-msg"]
    # §4.1: batching over persistent connections "is more efficient than
    # opening multiple short lived connections"
    assert batched["delivered"] > per_msg["delivered"]
    assert batched["delivered"] >= serial["delivered"]


def test_a4_reliability(benchmark, record_report):
    report = benchmark.pedantic(
        lambda: ablations.reliability(downtime=5.0, messages=50, ttl=30.0),
        rounds=1,
        iterations=1,
    )
    record_report("ablation_a4_reliability", report.render())
    assert report.extras["backoff x8"]["delivered"] == 50
    assert report.extras["no-retry"]["delivered"] == 0


def test_a5_envelope_fast_path(benchmark, paper_scale, record_report):
    """fast_path on/off: the per-message envelope cost the knob toggles."""
    row = benchmark.pedantic(
        lambda: measure_pair(64 * 1024, batch=8, paper_scale=paper_scale),
        rounds=1,
        iterations=1,
    )
    record_report(
        "ablation_a5_fastpath",
        "variant\tmsgs/s\tbytes_decoded\n"
        f"fast_path=True\t{row['fast_msgs_per_sec']:.0f}\t{row['fast_bytes_decoded']}\n"
        f"fast_path=False\t{row['slow_msgs_per_sec']:.0f}\t{row['slow_bytes_decoded']}\n"
        f"speedup\t{row['speedup']:.2f}x",
    )
    assert row["speedup"] >= 2.0

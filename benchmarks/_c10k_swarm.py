"""Long-poll client swarm for ``bench_aio_c10k`` — run as a subprocess.

Opens N concurrent connections to a WS-MsgBox endpoint, parks a
long-poll ``take`` on every one, and reads the responses.  Lives in its
own process so its N client sockets come out of a separate file
descriptor table from the server's N accepted sockets (each side alone
approaches a typical RLIMIT_NOFILE).

Usage: ``python _c10k_swarm.py <port> <clients> <wait_s> <mailbox_id>``
Prints one JSON object on stdout: connected/responded/error counts.
"""

from __future__ import annotations

import asyncio
import json
import sys

_CONNECT_RAMP = 256  # concurrent connect attempts in flight
_CONNECT_RETRIES = 20


def build_take_bytes(port: int, mailbox_id: str, wait_s: float) -> bytes:
    from repro.http import Headers, HttpRequest
    from repro.http.wire import serialize_request
    from repro.msgbox.service import MSGBOX_NS
    from repro.soap import RpcRequest, build_rpc_request

    envelope = build_rpc_request(
        RpcRequest(
            MSGBOX_NS,
            "take",
            [
                ("mailboxId", mailbox_id),
                ("maxMessages", "1"),
                ("waitSeconds", f"{wait_s:.3f}"),
            ],
        )
    )
    headers = Headers()
    headers.set("Content-Type", envelope.version.content_type)
    headers.set("Host", f"127.0.0.1:{port}")
    # one exchange then EOF: the reader below needs no HTTP framing
    headers.set("Connection", "close")
    request = HttpRequest(
        "POST", "/mailbox", headers=headers, body=envelope.to_bytes()
    )
    return serialize_request(request)


async def swarm(port: int, clients: int, wait_s: float, mailbox_id: str) -> dict:
    request_bytes = build_take_bytes(port, mailbox_id, wait_s)
    ramp = asyncio.Semaphore(_CONNECT_RAMP)
    stats = {"connected": 0, "responded": 0, "errors": 0}

    async def poller() -> None:
        try:
            async with ramp:
                for attempt in range(_CONNECT_RETRIES):
                    try:
                        reader, writer = await asyncio.open_connection(
                            "127.0.0.1", port
                        )
                        break
                    except OSError:
                        if attempt == _CONNECT_RETRIES - 1:
                            raise
                        # listen backlog overflow under the connect storm:
                        # back off and retry
                        await asyncio.sleep(0.05 * (attempt + 1))
                writer.write(request_bytes)
                await writer.drain()
            stats["connected"] += 1
            body = await reader.read()  # Connection: close → read to EOF
            if b" 200 " in body.split(b"\r\n", 1)[0]:
                stats["responded"] += 1
            else:
                stats["errors"] += 1
            writer.close()
        except (OSError, asyncio.IncompleteReadError):
            stats["errors"] += 1

    await asyncio.gather(*(poller() for _ in range(clients)))
    return stats


def main() -> None:
    port, clients = int(sys.argv[1]), int(sys.argv[2])
    wait_s, mailbox_id = float(sys.argv[3]), sys.argv[4]
    stats = asyncio.run(swarm(port, clients, wait_s, mailbox_id))
    print(json.dumps(stats))


if __name__ == "__main__":
    main()

"""Durable journal cost: append throughput by sync mode, drain on/off.

Two questions, one artifact.  First, what does each ``MessageJournal``
sync mode cost at the append call site?  ``always`` commits (and on real
disks fsyncs) per append, ``group`` rides the leader's group-commit
window so N concurrent appenders share one transaction, and ``lazy``
buffers until ``flush_threshold``.  Second, what does the ``durable=``
knob cost the threaded MSG-Dispatcher end to end?  A backlog of one-way
messages is drained over inproc transport three times — journal off,
``sync="group"``, and ``sync="always"`` — and the off/on ratio is the
price of durability.

The gates are deliberately loose (perf-smoke runs on noisy shared
runners): group commit must amortize — far fewer commits than appends
under concurrency — and the group-commit drain must keep at least a
third of the non-durable drain rate.  ``durable=None`` itself adds only
a predicate check per message, so the fast path's own gate in
``bench_fastpath.py`` is the regression guard for the default-off case.
Results land in ``benchmarks/out/journal.txt`` and ``BENCH_journal.json``.
"""

from __future__ import annotations

import threading
import time

from _perfjson import write_bench_json
from repro.core.msg_dispatcher import MsgDispatcher, MsgDispatcherConfig
from repro.core.registry import ServiceRegistry
from repro.http import HttpResponse
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.store import MessageJournal
from repro.transport.inproc import InprocNetwork
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message

SYNC_MODES = ("always", "group", "lazy")
APPEND_THREADS = (1, 8)


def measure_appends(
    tmp_dir, sync: str, threads: int, per_thread: int
) -> dict:
    """Append throughput for one sync mode at one concurrency level."""
    journal = MessageJournal(
        str(tmp_dir / f"bench-{sync}-{threads}.journal"), sync=sync
    )
    body = b"<Envelope>bench</Envelope>"
    barrier = threading.Barrier(threads + 1)

    def appender(worker: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            journal.append(f"uuid:bench-{worker}-{i}", "/msg/echo", body)

    workers = [
        threading.Thread(target=appender, args=(w,)) for w in range(threads)
    ]
    for t in workers:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in workers:
        t.join()
    journal.flush()
    elapsed = time.perf_counter() - t0
    stats = journal.stats
    journal.close()
    total = threads * per_thread
    return {
        "sync": sync,
        "threads": threads,
        "appends": total,
        "commits": stats.get("commits", 0),
        "appends_per_sec": round(total / elapsed, 1),
    }


def drain_backlog(tmp_dir, messages: int, sync: str | None) -> dict:
    """Drain a one-way backlog through the threaded dispatcher; return
    msgs/sec with the journal off (``sync=None``) or in the given mode."""
    inproc = InprocNetwork()
    delivered = threading.Event()
    count = {"n": 0}
    lock = threading.Lock()

    def sink(request, peer=None):
        with lock:
            count["n"] += 1
            if count["n"] >= messages:
                delivered.set()
        return HttpResponse(status=202)

    ws = HttpServer(inproc.listen("ws:9000"), sink, workers=4).start()
    registry = ServiceRegistry()
    registry.register("echo", "http://ws:9000/echo")
    journal = None
    if sync is not None:
        journal = MessageJournal(
            str(tmp_dir / f"drain-{sync}.journal"), sync=sync
        )
    dispatcher = MsgDispatcher(
        registry,
        HttpClient(inproc),
        own_address="http://wsd:8000/msg",
        config=MsgDispatcherConfig(cx_threads=2, ws_threads=4),
        durable=journal,
    )
    app = SoapHttpApp()
    app.mount("/msg", dispatcher)
    front = HttpServer(
        inproc.listen("wsd:8000"), app.handle_request, workers=8
    ).start()
    ids = IdGenerator("bench-journal", seed=messages)
    payloads = [
        make_echo_message(to="urn:wsd:echo", message_id=ids.next())
        for _ in range(messages)
    ]
    # concurrent senders, like real load — group commit amortizes across
    # simultaneous admits, a lone serial sender would pay the whole
    # group window per message
    senders = 8
    chunks = [payloads[i::senders] for i in range(senders)]
    clients = [HttpClient(inproc) for _ in range(senders)]
    failures: list[int] = []

    def send(client: HttpClient, chunk) -> None:
        for envelope in chunk:
            response = client.post_envelope(
                "http://wsd:8000/msg/echo", envelope
            )
            if response.status != 202:
                failures.append(response.status)

    threads = [
        threading.Thread(target=send, args=(c, chunk))
        for c, chunk in zip(clients, chunks)
    ]
    try:
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, f"non-202 admits: {failures[:5]}"
        assert delivered.wait(timeout=60.0), "drain never finished"
        drained = dispatcher.stop(drain=True)
        elapsed = time.perf_counter() - t0
    finally:
        dispatcher.stop()
        for client in clients:
            client.close()
        front.stop()
        ws.stop()
    pending = journal.pending_count() if journal is not None else 0
    if journal is not None:
        journal.close()
    return {
        "variant": "off" if sync is None else f"durable-{sync}",
        "messages": messages,
        "delivered": count["n"],
        "drained_clean": bool(drained),
        "journal_pending": pending,
        "msgs_per_sec": round(messages / elapsed, 1),
    }


def run_all(tmp_dir, paper_scale: bool = False) -> dict:
    per_thread = 400 if paper_scale else 150
    messages = 600 if paper_scale else 300
    append_rows = [
        measure_appends(tmp_dir, sync, threads, per_thread)
        for sync in SYNC_MODES
        for threads in APPEND_THREADS
    ]
    drain_rows = [
        drain_backlog(tmp_dir, messages, sync)
        for sync in (None, "group", "always")
    ]
    off = next(r for r in drain_rows if r["variant"] == "off")
    group = next(r for r in drain_rows if r["variant"] == "durable-group")
    grouped = next(
        r
        for r in append_rows
        if r["sync"] == "group" and r["threads"] == max(APPEND_THREADS)
    )
    return {
        "benchmark": "journal",
        "append_rows": append_rows,
        "drain_rows": drain_rows,
        "gate": {
            # group commit must amortize: N threads, far fewer commits
            "group_commits": grouped["commits"],
            "group_appends": grouped["appends"],
            "max_commit_fraction": 0.5,
            # durability tax on the drain path, group mode
            "durable_group_fraction": round(
                group["msgs_per_sec"] / off["msgs_per_sec"], 3
            ),
            "min_durable_group_fraction": 0.33,
        },
    }


def render(payload: dict) -> str:
    lines = ["sync\tthreads\tappends\tcommits\tappends/s"]
    for r in payload["append_rows"]:
        lines.append(
            f"{r['sync']}\t{r['threads']}\t{r['appends']}\t{r['commits']}\t"
            f"{r['appends_per_sec']:.0f}"
        )
    lines.append("")
    lines.append("variant\tdelivered\tmsgs/s\tdrained_clean\tpending")
    for r in payload["drain_rows"]:
        lines.append(
            f"{r['variant']}\t{r['delivered']}\t{r['msgs_per_sec']:.0f}\t"
            f"{r['drained_clean']}\t{r['journal_pending']}"
        )
    gate = payload["gate"]
    lines.append(
        f"gate: group drain keeps {gate['durable_group_fraction']:.0%} of "
        f"non-durable (needs >= {gate['min_durable_group_fraction']:.0%}); "
        f"group commit {gate['group_commits']}/{gate['group_appends']} "
        f"commits/appends"
    )
    return "\n".join(lines)


def test_journal_durability_cost(benchmark, paper_scale, record_report, tmp_path):
    payload = benchmark.pedantic(
        lambda: run_all(tmp_path, paper_scale), rounds=1, iterations=1
    )
    record_report("journal", render(payload))
    write_bench_json("journal", payload)
    gate = payload["gate"]
    # concurrency must share transactions, not serialize on fsync
    assert gate["group_commits"] <= gate["group_appends"] * gate[
        "max_commit_fraction"
    ]
    # every drain variant delivered its whole backlog and checkpointed
    for row in payload["drain_rows"]:
        assert row["delivered"] == row["messages"]
        assert row["drained_clean"]
        assert row["journal_pending"] == 0
    assert (
        gate["durable_group_fraction"] >= gate["min_durable_group_fraction"]
    )

"""Microbenchmarks of the simulation substrate itself.

The figure experiments push hundreds of thousands of events per run;
these benches track the kernel's event throughput so regressions in the
substrate are visible separately from the systems under test.
"""

from repro.simnet.kernel import Simulator
from repro.simnet.resources import Resource, Store
from repro.simnet.topology import AccessLink, Network


def test_kernel_timeout_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()

        def ticker():
            for _ in range(10_000):
                yield sim.timeout(0.001)

        sim.process(ticker())
        sim.run()
        return sim.events_processed

    assert benchmark(run_10k_events) >= 10_000


def test_store_producer_consumer_throughput(benchmark):
    def run_5k_items():
        sim = Simulator()
        store = Store(sim, capacity=64)

        def producer():
            for i in range(5_000):
                yield store.put(i)

        def consumer():
            for _ in range(5_000):
                yield store.get()

        sim.process(producer())
        done = sim.process(consumer())
        sim.run(done)
        return sim.now

    benchmark(run_5k_items)


def test_resource_contention_throughput(benchmark):
    def run_contended():
        sim = Simulator()
        res = Resource(sim, capacity=4)

        def user():
            for _ in range(100):
                req = yield res.request()
                yield sim.timeout(0.001)
                req.release()

        for _ in range(32):
            sim.process(user())
        sim.run()
        return sim.events_processed

    benchmark(run_contended)


def test_network_transfer_throughput(benchmark):
    def run_transfers():
        sim = Simulator()
        net = Network(sim)
        a = net.add_host("a", AccessLink(10_000, 10_000, 0.001))
        b = net.add_host("b", AccessLink(10_000, 10_000, 0.001))

        def sender():
            for _ in range(2_000):
                yield net.transfer(a, b, 500)

        done = sim.process(sender())
        sim.run(done)
        return a.link.up.bytes_carried

    assert benchmark(run_transfers) == 1_000_000

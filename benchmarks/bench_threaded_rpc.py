"""Threaded-runtime sanity benchmark: the real stack on real threads.

The figure experiments run in the simulator; this bench drives the
*threaded* runtime (actual worker pools, actual HTTP framing over
in-process streams) to show the functional stack's throughput and that
the RPC-Dispatcher's relative overhead is modest there too — the paper's
"does the dispatcher degrade service?" question answered on live code.
"""

from repro.core import RpcDispatcher, ServiceRegistry
from repro.rt.client import HttpClient
from repro.rt.server import HttpServer
from repro.rt.service import SoapHttpApp
from repro.transport import InprocNetwork
from repro.workload.echo import EchoService, make_echo_request
from repro.workload.testclient import RampConfig, RampTestClient


def build_stack():
    net = InprocNetwork()
    app = SoapHttpApp()
    app.mount("/echo", EchoService())
    ws = HttpServer(net.listen("ws:9000"), app.handle_request, workers=8).start()
    registry = ServiceRegistry()
    registry.register("echo", "http://ws:9000/echo")
    dispatcher = RpcDispatcher(registry, HttpClient(net))
    front = HttpServer(
        net.listen("wsd:8000"), dispatcher.handle_request, workers=8
    ).start()
    return net, ws, front


def test_threaded_direct_echo(benchmark):
    net, ws, front = build_stack()
    client = HttpClient(net)
    envelope = make_echo_request()

    def call():
        return client.call_soap("http://ws:9000/echo", envelope)

    reply = benchmark(call)
    assert reply is not None
    client.close()
    ws.stop()
    front.stop()


def test_threaded_dispatched_echo(benchmark):
    net, ws, front = build_stack()
    client = HttpClient(net)
    envelope = make_echo_request()

    def call():
        return client.call_soap("http://wsd:8000/rpc/echo", envelope)

    reply = benchmark(call)
    assert reply is not None
    client.close()
    ws.stop()
    front.stop()


def test_threaded_ramp_throughput(benchmark, record_report):
    """Messages/minute at 8 concurrent threaded clients, both paths."""
    net, ws, front = build_stack()

    def measure():
        rows = ["path\tmsgs/min\tmean latency ms"]
        out = {}
        for label, url in (
            ("direct", "http://ws:9000/echo"),
            ("dispatcher", "http://wsd:8000/rpc/echo"),
        ):
            tester = RampTestClient(net, url)
            result = tester.run(RampConfig(clients=8, duration=1.0))
            rows.append(
                f"{label}\t{result.per_minute:.0f}\t"
                f"{result.latency.mean * 1000:.2f}"
            )
            out[label] = result.per_minute
        return "\n".join(rows), out

    text, out = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_report("threaded_rpc", text)
    assert out["direct"] > 0 and out["dispatcher"] > 0
    # the dispatcher hop costs something but must not collapse throughput
    assert out["dispatcher"] > out["direct"] * 0.25
    ws.stop()
    front.stop()

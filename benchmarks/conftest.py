"""Benchmark harness configuration.

Each figure/table benchmark runs its experiment once (timed with
``benchmark.pedantic``), prints the regenerated rows/series, and writes
them under ``benchmarks/out/`` so EXPERIMENTS.md can quote them.

Scale: ``--paper-scale`` runs the paper's full parameters (60 s simulated
per point, full client grids).  The default is a reduced grid that still
exercises every regime of every curve.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run experiments at the paper's full parameters",
    )


@pytest.fixture
def paper_scale(request) -> bool:
    return request.config.getoption("--paper-scale")


@pytest.fixture
def require_fds():
    """Guard for connection-scaling benchmarks: skip — loudly, and with a
    ``skipped`` record in the benchmark's JSON artifact — when the file
    descriptor limit cannot hold the requested client count.  A benchmark
    that silently OOM-kills itself on EMFILE half-way through looks like
    a perf regression; a recorded skip looks like what it is."""

    def _require(bench_name: str, clients: int, headroom: int = 256) -> int:
        import _perfjson

        limit = _perfjson.fd_soft_limit()
        wanted = clients + headroom
        if limit is not None and limit < wanted:
            reason = (
                f"RLIMIT_NOFILE soft limit is {limit} but {bench_name} needs "
                f"~{wanted} fds ({clients} client connections + {headroom} "
                f"headroom); raise it (ulimit -n {wanted}) to run this "
                "benchmark"
            )
            _perfjson.write_bench_skipped(
                bench_name, reason, fd_limit=limit, clients=clients
            )
            pytest.skip(reason)
        return limit if limit is not None else wanted

    return _require


@pytest.fixture
def require_cpus():
    """Guard for multi-core scaling benchmarks: skip — with a ``skipped``
    record in the artifact — when the host cannot hand out enough cores.
    A 4-shard scaling number measured on a 1-core box is just a context
    switching benchmark; recording the skip keeps the artifact honest."""

    def _require(bench_name: str, needed: int) -> int:
        import os

        import _perfjson

        cpus = os.cpu_count() or 1
        if cpus < needed:
            reason = (
                f"host has {cpus} CPU(s) but {bench_name} measures "
                f"scaling across {needed}; run on a >= {needed}-core host"
            )
            _perfjson.write_bench_skipped(
                bench_name, reason, cpus=cpus, cpus_needed=needed
            )
            pytest.skip(reason)
        return cpus

    return _require


@pytest.fixture
def record_report():
    """Write an experiment report to benchmarks/out/<name>.txt and stdout."""

    def _record(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return _record

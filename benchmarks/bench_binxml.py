"""Future-work bench: binary XML vs text XML for dispatcher traffic.

Quantifies the "extensions to other protocols, such as binary XML"
investigation: wire size and encode/decode cost for the standard
WS-Addressing echo message both ways.
"""

from repro.soap import Envelope
from repro.soap.binxml import decode_envelope, encode_envelope
from repro.workload.echo import make_echo_message

_ENV = make_echo_message("urn:wsd:echo", "uuid:bench-1")
_TEXT = _ENV.to_bytes()
_BINARY = encode_envelope(_ENV)


def test_binxml_encode(benchmark, record_report):
    out = benchmark(encode_envelope, _ENV)
    assert out.startswith(b"BX1")
    ratio = len(_BINARY) / len(_TEXT)
    record_report(
        "binxml_sizes",
        "== Binary XML extension ==\n"
        f"text XML envelope:   {len(_TEXT)} bytes\n"
        f"binary envelope:     {len(_BINARY)} bytes\n"
        f"size ratio:          {ratio:.2f}",
    )
    assert ratio < 0.9  # meaningfully smaller for addressed SOAP traffic


def test_binxml_decode(benchmark):
    env = benchmark(decode_envelope, _BINARY)
    assert env.body is not None


def test_text_encode_baseline(benchmark):
    out = benchmark(_ENV.to_bytes)
    assert out.startswith(b"<?xml")


def test_text_decode_baseline(benchmark):
    env = benchmark(Envelope.from_bytes, _TEXT)
    assert env.body is not None

"""Ablation A5 — replica failover with registry liveness probing.

The paper's future-work registry does health checks ("checking if service
is alive") and load balancing over replicas.  This bench crashes one of
two echo replicas mid-run and measures how the error window shrinks as
the liveness-probe interval tightens — the operational payoff of the
health-check machinery.

A5b compares the MSG-Dispatcher's per-destination circuit breaker on and
off across the same outage shape: with the breaker disabled every
hold/retry redelivery burns a full connect timeout against the dead
destination; with it enabled the open breaker refuses those attempts
locally and only probe traffic touches the network, at no cost to the
messages actually delivered once the destination returns.
"""

from dataclasses import replace

from repro.chaos import ChaosController, FaultPlan, ServiceCrash
from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import (
    SimMsgDispatcher,
    SimMsgDispatcherConfig,
    SimRpcDispatcher,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceStore
from repro.reliable import BreakerConfig, DuplicateFilter, FixedDelay, HoldRetryStore
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpClientPool, SimHttpServer, sim_http_request
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.topology import Network
from repro.errors import ReproError
from repro.http import Headers, HttpRequest, HttpResponse
from repro.soap import Envelope
from repro.soap.constants import SOAP11_CONTENT_TYPE
from repro.util.ids import IdGenerator
from repro.workload.echo import EchoService, make_echo_message
from repro.workload.sim_testclient import SimRampConfig, SimRampTester
from repro.wsa import AddressingHeaders


def run_failover(probe_interval: float, duration: float, crash_at: float):
    sim = Simulator()
    net = Network(sim)
    client = add_site(net, INRIA, name="inria")
    wsd = add_site(net, replace(BACKBONE_IU, name="wsd"), open_ports=(8000,))

    replica_hosts = []
    replicas = []
    for i in range(2):
        host = add_site(
            net, replace(BACKBONE_IU, name=f"replica{i}"), open_ports=(9000,)
        )
        app = SoapHttpApp()
        app.mount("/echo", EchoService())
        SimHttpServer(
            net, host, 9000,
            lambda r, app=app: app.handle_request(r, None),
            workers=16, service_time=0.003,
        )
        replica_hosts.append(host)
        replicas.append(f"http://replica{i}:9000/echo")

    # health-aware selection: skip replicas the prober marked down
    down: set[str] = set()

    def selector(record):
        healthy = [a for a in record.physical if a not in down]
        return healthy[0] if healthy else record.physical[0]

    registry = ServiceRegistry(selector=selector)
    registry.register("echo", replicas)
    dispatcher = SimRpcDispatcher(net, wsd, registry, connect_timeout=1.0)
    SimHttpServer(net, wsd, 8000, dispatcher.handler, workers=32)

    def prober():
        """The registry's periodic liveness probe, as a sim process."""
        while True:
            yield sim.timeout(probe_interval)
            for i, url in enumerate(replicas):
                host = replica_hosts[i]
                alive = registry.check_alive(
                    "echo", lambda addr, h=host: not h.failed, now=sim.now
                )
                if host.failed or not alive:
                    down.add(url)
                else:
                    down.discard(url)

    sim.process(prober())

    def crasher():
        yield sim.timeout(crash_at)
        replica_hosts[0].fail()

    sim.process(crasher())

    tester = SimRampTester(net, client, "wsd", 8000, "/rpc/echo")
    result = tester.run(SimRampConfig(
        clients=10, duration=duration,
        connect_timeout=2.0, response_timeout=5.0,
        retry_backoff=0.2,
    ))
    return result


def test_a5_failover_window(benchmark, paper_scale, record_report):
    duration = 60.0 if paper_scale else 30.0
    crash_at = duration / 3

    def sweep():
        rows = ["probe_interval\ttransmitted\terrors+lost"]
        outcomes = {}
        for interval in (10.0, 2.0, 0.5):
            result = run_failover(interval, duration, crash_at)
            bad = result.errors + result.not_sent
            rows.append(f"{interval}\t{result.transmitted}\t{bad}")
            outcomes[interval] = (result.transmitted, bad)
        return "\n".join(rows), outcomes

    text, outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_report("ablation_a5_failover", text)
    # tighter probing must shrink the failure window
    assert outcomes[0.5][1] <= outcomes[10.0][1]
    # and keep goodput at least as high
    assert outcomes[0.5][0] >= outcomes[10.0][0]


def run_breaker_ablation(
    breaker_enabled: bool,
    messages: int = 30,
    send_gap: float = 0.2,
    crash_at: float = 1.0,
    outage: float = 12.0,
    horizon: float = 60.0,
    seed: int = 11,
):
    """One-way messaging through a mid-run destination outage."""
    sim = Simulator()
    net = Network(sim, loss_seed=seed)
    client_host = add_site(net, INRIA, name="client")
    wsd_host = add_site(net, replace(BACKBONE_IU, name="wsd"), open_ports=(8000,))
    sink_host = add_site(net, replace(BACKBONE_IU, name="sink"), open_ports=(9000,))

    metrics = MetricsRegistry()
    registry = ServiceRegistry(metrics=metrics)
    registry.register("echo", "http://sink:9000/echo")
    dupes = DuplicateFilter(window=3600.0, clock=sim.clock)
    delivered: set[str] = set()

    def sink_handler(request: HttpRequest) -> HttpResponse:
        try:
            envelope = Envelope.from_bytes(request.body)
            mid = AddressingHeaders.from_envelope(envelope).message_id
        except ReproError:
            return HttpResponse(status=400)
        if mid and not dupes.seen(mid):
            delivered.add(mid)
        return HttpResponse(status=202)

    SimHttpServer(net, sink_host, 9000, sink_handler, workers=16)

    hold_store = HoldRetryStore(
        policy=FixedDelay(max_attempts=10_000, delay=0.2),
        default_ttl=horizon,
        clock=sim.clock,
    )
    config = SimMsgDispatcherConfig(
        connect_timeout=0.5,
        response_timeout=3.0,
        batch_size=1,  # one message per wire attempt: failures count connects
        breaker=(
            BreakerConfig(consecutive_failures=3, open_for=3.0)
            if breaker_enabled else None
        ),
        hold_pump_interval=0.1,
    )
    dispatcher = SimMsgDispatcher(
        net, wsd_host, registry, own_address="http://wsd:8000/msg",
        config=config, metrics=metrics, traces=TraceStore(enabled=False),
        hold_store=hold_store,
    )
    SimHttpServer(net, wsd_host, 8000, dispatcher.handler, workers=16)

    plan = FaultPlan(
        (ServiceCrash(host="sink", at=crash_at, restart_after=outage),),
        seed=seed,
    )
    ChaosController(net, plan, metrics=metrics).start()

    ids = IdGenerator("a5b", seed=seed)
    pool = SimHttpClientPool(
        net, client_host, connect_timeout=5.0, response_timeout=10.0
    )
    sent: list[str] = []

    def sender():
        for _ in range(messages):
            mid = ids.next()
            env = make_echo_message(to="urn:wsd:echo", message_id=mid)
            headers = Headers()
            headers.set("Content-Type", SOAP11_CONTENT_TYPE)
            sent.append(mid)
            yield from pool.exchange(
                "wsd", 8000,
                HttpRequest("POST", "/msg/echo", headers=headers,
                            body=env.to_bytes()),
            )
            yield sim.timeout(send_gap)

    sim.process(sender(), name="a5b-sender")
    sim.run(until=horizon)
    stats = dispatcher.stats
    return {
        "sent": len(sent),
        "delivered": len(delivered & set(sent)),
        "wasted_attempts": stats.get("delivery_failures", 0),
        "breaker_blocked": stats.get("held_breaker_open", 0),
        "expired": hold_store.stats["expired"],
    }


def test_a5b_breaker_ablation(benchmark, record_report):
    def pair():
        return {
            "off": run_breaker_ablation(breaker_enabled=False),
            "on": run_breaker_ablation(breaker_enabled=True),
        }

    outcomes = benchmark.pedantic(pair, rounds=1, iterations=1)
    off, on = outcomes["off"], outcomes["on"]
    rows = ["breaker\tsent\tdelivered\twasted_attempts\tbreaker_blocked\texpired"]
    for label, o in (("off", off), ("on", on)):
        rows.append(
            f"{label}\t{o['sent']}\t{o['delivered']}\t"
            f"{o['wasted_attempts']}\t{o['breaker_blocked']}\t{o['expired']}"
        )
    record_report("ablation_a5b_breaker", "\n".join(rows))
    # both arms deliver everything once the destination comes back ...
    assert off["delivered"] == off["sent"]
    assert on["delivered"] == on["sent"]
    assert off["expired"] == 0 and on["expired"] == 0
    # ... but the open breaker absorbs the retry storm locally: the
    # disabled arm burns a connect timeout per redelivery all outage long
    assert on["wasted_attempts"] * 2 < off["wasted_attempts"]
    assert on["breaker_blocked"] > 0

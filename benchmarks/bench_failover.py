"""Ablation A5 — replica failover with registry liveness probing.

The paper's future-work registry does health checks ("checking if service
is alive") and load balancing over replicas.  This bench crashes one of
two echo replicas mid-run and measures how the error window shrinks as
the liveness-probe interval tightens — the operational payoff of the
health-check machinery.
"""

from dataclasses import replace

from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimRpcDispatcher
from repro.rt.service import SoapHttpApp
from repro.simnet.httpsim import SimHttpServer, sim_http_request
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, INRIA, add_site
from repro.simnet.topology import Network
from repro.http import HttpRequest
from repro.workload.echo import EchoService
from repro.workload.sim_testclient import SimRampConfig, SimRampTester


def run_failover(probe_interval: float, duration: float, crash_at: float):
    sim = Simulator()
    net = Network(sim)
    client = add_site(net, INRIA, name="inria")
    wsd = add_site(net, replace(BACKBONE_IU, name="wsd"), open_ports=(8000,))

    replica_hosts = []
    replicas = []
    for i in range(2):
        host = add_site(
            net, replace(BACKBONE_IU, name=f"replica{i}"), open_ports=(9000,)
        )
        app = SoapHttpApp()
        app.mount("/echo", EchoService())
        SimHttpServer(
            net, host, 9000,
            lambda r, app=app: app.handle_request(r, None),
            workers=16, service_time=0.003,
        )
        replica_hosts.append(host)
        replicas.append(f"http://replica{i}:9000/echo")

    # health-aware selection: skip replicas the prober marked down
    down: set[str] = set()

    def selector(record):
        healthy = [a for a in record.physical if a not in down]
        return healthy[0] if healthy else record.physical[0]

    registry = ServiceRegistry(selector=selector)
    registry.register("echo", replicas)
    dispatcher = SimRpcDispatcher(net, wsd, registry, connect_timeout=1.0)
    SimHttpServer(net, wsd, 8000, dispatcher.handler, workers=32)

    def prober():
        """The registry's periodic liveness probe, as a sim process."""
        while True:
            yield sim.timeout(probe_interval)
            for i, url in enumerate(replicas):
                host = replica_hosts[i]
                alive = registry.check_alive(
                    "echo", lambda addr, h=host: not h.failed, now=sim.now
                )
                if host.failed or not alive:
                    down.add(url)
                else:
                    down.discard(url)

    sim.process(prober())

    def crasher():
        yield sim.timeout(crash_at)
        replica_hosts[0].fail()

    sim.process(crasher())

    tester = SimRampTester(net, client, "wsd", 8000, "/rpc/echo")
    result = tester.run(SimRampConfig(
        clients=10, duration=duration,
        connect_timeout=2.0, response_timeout=5.0,
        retry_backoff=0.2,
    ))
    return result


def test_a5_failover_window(benchmark, paper_scale, record_report):
    duration = 60.0 if paper_scale else 30.0
    crash_at = duration / 3

    def sweep():
        rows = ["probe_interval\ttransmitted\terrors+lost"]
        outcomes = {}
        for interval in (10.0, 2.0, 0.5):
            result = run_failover(interval, duration, crash_at)
            bad = result.errors + result.not_sent
            rows.append(f"{interval}\t{result.transmitted}\t{bad}")
            outcomes[interval] = (result.transmitted, bad)
        return "\n".join(rows), outcomes

    text, outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_report("ablation_a5_failover", text)
    # tighter probing must shrink the failure window
    assert outcomes[0.5][1] <= outcomes[10.0][1]
    # and keep goodput at least as high
    assert outcomes[0.5][0] >= outcomes[10.0][0]

"""Serial vs pipelined WsThread drain (the connection-lease fast path).

One backlog of one-way messages to a single WAN destination (≥5 ms each
way), drained by the simulated MSG-Dispatcher twice: ``pipeline_batches``
off (one request/response round trip per message, the pre-lease
behaviour) and on (each batch rides one write burst on the leased
connection).  With batch_size=8 the pipelined drain pays ~1 RTT per batch
instead of per message, so the expected speedup at WAN latency is near
the batch size; the gate is a conservative 2x.  The same run checks the
registry lookup cache: every message resolves the same logical name, so
all but the first resolution must be cache hits.
"""

from dataclasses import replace

from _perfjson import write_bench_json
from repro.core.registry import ServiceRegistry
from repro.core.sim_dispatcher import SimMsgDispatcher, SimMsgDispatcherConfig
from repro.http import HttpResponse
from repro.obs.metrics import MetricsRegistry
from repro.simnet.httpsim import SimHttpServer
from repro.simnet.kernel import Simulator
from repro.simnet.scenarios import BACKBONE_IU, add_site
from repro.simnet.topology import Network
from repro.util.ids import IdGenerator
from repro.workload.echo import make_echo_message


def _drain_backlog(messages: int, batch_size: int, pipelined: bool):
    """Deliver a t=0 backlog of ``messages`` one-way sends; return stats."""
    sim = Simulator()
    net = Network(sim)
    # BACKBONE_IU latency is 10 ms per access link: 20 ms one way, 40 ms
    # RTT dispatcher<->service — comfortably past the 5 ms floor where
    # pipelining matters.
    svc_host = add_site(net, replace(BACKBONE_IU, name="svc"), open_ports=(9000,))
    wsd_host = add_site(net, replace(BACKBONE_IU, name="wsd"))
    SimHttpServer(
        net, svc_host, 9000,
        lambda request: HttpResponse(status=202),
        workers=32, service_time=0.0005,
    )
    metrics = MetricsRegistry()
    registry = ServiceRegistry(metrics=metrics)
    registry.register("echo", "http://svc:9000/echo")
    config = SimMsgDispatcherConfig(
        cx_workers=4, ws_workers=2, batch_size=batch_size,
        pipeline_batches=pipelined,
    )
    dispatcher = SimMsgDispatcher(
        net, wsd_host, registry,
        own_address="http://wsd:8000/msg", config=config, metrics=metrics,
    )
    ids = IdGenerator("pipe", seed=messages)
    for _ in range(messages):
        envelope = make_echo_message(to="urn:wsd:echo", message_id=ids.next())
        assert dispatcher._accept.try_put(
            (envelope, "/msg/echo", None, 0.0, None)
        )
    while dispatcher.stats.get("delivered", 0) < messages and sim.step():
        pass
    drained = sim.now
    delivered = dispatcher.stats.get("delivered", 0)
    return {
        "delivered": delivered,
        "sim_seconds": drained,
        "msgs_per_sec": delivered / drained if drained else 0.0,
        "bursts": dispatcher.pool.pipelined_bursts,
        "replays": dispatcher.pool.pipeline_replays,
        "cache": registry.cache_stats(),
    }


def test_pipelined_drain_speedup(benchmark, paper_scale, record_report):
    messages = 400 if paper_scale else 200
    batch_size = 8

    def run():
        return {
            "serial": _drain_backlog(messages, batch_size, pipelined=False),
            "pipelined": _drain_backlog(messages, batch_size, pipelined=True),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    serial, piped = out["serial"], out["pipelined"]
    speedup = piped["msgs_per_sec"] / serial["msgs_per_sec"]
    rows = ["variant\tdelivered\tsim_s\tmsgs/s\tbursts\treplays\tcache_hit_rate"]
    for label in ("serial", "pipelined"):
        v = out[label]
        rows.append(
            f"{label}\t{v['delivered']}\t{v['sim_seconds']:.3f}\t"
            f"{v['msgs_per_sec']:.0f}\t{v['bursts']}\t{v['replays']}\t"
            f"{v['cache']['hit_rate']:.3f}"
        )
    rows.append(f"speedup\t{speedup:.2f}x")
    record_report("pipeline_drain", "\n".join(rows))
    write_bench_json(
        "pipeline_drain",
        {
            "benchmark": "pipeline_drain",
            "rows": [dict(out[label], variant=label) for label in out],
            "gate": {"min_speedup": 2.0, "speedup": round(speedup, 2)},
        },
    )
    assert serial["delivered"] == messages
    assert piped["delivered"] == messages
    # the lease + burst drain must at least double drained msgs/sec
    assert speedup >= 2.0
    # every message resolves the same logical name: near-perfect cache hits
    assert piped["cache"]["hit_rate"] > 0.90


def _tcp_echo_round_trips(messages: int, nodelay: bool) -> dict:
    """Sequential small POSTs over real loopback TCP with Nagle's
    algorithm enabled or disabled on both ends."""
    import time

    from repro.http import Headers, HttpRequest, HttpResponse
    from repro.rt.client import HttpClient
    from repro.rt.server import HttpServer
    from repro.transport.tcp import TcpConnector, TcpListener

    listener = TcpListener("127.0.0.1:0", nodelay=nodelay)
    server = HttpServer(
        listener, lambda request, peer: HttpResponse(status=202), workers=4
    ).start()
    client = HttpClient(TcpConnector(nodelay=nodelay))
    url = f"http://{listener.endpoint}/echo"
    try:
        t0 = time.perf_counter()
        for i in range(messages):
            response = client.request(
                url,
                HttpRequest(
                    "POST", "/echo", headers=Headers(), body=b"<m>%d</m>" % i
                ),
            )
            assert response.status == 202
        elapsed = time.perf_counter() - t0
    finally:
        client.close()
        server.stop()
    return {
        "delivered": messages,
        "wall_seconds": round(elapsed, 4),
        "msgs_per_sec": round(messages / elapsed, 1) if elapsed else 0.0,
    }


def test_tcp_nodelay_before_after(benchmark, paper_scale, record_report):
    """Informational before/after for the TCP_NODELAY knob on the real
    TCP transport (client connector and server listener together).

    Strict request/response ping-pong rarely trips Nagle on loopback —
    each small write departs with no unacknowledged data in flight — so
    no speedup is gated here; the artifact row exists to catch the
    opposite accident: a transport change that re-introduces a
    Nagle/delayed-ACK stall would crater the ``nodelay_on`` figure
    against history."""
    messages = 600 if paper_scale else 200

    def run():
        return {
            "nodelay_off": _tcp_echo_round_trips(messages, nodelay=False),
            "nodelay_on": _tcp_echo_round_trips(messages, nodelay=True),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = ["variant\tdelivered\twall_s\tmsgs/s"]
    for label in ("nodelay_off", "nodelay_on"):
        v = out[label]
        rows.append(
            f"{label}\t{v['delivered']}\t{v['wall_seconds']:.3f}\t"
            f"{v['msgs_per_sec']:.0f}"
        )
    record_report("tcp_nodelay", "\n".join(rows))
    from _perfjson import merge_bench_json

    merge_bench_json(
        "pipeline_drain",
        {"tcp_nodelay": [dict(out[label], variant=label) for label in out]},
    )
    assert out["nodelay_on"]["delivered"] == messages
    assert out["nodelay_off"]["delivered"] == messages

"""Figure 5 — RPC communication, high connectivity (messages/minute).

Regenerates both curves (direct WS-RPC vs via RPC-Dispatcher) and asserts
the paper's shape: zero loss, ramp-up, plateau past ~200 clients, and a
dispatcher overhead small enough that the curves track each other.
"""

from repro.experiments import fig5
from repro.workload.results import render_ascii_plot


def test_fig5_rpc_high_connectivity(benchmark, paper_scale, record_report):
    if paper_scale:
        counts, duration = fig5.PAPER_CLIENT_COUNTS, fig5.PAPER_DURATION
    else:
        counts, duration = [10, 50, 100, 200, 300], 15.0

    report = benchmark.pedantic(
        lambda: fig5.run(client_counts=counts, duration=duration),
        rounds=1,
        iterations=1,
    )
    failures = fig5.check_shape(report)
    text = report.render() + "\n\n" + render_ascii_plot(
        report.series, "per_minute", title="Fig5 messages/minute"
    )
    record_report("fig5", text)
    assert failures == [], failures

"""Zero-copy envelope fast path vs the full DOM round trip.

The dispatcher's per-message envelope work is parse → WS-Addressing
rewrite → serialize.  The slow path decodes the whole document, builds an
element tree (Body included), and re-serializes every byte of it.  The
fast path scans byte offsets, DOM-parses only the Header block, and
splices the rewritten header bytes between the untouched preamble and
Body slices — so its cost is O(header) plus one ``bytes.find``-driven
skip over the Body, not O(document) tree work.

Sweep body size (1 KiB – 256 KiB) × drain batch size, measure forwarded
messages/sec for both paths plus the bytes-decoded / bytes-copied model,
and gate the ISSUE's claim: ≥2x forwarded-msgs/sec at 64 KiB bodies.
Results land in ``benchmarks/out/fastpath.txt`` (human) and
``BENCH_fastpath.json`` at the repo root (machine).
"""

from __future__ import annotations

import time

from _perfjson import write_bench_json
from repro.soap import Envelope, LazyEnvelope
from repro.workload.echo import make_echo_message
from repro.wsa import rewrite_for_forwarding

OWN_ADDRESS = "http://wsd:8000/msg"
PHYSICAL = "http://inside:9000/echo"

BODY_KIB = (1, 16, 64, 256)
BATCH_SIZES = (1, 8)
GATE_BODY_KIB = 64
GATE_SPEEDUP = 2.0


def make_payload(body_bytes: int) -> bytes:
    env = make_echo_message(
        to="urn:wsd:echo", message_id="uuid:bench-fastpath",
        target_bytes=body_bytes,
    )
    return env.to_bytes()


def forward_fast(data: bytes) -> bytes:
    result = rewrite_for_forwarding(
        LazyEnvelope.from_bytes(data), PHYSICAL, OWN_ADDRESS
    )
    return result.envelope.to_bytes()


def forward_slow(data: bytes) -> bytes:
    result = rewrite_for_forwarding(
        Envelope.from_bytes(data), PHYSICAL, OWN_ADDRESS
    )
    return result.envelope.to_bytes()


def _throughput(forward, data: bytes, batch: int, batches: int) -> float:
    """Forwarded msgs/sec over ``batches`` drains of ``batch`` messages."""
    forward(data)  # warm up (first-call imports, code paths)
    t0 = time.perf_counter()
    for _ in range(batches):
        for _ in range(batch):
            forward(data)
    elapsed = time.perf_counter() - t0
    return (batches * batch) / elapsed


def measure_pair(body_bytes: int, batch: int, paper_scale: bool = False) -> dict:
    """One sweep point: fast vs slow throughput + the bytes-touched model."""
    data = make_payload(body_bytes)
    # keep wall time flat across sizes: fewer iterations for bigger bodies
    target = 8 * 1024 * 1024 if paper_scale else 2 * 1024 * 1024
    batches = max(3, min(200, target // (len(data) * batch)))

    fast_mps = _throughput(forward_fast, data, batch, batches)
    slow_mps = _throughput(forward_slow, data, batch, batches)

    lazy = LazyEnvelope.from_bytes(data)
    scan = lazy._scan
    out_fast = forward_fast(data)
    # bytes model: the slow path decodes the whole document and re-encodes
    # all of it; the fast path decodes only the Header span and copies the
    # preamble/Body through a single splice join.
    return {
        "body_kib": body_bytes // 1024,
        "doc_bytes": len(data),
        "batch": batch,
        "messages": batches * batch,
        "fast_msgs_per_sec": round(fast_mps, 1),
        "slow_msgs_per_sec": round(slow_mps, 1),
        "speedup": round(fast_mps / slow_mps, 2),
        "fast_bytes_decoded": scan.tail_start - scan.splice_start,
        "slow_bytes_decoded": len(data),
        "fast_bytes_copied": len(out_fast),
        "slow_bytes_copied": len(data) + len(out_fast),
    }


def run_sweep(paper_scale: bool = False) -> dict:
    rows = [
        measure_pair(kib * 1024, batch, paper_scale)
        for kib in BODY_KIB
        for batch in BATCH_SIZES
    ]
    gate_rows = [
        r for r in rows if r["body_kib"] == GATE_BODY_KIB and r["batch"] == 1
    ]
    return {
        "benchmark": "fastpath",
        "rows": rows,
        "gate": {
            "body_kib": GATE_BODY_KIB,
            "min_speedup": GATE_SPEEDUP,
            "speedup": gate_rows[0]["speedup"],
        },
    }


def render(payload: dict) -> str:
    header = (
        "body_kib\tbatch\tfast_msgs/s\tslow_msgs/s\tspeedup\t"
        "fast_dec_B\tslow_dec_B"
    )
    lines = [header]
    for r in payload["rows"]:
        lines.append(
            f"{r['body_kib']}\t{r['batch']}\t{r['fast_msgs_per_sec']:.0f}\t"
            f"{r['slow_msgs_per_sec']:.0f}\t{r['speedup']:.2f}x\t"
            f"{r['fast_bytes_decoded']}\t{r['slow_bytes_decoded']}"
        )
    gate = payload["gate"]
    lines.append(
        f"gate: {gate['speedup']:.2f}x at {gate['body_kib']} KiB "
        f"(needs >= {gate['min_speedup']:.1f}x)"
    )
    return "\n".join(lines)


def test_fastpath_speedup(benchmark, paper_scale, record_report):
    payload = benchmark.pedantic(
        lambda: run_sweep(paper_scale), rounds=1, iterations=1
    )
    record_report("fastpath", render(payload))
    write_bench_json("fastpath", payload)
    # every sweep point produced byte-identical-semantics output already
    # covered by tests/soap/test_lazy.py; here we gate the perf claim
    assert payload["gate"]["speedup"] >= GATE_SPEEDUP
    # the fast path must decode only the header region, not the document
    for row in payload["rows"]:
        assert row["fast_bytes_decoded"] < row["slow_bytes_decoded"] / 4

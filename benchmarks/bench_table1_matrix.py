"""Table 1 — the interaction matrix, verified mechanically.

For each quadrant (RPC/messaging client × RPC/messaging service) the
bench measures whether a fast and a pathologically slow service call
complete, plus throughput at a moderate delay, and asserts the paper's
verdicts: only messaging↔messaging is free of transport time limits, and
translation to an RPC service is the bottleneck.
"""

from repro.experiments import table1


def test_table1_interaction_matrix(benchmark, paper_scale, record_report):
    clients, duration = (10, 30.0) if paper_scale else (5, 15.0)
    report = benchmark.pedantic(
        lambda: table1.run(clients=clients, duration=duration),
        rounds=1,
        iterations=1,
    )
    failures = table1.check_shape(report)
    record_report("table1", report.render())
    assert failures == [], failures

"""Figure 6 — asynchronous communication (the headline result).

Regenerates the three curves: one-way direct with blocked responses, via
MSG-Dispatcher alone, and via MSG-Dispatcher + WS-MsgBox.  Asserts the
paper's ordering above 10 clients: MsgBox best, dispatcher-without-msgbox
slowest.
"""

from repro.experiments import fig6
from repro.workload.results import render_ascii_plot


def test_fig6_async_messaging(benchmark, paper_scale, record_report):
    if paper_scale:
        counts, duration = fig6.PAPER_CLIENT_COUNTS, fig6.PAPER_DURATION
    else:
        counts, duration = [1, 10, 30, 50], 60.0  # full 60 s: the queueing
        # dynamics need the steady state; simulated time is cheap

    report = benchmark.pedantic(
        lambda: fig6.run(client_counts=counts, duration=duration),
        rounds=1,
        iterations=1,
    )
    failures = fig6.check_shape(report)
    text = report.render() + "\n\n" + render_ascii_plot(
        report.series, "per_minute", title="Fig6 messages/minute"
    )
    record_report("fig6", text)
    assert failures == [], failures

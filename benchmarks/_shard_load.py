"""Sink and feeder subprocesses for ``bench_shards`` — run out-of-process.

The sharding benchmark measures how fast the *dispatcher fleet* drains,
so neither the message source nor the destination services may share the
bench process's GIL with anything hot.  Two modes:

- ``sink``: a threaded HTTP server that 202s every envelope POSTed to it
  and answers ``GET /count`` with the number absorbed so far.  Prints one
  JSON line (``{"port": ...}``) on stdout when listening, then serves
  until SIGTERM.
- ``feed``: POSTs ``messages`` echo envelopes to a dispatcher data URL
  over persistent connections, round-robin across the given logical
  destinations.  Prints one JSON line of fed/error counts and exits.

Usage::

    python _shard_load.py sink
    python _shard_load.py feed <data_url> <logicals_csv> <messages> <seed>
"""

from __future__ import annotations

import json
import signal
import sys
import threading


def run_sink() -> None:
    from repro.errors import ReproError
    from repro.http import HttpResponse
    from repro.rt.server import HttpServer
    from repro.soap import Envelope
    from repro.transport.tcp import TcpListener

    count = 0
    lock = threading.Lock()

    def handler(request, peer):
        nonlocal count
        if request.method == "GET":
            with lock:
                body = str(count).encode("ascii")
            return HttpResponse(status=200, body=body)
        try:
            Envelope.from_bytes(request.body)
        except ReproError:
            return HttpResponse(status=400)
        with lock:
            count += 1
        return HttpResponse(status=202)

    server = HttpServer(
        TcpListener("127.0.0.1:0"), handler, workers=16, name="bench-sink"
    ).start()
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    print(json.dumps({"port": server.endpoint.port}), flush=True)
    stop.wait()
    server.stop()


def run_feed(data_url: str, logicals: list[str], messages: int, seed: int) -> None:
    from repro.errors import ReproError
    from repro.rt.client import HttpClient
    from repro.transport.tcp import TcpConnector
    from repro.util.ids import IdGenerator
    from repro.workload.echo import make_echo_message

    ids = IdGenerator(f"shardfeed{seed}", seed=seed)
    stats = {"fed": 0, "errors": 0}
    with HttpClient(TcpConnector()) as client:
        for i in range(messages):
            logical = logicals[i % len(logicals)]
            envelope = make_echo_message(
                to=f"urn:wsd:{logical}", message_id=ids.next()
            )
            for attempt in range(8):
                try:
                    response = client.post_envelope(
                        f"{data_url}/msg/{logical}", envelope
                    )
                except ReproError:
                    continue
                if response.status == 202:
                    stats["fed"] += 1
                    break
            else:
                stats["errors"] += 1
    print(json.dumps(stats), flush=True)


def main() -> None:
    mode = sys.argv[1]
    if mode == "sink":
        run_sink()
    elif mode == "feed":
        run_feed(
            sys.argv[2],
            [x for x in sys.argv[3].split(",") if x],
            int(sys.argv[4]),
            int(sys.argv[5]),
        )
    else:
        raise SystemExit(f"unknown mode {mode!r}")


if __name__ == "__main__":
    main()

"""Microbench: registry persistence backends (text file vs SQLite vs RAM),
plus the price of replicating discovery.

The paper used text files and planned "a relational database such as
MySQL" for performance.  This bench quantifies the trade: reads are
served from the in-memory map either way, so the backend only prices
*mutations* — and the text file rewrites the whole file per put while
SQLite does a transactional upsert.

The second half prices the PR 10 replicated registry against a single
in-memory one: an uncached lookup through
:class:`~repro.registry.ReplicatedRegistryClient` pays the failover
sweep (breaker gate + preference order), a cached one collapses back to
a dict probe, and writes pay the sweep plus — off the client's critical
path — one anti-entropy round per peer.  Results land in
``BENCH_registry.json`` for the perf-smoke artifact diff.
"""

import time

import pytest

from _perfjson import write_bench_json
from repro.core.registry import ServiceRegistry
from repro.registry import RegistryReplica, ReplicatedRegistryClient, sync_pair
from repro.obs.metrics import MetricsRegistry
from repro.util.sqldb import SqliteMap


def _fill(registry: ServiceRegistry, n: int = 100) -> None:
    for i in range(n):
        registry.register(f"svc-{i}", f"http://host-{i}:80/svc")


@pytest.fixture(params=["memory", "textfile", "sqlite"])
def registry(request, tmp_path):
    if request.param == "memory":
        reg = ServiceRegistry()
    elif request.param == "textfile":
        reg = ServiceRegistry(persist_path=str(tmp_path / "reg.txt"))
    else:
        reg = ServiceRegistry(backend=SqliteMap(str(tmp_path / "reg.sqlite")))
    _fill(reg)
    return reg


def test_register_cost(benchmark, registry):
    counter = [0]

    def register_one():
        counter[0] += 1
        registry.register(f"new-{counter[0]}", "http://new:80/svc")

    benchmark(register_one)


def test_resolve_cost_is_backend_independent(benchmark, registry):
    address = benchmark(registry.resolve, "svc-50")
    assert address == "http://host-50:80/svc"


# -- single vs replicated ---------------------------------------------------
def _ops_per_sec(fn, n: int) -> float:
    t0 = time.perf_counter()
    for i in range(n):
        fn(i)
    return round(n / (time.perf_counter() - t0), 1)


def _make_replica_set(n_replicas: int = 3, services: int = 100):
    replicas = {
        f"r{i}": RegistryReplica(f"r{i}", metrics=MetricsRegistry())
        for i in range(1, n_replicas + 1)
    }
    first = next(iter(replicas.values()))
    for i in range(services):
        first.register(f"svc-{i}", f"http://host-{i}:80/svc")
    for other in replicas.values():
        if other is not first:
            sync_pair(first, other)
    return replicas


def run_replicated_comparison(paper_scale: bool = False) -> dict:
    reads = 20000 if paper_scale else 5000
    writes = 2000 if paper_scale else 500

    single = ServiceRegistry()
    _fill(single)
    rows = [{
        "backend": "single",
        "lookups_per_sec": _ops_per_sec(
            lambda i: single.lookup(f"svc-{i % 100}"), reads
        ),
        "registers_per_sec": _ops_per_sec(
            lambda i: single.register(f"w-{i}", "http://w:80/svc"), writes
        ),
    }]

    for cache_ttl, label in ((0.0, "replicated-3"), (60.0, "replicated-3-cached")):
        replicas = _make_replica_set()
        client = ReplicatedRegistryClient(
            replicas, seed=11, cache_ttl=cache_ttl,
            metrics=MetricsRegistry(),
        )
        row = {
            "backend": label,
            "lookups_per_sec": _ops_per_sec(
                lambda i: client.lookup(f"svc-{i % 100}"), reads
            ),
            "registers_per_sec": _ops_per_sec(
                lambda i: client.register(f"w-{i}", "http://w:80/svc"), writes
            ),
        }
        if cache_ttl:
            row["cache_hit_rate"] = round(client.cache_stats()["hit_rate"], 4)
        rows.append(row)

    # anti-entropy cost is off the client's critical path: price one full
    # delta propagation of the write burst to both peers
    replicas = _make_replica_set()
    client = ReplicatedRegistryClient(replicas, seed=11, cache_ttl=0.0,
                                      metrics=MetricsRegistry())
    for i in range(writes):
        client.register(f"w-{i}", "http://w:80/svc")
    first = client.replica_names[0]
    t0 = time.perf_counter()
    for name in client.replica_names[1:]:
        sync_pair(replicas[first], replicas[name])
    gossip_elapsed = time.perf_counter() - t0
    by_backend = {r["backend"]: r for r in rows}
    return {
        "benchmark": "registry",
        "rows": rows,
        "gossip": {
            "entries": writes,
            "peers": len(client.replica_names) - 1,
            "entries_per_sec": round(
                writes * (len(client.replica_names) - 1) / gossip_elapsed, 1
            ),
        },
        "gate": {
            # the cached replicated read path must stay within an order
            # of magnitude of a bare dict probe (loose: shared runners)
            "cached_read_fraction": round(
                by_backend["replicated-3-cached"]["lookups_per_sec"]
                / by_backend["single"]["lookups_per_sec"], 3
            ),
            "min_cached_read_fraction": 0.1,
        },
    }


def render_replicated(payload: dict) -> str:
    lines = ["backend\tlookups/s\tregisters/s"]
    for r in payload["rows"]:
        lines.append(
            f"{r['backend']}\t{r['lookups_per_sec']:.0f}\t"
            f"{r['registers_per_sec']:.0f}"
        )
    gossip = payload["gossip"]
    gate = payload["gate"]
    lines.append(
        f"gossip: {gossip['entries']} entries x {gossip['peers']} peers at "
        f"{gossip['entries_per_sec']:.0f} entries/s"
    )
    lines.append(
        f"gate: cached replicated reads keep "
        f"{gate['cached_read_fraction']:.0%} of single-registry rate "
        f"(needs >= {gate['min_cached_read_fraction']:.0%})"
    )
    return "\n".join(lines)


def test_replicated_vs_single_registry(benchmark, paper_scale, record_report):
    payload = benchmark.pedantic(
        lambda: run_replicated_comparison(paper_scale), rounds=1, iterations=1
    )
    record_report("registry", render_replicated(payload))
    write_bench_json("registry", payload)
    gate = payload["gate"]
    assert gate["cached_read_fraction"] >= gate["min_cached_read_fraction"]
    # replication must not lose writes: the burst reached every peer
    assert payload["gossip"]["entries_per_sec"] > 0

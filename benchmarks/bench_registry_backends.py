"""Microbench: registry persistence backends (text file vs SQLite vs RAM).

The paper used text files and planned "a relational database such as
MySQL" for performance.  This bench quantifies the trade: reads are
served from the in-memory map either way, so the backend only prices
*mutations* — and the text file rewrites the whole file per put while
SQLite does a transactional upsert.
"""

import pytest

from repro.core.registry import ServiceRegistry
from repro.util.sqldb import SqliteMap


def _fill(registry: ServiceRegistry, n: int = 100) -> None:
    for i in range(n):
        registry.register(f"svc-{i}", f"http://host-{i}:80/svc")


@pytest.fixture(params=["memory", "textfile", "sqlite"])
def registry(request, tmp_path):
    if request.param == "memory":
        reg = ServiceRegistry()
    elif request.param == "textfile":
        reg = ServiceRegistry(persist_path=str(tmp_path / "reg.txt"))
    else:
        reg = ServiceRegistry(backend=SqliteMap(str(tmp_path / "reg.sqlite")))
    _fill(reg)
    return reg


def test_register_cost(benchmark, registry):
    counter = [0]

    def register_one():
        counter[0] += 1
        registry.register(f"new-{counter[0]}", "http://new:80/svc")

    benchmark(register_one)


def test_resolve_cost_is_backend_independent(benchmark, registry):
    address = benchmark(registry.resolve, "svc-50")
    assert address == "http://host-50:80/svc"

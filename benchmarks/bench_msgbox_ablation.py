"""F6b / §4.3.2 — the WS-MsgBox thread-explosion bug, reproduced.

thread-per-message delivery must crash with (simulated) OutOfMemory above
a client threshold; the bounded-pool redesign must survive the identical
burst by shedding acknowledgements.
"""

from repro.experiments import ablations


def test_msgbox_thread_explosion(benchmark, paper_scale, record_report):
    counts = [10, 25, 50, 100] if paper_scale else [10, 60]
    report = benchmark.pedantic(
        lambda: ablations.msgbox_bug(client_counts=counts),
        rounds=1,
        iterations=1,
    )
    failures = ablations.check_msgbox_bug(report)
    record_report("msgbox_bug", report.render())
    assert failures == [], failures

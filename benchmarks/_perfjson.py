"""Machine-readable benchmark artifacts.

The perf-smoke CI job runs a subset of benchmarks and archives
``BENCH_<name>.json`` files written at the repo root, so perf numbers are
diffable across runs without scraping pytest output.  Keep payloads flat
JSON (lists of row dicts plus a ``gate`` summary) — the artifact is the
interface.
"""

from __future__ import annotations

import json
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def write_bench_json(name: str, payload: dict) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` at the repo root; returns the path."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path

"""Machine-readable benchmark artifacts.

The perf-smoke CI job runs a subset of benchmarks and archives
``BENCH_<name>.json`` files written at the repo root, so perf numbers are
diffable across runs without scraping pytest output.  Keep payloads flat
JSON (lists of row dicts plus a ``gate`` summary) — the artifact is the
interface.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def host_info() -> dict:
    """What the numbers were measured on.  ``cpus`` matters most: the
    sharding benchmarks are meaningless without knowing how many cores
    the host could actually hand out."""
    return {
        "cpus": os.cpu_count() or 1,
        "platform": platform.system().lower(),
        "python": platform.python_version(),
    }


def write_bench_json(name: str, payload: dict) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` at the repo root; returns the path.

    Stamps ``cpus`` into every artifact (unless the benchmark already
    set it) so historical perf numbers stay comparable across hosts."""
    payload.setdefault("cpus", os.cpu_count() or 1)
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def merge_bench_json(name: str, updates: dict) -> pathlib.Path:
    """Merge ``updates`` into an existing ``BENCH_<name>.json``.

    Lets two tests in one benchmark module contribute sections to one
    artifact without caring which ran first (or alone)."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    payload: dict = {"benchmark": name}
    if path.exists():
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            pass  # torn artifact from a dead run: start over
    payload.update(updates)
    return write_bench_json(name, payload)


def fd_soft_limit() -> int | None:
    """The process's RLIMIT_NOFILE soft limit (None where unsupported)."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    try:
        return resource.getrlimit(resource.RLIMIT_NOFILE)[0]
    except (OSError, ValueError):
        return None


def write_bench_skipped(name: str, reason: str, **details) -> pathlib.Path:
    """Record a skipped benchmark in its artifact — a missing JSON reads
    as "never ran", a ``skipped`` entry as "ran and declined, here's why"."""
    return write_bench_json(
        name, {"benchmark": name, "skipped": True, "reason": reason, **details}
    )

"""The multi-core acceptance benchmark for the sharded dispatcher.

One CPython dispatcher process drains on one core no matter how many
threads it runs; the shard supervisor multiplies it across processes.
This benchmark measures drained msgs/s through a full
:class:`~repro.shard.ShardSupervisor` deployment at 1 shard and at
4 shards — same message count, same destinations, same out-of-process
feeders and sinks (``_shard_load.py``) so the fleet under test is the
only thing the bench process's GIL never touches — and gates on the
4-shard run clearing ``MIN_SCALING`` x the 1-shard rate.

Hosts with fewer than 4 CPUs record a skip in ``BENCH_shards.json``
instead of measuring context switching and calling it scaling.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time

from _perfjson import REPO_ROOT, host_info, write_bench_json

SHARD_COUNTS = (1, 4)
MIN_SCALING = 2.5
LOGICALS = [f"svc{i}" for i in range(8)]
SINKS = 2
FEEDERS = 2


def _spawn(args: list[str]) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, str(pathlib.Path(__file__).with_name("_shard_load.py"))]
        + args,
        stdout=subprocess.PIPE,
        env=dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src")),
        text=True,
    )


def _sink_count(client, port: int) -> int:
    from repro.http import HttpRequest

    response = client.request(
        f"http://127.0.0.1:{port}/count", HttpRequest("GET", "/count")
    )
    return int(response.body)


def _run_point(shards: int, messages: int) -> dict:
    from repro.http import HttpRequest  # noqa: F401 - import check up front
    from repro.rt.client import HttpClient
    from repro.shard import ShardSupervisor, SupervisorConfig
    from repro.transport.tcp import TcpConnector

    sinks = [_spawn(["sink"]) for _ in range(SINKS)]
    ports = [json.loads(sink.stdout.readline())["port"] for sink in sinks]
    registry = {
        logical: f"http://127.0.0.1:{ports[i % SINKS]}/{logical}"
        for i, logical in enumerate(LOGICALS)
    }
    supervisor = None
    feeders: list[subprocess.Popen] = []
    try:
        supervisor = ShardSupervisor(
            registry,
            SupervisorConfig(shards=shards, runtime="threaded"),
        ).start()
        per_feeder = messages // FEEDERS
        t0 = time.perf_counter()
        feeders = [
            _spawn([
                "feed", supervisor.data_url, ",".join(LOGICALS),
                str(per_feeder), str(seed),
            ])
            for seed in range(FEEDERS)
        ]
        expected = per_feeder * FEEDERS
        deadline = t0 + 180.0
        total = 0
        with HttpClient(TcpConnector()) as poll:
            while time.perf_counter() < deadline:
                total = sum(_sink_count(poll, port) for port in ports)
                if total >= expected:
                    break
                time.sleep(0.05)
        elapsed = time.perf_counter() - t0
        feed_stats = [json.loads(f.communicate(timeout=60.0)[0]) for f in feeders]
    finally:
        for feeder in feeders:
            if feeder.poll() is None:
                feeder.kill()
        if supervisor is not None:
            supervisor.stop()
        for sink in sinks:
            sink.terminate()
        for sink in sinks:
            sink.wait(timeout=10.0)
    return {
        "shards": shards,
        "messages": expected,
        "fed": sum(s["fed"] for s in feed_stats),
        "feed_errors": sum(s["errors"] for s in feed_stats),
        "delivered": total,
        "wall_seconds": round(elapsed, 3),
        "msgs_per_sec": round(total / elapsed, 2) if elapsed else 0.0,
    }


def test_shard_scaling(benchmark, paper_scale, record_report, require_cpus):
    cpus = require_cpus("shards", max(SHARD_COUNTS))
    messages = 4000 if paper_scale else 2000

    def run():
        return [_run_point(shards, messages) for shards in SHARD_COUNTS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    by_shards = {row["shards"]: row for row in rows}
    base = by_shards[SHARD_COUNTS[0]]["msgs_per_sec"]
    top = by_shards[SHARD_COUNTS[-1]]["msgs_per_sec"]
    ratio = round(top / base, 2) if base else 0.0
    record_report(
        "shards",
        "\n".join(
            ["shards\tmessages\tdelivered\twall_seconds\tmsgs_per_sec"]
            + [
                f"{r['shards']}\t{r['messages']}\t{r['delivered']}\t"
                f"{r['wall_seconds']}\t{r['msgs_per_sec']}"
                for r in rows
            ]
            + [f"# scaling x{ratio} at {SHARD_COUNTS[-1]} shards on {cpus} cpus"]
        ),
    )
    write_bench_json(
        "shards",
        {
            "benchmark": "shards",
            "host": host_info(),
            "cpus": cpus,
            "rows": rows,
            "gate": {
                "shards": SHARD_COUNTS[-1],
                "baseline_msgs_per_sec": base,
                "scaled_msgs_per_sec": top,
                "ratio": ratio,
                "min_ratio": MIN_SCALING,
            },
        },
    )
    for row in rows:
        assert row["delivered"] == row["messages"], row
        assert row["feed_errors"] == 0, row
    # the tentpole claim: N dispatcher processes drain faster than one
    # can, because each owns its own interpreter lock
    assert ratio >= MIN_SCALING, (
        f"4-shard drain only x{ratio} the 1-shard rate (need {MIN_SCALING})"
    )
